"""Data plane of the Windows Azure Blob service (2012 semantics).

Implements the state machines behind the REST operations the paper's
Algorithm 1 exercises:

* **Block blobs** — staged uploads via ``PutBlock`` + ``PutBlockList``
  (blocks ≤ 4 MB, ≤ 50,000 blocks, blob ≤ 200 GB), single-shot upload for
  blobs < 64 MB, per-block and whole-blob reads.
* **Page blobs** — fixed maximum size (≤ 1 TB), 512-byte-aligned random
  writes of ≤ 4 MB per operation, reads of arbitrary aligned ranges with
  unwritten ranges returning zeros.

The module is timing-free: the simulator (:mod:`repro.sim`) and the local
emulator (:mod:`repro.emulator`) wrap these state machines with their own
concurrency and latency models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..clock import Clock
from ..content import (
    Content,
    ZeroContent,
    as_content,
    concat,
)
from ..errors import (
    BlobNotFoundError,
    BlockNotFoundError,
    BlockTooLargeError,
    ContainerNotFoundError,
    InvalidOperationError,
    InvalidPageRangeError,
    LeaseConflictError,
    OutOfRangeError,
    PayloadTooLargeError,
    ResourceExistsError,
    TooManyBlocksError,
)
from ..etag import ETagFactory
from ..limits import LIMITS_2012, ServiceLimits
from ..naming import validate_blob_name, validate_container_name

__all__ = [
    "BlobServiceState",
    "ContainerState",
    "BlockBlobState",
    "PageBlobState",
    "BlobProperties",
    "BlobSnapshot",
]


@dataclass
class BlobProperties:
    """Metadata snapshot returned by get-properties style calls."""

    name: str
    container: str
    blob_type: str
    size: int
    etag: str
    last_modified: float
    metadata: Dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class BlobSnapshot:
    """An immutable point-in-time copy of a blob's content."""

    name: str
    container: str
    blob_type: str
    snapshot_id: str
    taken_at: float
    etag: str
    content: Content

    @property
    def size(self) -> int:
        return self.content.size

    def download(self) -> Content:
        """Read the whole snapshot."""
        return self.content

    def read_range(self, offset: int, length: int) -> Content:
        if length < 0 or offset < 0 or offset + length > self.content.size:
            raise OutOfRangeError(
                f"range [{offset}, {offset + length}) outside snapshot of "
                f"{self.content.size} B"
            )
        return self.content.slice(offset, offset + length)


class _BlobBase:
    """State common to block and page blobs."""

    blob_type = "unspecified"

    #: Lease duration of the 2012 service: one minute, renewable.
    LEASE_DURATION = 60.0

    def __init__(self, service: "BlobServiceState", container: str, name: str) -> None:
        self._service = service
        self.container = container
        self.name = validate_blob_name(name)
        self.metadata: Dict[str, str] = {}
        self.etag = service._etags.next()
        self.last_modified = service._clock.now()
        self._lease_id: Optional[str] = None
        self._lease_expires = 0.0
        #: Point-in-time snapshots keyed by snapshot id.
        self.snapshots: Dict[str, "BlobSnapshot"] = {}

    def _touch(self) -> None:
        self.etag = self._service._etags.next()
        self.last_modified = self._service._clock.now()

    # -- leases (2012 blob leases: 1-minute exclusive write locks) --------
    def _lease_active(self) -> bool:
        return (self._lease_id is not None
                and self._service._clock.now() < self._lease_expires)

    def check_write_lease(self, lease_id: Optional[str]) -> None:
        """Raise unless ``lease_id`` permits writing this blob now."""
        if not self._lease_active():
            return
        if lease_id != self._lease_id:
            raise LeaseConflictError(
                f"blob {self.name!r} is leased; supply the lease id"
            )

    def acquire_lease(self) -> str:
        """Take the exclusive write lease (fails while another is active)."""
        if self._lease_active():
            raise LeaseConflictError(
                f"blob {self.name!r} already has an active lease"
            )
        self._lease_id = f"lease-{self._service._etags.next()}"
        self._lease_expires = self._service._clock.now() + self.LEASE_DURATION
        return self._lease_id

    def renew_lease(self, lease_id: str) -> None:
        """Extend a held lease by another lease duration."""
        if self._lease_id != lease_id:
            raise LeaseConflictError("lease id mismatch on renew")
        self._lease_expires = self._service._clock.now() + self.LEASE_DURATION

    def release_lease(self, lease_id: str) -> None:
        """Release a held lease (id must match)."""
        if self._lease_id != lease_id or not self._lease_active():
            raise LeaseConflictError("lease id mismatch on release")
        self._lease_id = None
        self._lease_expires = 0.0

    def break_lease(self) -> None:
        """Forcibly end any lease (admin path; always succeeds)."""
        self._lease_id = None
        self._lease_expires = 0.0

    @property
    def lease_state(self) -> str:
        return "leased" if self._lease_active() else "available"

    # -- metadata (user-defined name/value pairs) ---------------------------
    def set_metadata(self, metadata: Dict[str, str], *,
                     lease_id: Optional[str] = None) -> None:
        """Replace the blob's user metadata (``SetBlobMetadata``)."""
        self.check_write_lease(lease_id)
        for name, value in metadata.items():
            if not isinstance(name, str) or not isinstance(value, str):
                raise InvalidOperationError(
                    "metadata names and values must be strings")
            if not name or not name[0].isalpha():
                raise InvalidOperationError(
                    f"metadata name {name!r} must start with a letter")
        self.metadata = dict(metadata)
        self._touch()

    # -- snapshots (2012 feature: immutable point-in-time copies) ---------
    def _content_view(self) -> Content:  # pragma: no cover - overridden
        raise NotImplementedError

    def snapshot(self) -> "BlobSnapshot":
        """Take an immutable point-in-time snapshot of the blob.

        Snapshots are keyed by their (unique) creation timestamp string.
        Simplification documented in DESIGN.md: snapshot bytes are not
        charged against account capacity (the real service billed only
        unique blocks).
        """
        taken_at = self._service._clock.now()
        snapshot_id = f"{taken_at:.7f}-{len(self.snapshots)}"
        snap = BlobSnapshot(
            name=self.name, container=self.container,
            blob_type=self.blob_type, snapshot_id=snapshot_id,
            taken_at=taken_at, etag=self.etag,
            content=self._content_view(),
        )
        self.snapshots[snapshot_id] = snap
        return snap

    def get_snapshot(self, snapshot_id: str) -> "BlobSnapshot":
        try:
            return self.snapshots[snapshot_id]
        except KeyError:
            raise BlobNotFoundError(
                f"blob {self.name!r} has no snapshot {snapshot_id!r}"
            ) from None

    def delete_snapshot(self, snapshot_id: str) -> None:
        self.get_snapshot(snapshot_id)
        del self.snapshots[snapshot_id]

    def list_snapshots(self) -> List["BlobSnapshot"]:
        return [self.snapshots[k] for k in sorted(self.snapshots)]

    @property
    def size(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def properties(self) -> BlobProperties:
        """Current properties snapshot."""
        return BlobProperties(
            name=self.name,
            container=self.container,
            blob_type=self.blob_type,
            size=self.size,
            etag=self.etag,
            last_modified=self.last_modified,
            metadata=dict(self.metadata),
        )

    def partition_key(self) -> str:
        """Blobs are partitioned on container name + blob name (paper IV.A)."""
        return f"{self.container}/{self.name}"


class BlockBlobState(_BlobBase):
    """A block blob: an ordered list of committed blocks.

    The two-phase commit protocol matches the 2012 API: blocks are staged
    with ``put_block`` into an *uncommitted* set, then an ordered
    ``put_block_list`` atomically publishes a new committed block list.  IDs
    may reference either staged blocks (latest wins) or blocks of the
    currently committed list.
    """

    blob_type = "BlockBlob"

    def __init__(self, service: "BlobServiceState", container: str, name: str) -> None:
        super().__init__(service, container, name)
        #: Ordered committed blocks: (block_id, content).
        self._committed: List[Tuple[str, Content]] = []
        #: Staged (uncommitted) blocks by id.
        self._uncommitted: Dict[str, Content] = {}
        self._size = 0

    # -- upload --------------------------------------------------------------
    def put_block(self, block_id: str, data, *,
                  lease_id: Optional[str] = None) -> None:
        """Stage one block (``PutBlock``).  Blocks are ≤ 4 MB."""
        self.check_write_lease(lease_id)
        if not isinstance(block_id, str) or not 1 <= len(block_id) <= 64:
            raise BlockNotFoundError(f"invalid block id {block_id!r}")
        content = as_content(data)
        limits = self._service.limits
        if content.size > limits.max_block_bytes:
            raise BlockTooLargeError(
                f"block of {content.size} B exceeds {limits.max_block_bytes} B"
            )
        if content.size == 0:
            raise InvalidOperationError("blocks must not be empty")
        self._uncommitted[block_id] = content

    def put_block_list(self, block_ids: Sequence[str], *,
                       merge: bool = False,
                       lease_id: Optional[str] = None) -> None:
        """Atomically commit an ordered list of staged/committed blocks.

        With ``merge=True`` the listed blocks are committed *on top of* the
        current committed list (already-committed ids keep their position;
        new ids are appended in the given order).  This is the multi-writer
        commit discipline the paper's Algorithm 1 needs when many workers
        build one shared blob — a plain commit would race: each worker's
        snapshot of the committed list can go stale while its own commit is
        in flight.
        """
        self.check_write_lease(lease_id)
        limits = self._service.limits
        if merge:
            committed_ids = [bid for bid, _ in self._committed]
            committed_set = set(committed_ids)
            block_ids = committed_ids + [
                bid for bid in block_ids if bid not in committed_set
            ]
        if len(block_ids) > limits.max_blocks_per_blob:
            raise TooManyBlocksError(
                f"{len(block_ids)} blocks exceed limit {limits.max_blocks_per_blob}"
            )
        committed_by_id = {bid: c for bid, c in self._committed}
        new_list: List[Tuple[str, Content]] = []
        total = 0
        for bid in block_ids:
            if bid in self._uncommitted:
                content = self._uncommitted[bid]
            elif bid in committed_by_id:
                content = committed_by_id[bid]
            else:
                raise BlockNotFoundError(f"block id {bid!r} not found")
            total += content.size
            new_list.append((bid, content))
        if total > limits.max_block_blob_bytes:
            raise PayloadTooLargeError(
                f"blob of {total} B exceeds {limits.max_block_blob_bytes} B"
            )
        self._service._account_delta(total - self._size)
        self._committed = new_list
        self._size = total
        # Deviation from the 2012 service, documented in DESIGN.md: only the
        # *referenced* staged blocks are consumed.  The real service pruned
        # every unreferenced uncommitted block on commit, which makes the
        # paper's Algorithm 1 (many workers staging blocks into one shared
        # blob, each committing its own list) racy; keeping unreferenced
        # staged blocks makes concurrent multi-writer commits well defined
        # while preserving the commit cost model.
        for bid, _ in new_list:
            self._uncommitted.pop(bid, None)
        self._touch()

    def upload(self, data, *, lease_id: Optional[str] = None) -> None:
        """Single-shot upload (``PutBlob``), only for blobs < 64 MB."""
        self.check_write_lease(lease_id)
        content = as_content(data)
        limits = self._service.limits
        if content.size > limits.max_single_shot_blob_bytes:
            raise PayloadTooLargeError(
                f"single-shot upload of {content.size} B exceeds "
                f"{limits.max_single_shot_blob_bytes} B; use put_block/put_block_list"
            )
        self._service._account_delta(content.size - self._size)
        self._committed = [("", content)] if content.size else []
        self._size = content.size
        self._uncommitted.clear()
        self._touch()

    # -- read ----------------------------------------------------------------
    @property
    def size(self) -> int:
        return self._size

    @property
    def block_count(self) -> int:
        return len(self._committed)

    def block_ids(self, committed: bool = True) -> List[str]:
        """IDs of committed (or staged) blocks, in order."""
        if committed:
            return [bid for bid, _ in self._committed]
        return list(self._uncommitted)

    def get_block(self, index: int) -> Content:
        """Read the ``index``-th committed block (sequential block reads)."""
        if not 0 <= index < len(self._committed):
            raise OutOfRangeError(
                f"block index {index} outside 0..{len(self._committed) - 1}"
            )
        return self._committed[index][1]

    def get_block_by_id(self, block_id: str) -> Content:
        """Read a committed block by its id."""
        for bid, content in self._committed:
            if bid == block_id:
                return content
        raise BlockNotFoundError(f"no committed block with id {block_id!r}")

    def _content_view(self) -> Content:
        return concat([c for _, c in self._committed])

    def download(self) -> Content:
        """Read the whole blob (``DownloadText`` in the paper's pseudocode)."""
        return concat([c for _, c in self._committed])

    def read_range(self, offset: int, length: int) -> Content:
        """Read an arbitrary byte range of the committed content."""
        if length < 0 or offset < 0 or offset + length > self._size:
            raise OutOfRangeError(
                f"range [{offset}, {offset + length}) outside blob of {self._size} B"
            )
        return self.download().slice(offset, offset + length)


class PageBlobState(_BlobBase):
    """A page blob: a sparse, fixed-maximum-size array of 512-byte pages.

    Stores written ranges as a sorted list of non-overlapping intervals
    ``(start, end, content)``; reads stitch intervals together with
    :class:`ZeroContent` gaps (unwritten pages read as zeros).
    """

    blob_type = "PageBlob"

    def __init__(self, service: "BlobServiceState", container: str, name: str,
                 max_size: int) -> None:
        super().__init__(service, container, name)
        limits = service.limits
        align = limits.page_alignment_bytes
        if max_size <= 0 or max_size % align != 0:
            raise InvalidPageRangeError(
                f"page blob size {max_size} must be a positive multiple of {align}"
            )
        if max_size > limits.max_page_blob_bytes:
            raise PayloadTooLargeError(
                f"page blob of {max_size} B exceeds {limits.max_page_blob_bytes} B"
            )
        self.max_size = max_size
        #: Sorted, non-overlapping written intervals.
        self._ranges: List[Tuple[int, int, Content]] = []
        self._written_bytes = 0

    # -- helpers ---------------------------------------------------------
    def _check_aligned(self, offset: int, length: int, op: str) -> None:
        align = self._service.limits.page_alignment_bytes
        if offset < 0 or length <= 0:
            raise InvalidPageRangeError(f"{op}: bad range ({offset}, {length})")
        if offset % align != 0 or length % align != 0:
            raise InvalidPageRangeError(
                f"{op}: range ({offset}, {length}) not {align}-byte aligned"
            )
        if offset + length > self.max_size:
            raise InvalidPageRangeError(
                f"{op}: range end {offset + length} beyond blob size {self.max_size}"
            )

    def _carve(self, start: int, end: int) -> None:
        """Remove interval [start, end) from the written ranges."""
        out: List[Tuple[int, int, Content]] = []
        removed = 0
        for s, e, c in self._ranges:
            if e <= start or s >= end:
                out.append((s, e, c))
                continue
            # Overlap: keep the non-overlapping edges.
            if s < start:
                out.append((s, start, c.slice(0, start - s)))
            if e > end:
                out.append((end, e, c.slice(end - s, e - s)))
            removed += min(e, end) - max(s, start)
        out.sort(key=lambda t: t[0])
        self._ranges = out
        self._written_bytes -= removed

    # -- write -------------------------------------------------------------
    def put_pages(self, offset: int, data, *,
                  lease_id: Optional[str] = None) -> None:
        """Write pages at ``offset`` (``PutPage``).  ≤ 4 MB per operation."""
        self.check_write_lease(lease_id)
        content = as_content(data)
        limits = self._service.limits
        if content.size > limits.max_page_write_bytes:
            raise InvalidPageRangeError(
                f"page write of {content.size} B exceeds "
                f"{limits.max_page_write_bytes} B per operation"
            )
        self._check_aligned(offset, content.size, "put_pages")
        end = offset + content.size
        # Charge capacity for the net growth first (a rejected write must
        # not mutate the range map); overlap with existing ranges is free.
        overwritten = sum(min(e, end) - max(s, offset)
                          for s, e, _ in self._ranges
                          if s < end and e > offset)
        self._service._account_delta(content.size - overwritten)
        self._carve(offset, end)
        self._ranges.append((offset, end, content))
        self._ranges.sort(key=lambda t: t[0])
        self._written_bytes += content.size
        self._touch()

    def clear_pages(self, offset: int, length: int, *,
                    lease_id: Optional[str] = None) -> None:
        """Clear pages back to zeros (``ClearPage``)."""
        self.check_write_lease(lease_id)
        self._check_aligned(offset, length, "clear_pages")
        before = self._written_bytes
        self._carve(offset, offset + length)
        self._service._account_delta(self._written_bytes - before)
        self._touch()

    # -- read ----------------------------------------------------------------
    @property
    def size(self) -> int:
        """Page blobs report their fixed maximum size."""
        return self.max_size

    @property
    def written_bytes(self) -> int:
        """Bytes in written (non-zero-backed) page ranges."""
        return self._written_bytes

    def get_page_ranges(self) -> List[Tuple[int, int]]:
        """Written intervals as ``(start, end)`` pairs."""
        return [(s, e) for s, e, _ in self._ranges]

    def read(self, offset: int, length: int) -> Content:
        """Read an aligned range (``GetPage``); gaps read as zeros."""
        self._check_aligned(offset, length, "read")
        end = offset + length
        parts: List[Content] = []
        cursor = offset
        for s, e, c in self._ranges:
            if e <= offset or s >= end:
                continue
            lo, hi = max(s, offset), min(e, end)
            if lo > cursor:
                parts.append(ZeroContent(lo - cursor))
            parts.append(c.slice(lo - s, hi - s))
            cursor = hi
        if cursor < end:
            parts.append(ZeroContent(end - cursor))
        return concat(parts)

    def _content_view(self) -> Content:
        return self.read(0, self.max_size)

    def read_all(self) -> Content:
        """Read the full blob (the paper's ``PageBlob.openRead()`` download)."""
        return self.read(0, self.max_size)


class ContainerState:
    """A blob container: a flat namespace of blobs."""

    def __init__(self, service: "BlobServiceState", name: str) -> None:
        self._service = service
        self.name = validate_container_name(name)
        self.blobs: Dict[str, _BlobBase] = {}
        self.created_at = service._clock.now()

    def create_block_blob(self, name: str, *, overwrite: bool = True) -> BlockBlobState:
        """Create (or replace) an empty block blob."""
        if name in self.blobs and not overwrite:
            raise ResourceExistsError(f"blob {name!r} already exists")
        old = self.blobs.get(name)
        if old is not None:
            self._service._account_delta(-_blob_bytes(old))
        blob = BlockBlobState(self._service, self.name, name)
        self.blobs[name] = blob
        return blob

    def create_page_blob(self, name: str, max_size: int, *,
                         overwrite: bool = True) -> PageBlobState:
        """Create (or replace) a page blob of the given maximum size."""
        if name in self.blobs and not overwrite:
            raise ResourceExistsError(f"blob {name!r} already exists")
        old = self.blobs.get(name)
        if old is not None:
            self._service._account_delta(-_blob_bytes(old))
        blob = PageBlobState(self._service, self.name, name, max_size)
        self.blobs[name] = blob
        return blob

    def get_blob(self, name: str) -> _BlobBase:
        try:
            return self.blobs[name]
        except KeyError:
            raise BlobNotFoundError(
                f"blob {name!r} not found in container {self.name!r}"
            ) from None

    def get_block_blob(self, name: str) -> BlockBlobState:
        blob = self.get_blob(name)
        if not isinstance(blob, BlockBlobState):
            raise InvalidOperationError(f"blob {name!r} is not a block blob")
        return blob

    def get_page_blob(self, name: str) -> PageBlobState:
        blob = self.get_blob(name)
        if not isinstance(blob, PageBlobState):
            raise InvalidOperationError(f"blob {name!r} is not a page blob")
        return blob

    def delete_blob(self, name: str, *,
                    lease_id: Optional[str] = None,
                    delete_snapshots: bool = False) -> None:
        """Delete a blob.  A blob with snapshots requires
        ``delete_snapshots=True``, like the x-ms-delete-snapshots header."""
        blob = self.get_blob(name)
        blob.check_write_lease(lease_id)
        if blob.snapshots and not delete_snapshots:
            raise InvalidOperationError(
                f"blob {name!r} has {len(blob.snapshots)} snapshot(s); "
                "pass delete_snapshots=True"
            )
        self._service._account_delta(-_blob_bytes(blob))
        del self.blobs[name]

    def list_blobs(self, prefix: str = "") -> List[str]:
        return sorted(n for n in self.blobs if n.startswith(prefix))

    def __contains__(self, name: str) -> bool:
        return name in self.blobs

    def __len__(self) -> int:
        return len(self.blobs)


def _blob_bytes(blob: _BlobBase) -> int:
    if isinstance(blob, PageBlobState):
        return blob.written_bytes
    return blob.size


class BlobServiceState:
    """Root state of the blob service of one storage account."""

    def __init__(self, clock: Clock, limits: ServiceLimits = LIMITS_2012,
                 account=None) -> None:
        self._clock = clock
        self.limits = limits
        self._account = account
        self._etags = ETagFactory()
        self.containers: Dict[str, ContainerState] = {}

    def _account_delta(self, delta: int) -> None:
        """Report a change in stored bytes to the owning account, if any."""
        if self._account is not None:
            self._account.adjust_usage(delta)

    # -- container management --------------------------------------------
    def create_container(self, name: str, *, fail_on_exist: bool = False) -> ContainerState:
        """Create a container (idempotent unless ``fail_on_exist``)."""
        if name in self.containers:
            if fail_on_exist:
                raise ResourceExistsError(f"container {name!r} already exists")
            return self.containers[name]
        container = ContainerState(self, name)
        self.containers[name] = container
        return container

    def get_container(self, name: str) -> ContainerState:
        try:
            return self.containers[name]
        except KeyError:
            raise ContainerNotFoundError(f"container {name!r} not found") from None

    def delete_container(self, name: str) -> None:
        container = self.get_container(name)
        for blob in list(container.blobs.values()):
            self._account_delta(-_blob_bytes(blob))
        del self.containers[name]

    def list_containers(self, prefix: str = "") -> List[str]:
        return sorted(n for n in self.containers if n.startswith(prefix))

    def iter_blobs(self) -> Iterator[_BlobBase]:
        for container in self.containers.values():
            yield from container.blobs.values()

    def total_bytes(self) -> int:
        """Bytes stored across all containers (committed + written pages)."""
        return sum(_blob_bytes(b) for b in self.iter_blobs())
