"""Caching service data plane (named caches, TTL, LRU eviction)."""

from .state import CacheItem, CacheServiceState, CacheState, CacheStats

__all__ = ["CacheServiceState", "CacheState", "CacheItem", "CacheStats"]
