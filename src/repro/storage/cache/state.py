"""Data plane of the Windows Azure (AppFabric) Caching service, 2012 era.

The paper (II.B): "Azure platform also provides a caching service to
temporarily hold data in memory across different servers", and lists caches
among the services to explore as future work (Section V).  This module
implements that substrate so the cache-vs-blob ablation benchmark can
quantify what the paper deferred.

Semantics modeled after the 2011 AppFabric Caching API:

* **named caches** holding key → item entries;
* **absolute or sliding expiration** per item (sliding items renew their
  lifetime on every read);
* **LRU eviction** when a cache exceeds its memory quota;
* ``add`` (fail if present) / ``put`` (upsert) / ``get`` / ``get_and_lock``
  style versioning via monotonically increasing item versions;
* hit/miss/eviction statistics.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..clock import Clock
from ..content import Content, as_content
from ..errors import (
    InvalidOperationError,
    ResourceExistsError,
    ResourceNotFoundError,
)

__all__ = ["CacheServiceState", "CacheState", "CacheItem", "CacheStats"]


class CacheNotFoundError(ResourceNotFoundError):
    error_code = "NamedCacheNotFound"


@dataclass
class CacheItem:
    """One cached entry (value + expiry bookkeeping)."""

    key: str
    value: Content
    version: int
    expires_at: float
    sliding_ttl: Optional[float] = None

    @property
    def size(self) -> int:
        return self.value.size

    def expired(self, now: float) -> bool:
        return now >= self.expires_at


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one named cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


class CacheState:
    """One named cache: an LRU-ordered, size-bounded key/value store."""

    def __init__(self, service: "CacheServiceState", name: str,
                 capacity_bytes: int, default_ttl: float) -> None:
        if capacity_bytes <= 0:
            raise InvalidOperationError("capacity_bytes must be > 0")
        if default_ttl <= 0:
            raise InvalidOperationError("default_ttl must be > 0")
        self._service = service
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.default_ttl = default_ttl
        #: LRU order: most-recently-used at the end.
        self._items: "OrderedDict[str, CacheItem]" = OrderedDict()
        self._bytes = 0
        self._version = 0
        self.stats = CacheStats()

    # -- internals -----------------------------------------------------------
    def _now(self) -> float:
        return self._service._clock.now()

    def _expire(self, key: str) -> None:
        item = self._items.pop(key, None)
        if item is not None:
            self._bytes -= item.size
            self.stats.expirations += 1

    def _evict_to_fit(self, incoming: int) -> None:
        while self._items and self._bytes + incoming > self.capacity_bytes:
            _, item = self._items.popitem(last=False)  # LRU victim
            self._bytes -= item.size
            self.stats.evictions += 1

    # -- API --------------------------------------------------------------
    def put(self, key: str, value, *, ttl: Optional[float] = None,
            sliding: bool = False) -> CacheItem:
        """Upsert an item.  ``sliding=True`` renews the TTL on every get."""
        content = as_content(value)
        if content.size > self.capacity_bytes:
            raise InvalidOperationError(
                f"item of {content.size} B exceeds cache capacity "
                f"{self.capacity_bytes} B"
            )
        ttl = self.default_ttl if ttl is None else ttl
        if ttl <= 0:
            raise InvalidOperationError("ttl must be > 0")
        old = self._items.pop(key, None)
        if old is not None:
            self._bytes -= old.size
        self._evict_to_fit(content.size)
        self._version += 1
        item = CacheItem(
            key=key, value=content, version=self._version,
            expires_at=self._now() + ttl,
            sliding_ttl=ttl if sliding else None,
        )
        self._items[key] = item
        self._bytes += content.size
        return item

    def add(self, key: str, value, *, ttl: Optional[float] = None,
            sliding: bool = False) -> CacheItem:
        """Insert only if absent (the AppFabric ``Add``)."""
        existing = self._items.get(key)
        if existing is not None and not existing.expired(self._now()):
            raise ResourceExistsError(f"key {key!r} already cached")
        return self.put(key, value, ttl=ttl, sliding=sliding)

    def get(self, key: str) -> Optional[CacheItem]:
        """Fetch an item, or None on miss (expired counts as a miss)."""
        item = self._items.get(key)
        now = self._now()
        if item is None:
            self.stats.misses += 1
            return None
        if item.expired(now):
            self._expire(key)
            self.stats.misses += 1
            return None
        # LRU touch + sliding renewal.
        self._items.move_to_end(key)
        if item.sliding_ttl is not None:
            item.expires_at = now + item.sliding_ttl
        self.stats.hits += 1
        return item

    def contains(self, key: str) -> bool:
        """Presence check without disturbing LRU order or stats."""
        item = self._items.get(key)
        return item is not None and not item.expired(self._now())

    def remove(self, key: str) -> bool:
        """Remove an item; returns whether it was present."""
        item = self._items.pop(key, None)
        if item is None:
            return False
        self._bytes -= item.size
        return True

    def clear(self) -> None:
        self._items.clear()
        self._bytes = 0

    @property
    def item_count(self) -> int:
        return len(self._items)

    @property
    def bytes_used(self) -> int:
        return self._bytes

    def keys(self) -> List[str]:
        """Keys in LRU order (least recent first), unexpired only."""
        now = self._now()
        return [k for k, item in self._items.items() if not item.expired(now)]


class CacheServiceState:
    """Root state of the caching service (named caches)."""

    #: Default quota of a named cache (the 2012 service sold 128 MB tiers).
    DEFAULT_CAPACITY = 128 * 1024 * 1024
    #: Default item lifetime (AppFabric default was 10 minutes).
    DEFAULT_TTL = 600.0

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        self.caches: Dict[str, CacheState] = {}

    def create_cache(self, name: str, *,
                     capacity_bytes: int = DEFAULT_CAPACITY,
                     default_ttl: float = DEFAULT_TTL,
                     fail_on_exist: bool = False) -> CacheState:
        if name in self.caches:
            if fail_on_exist:
                raise ResourceExistsError(f"cache {name!r} already exists")
            return self.caches[name]
        cache = CacheState(self, name, capacity_bytes, default_ttl)
        self.caches[name] = cache
        return cache

    def get_cache(self, name: str) -> CacheState:
        try:
            return self.caches[name]
        except KeyError:
            raise CacheNotFoundError(f"cache {name!r} not found") from None

    def delete_cache(self, name: str) -> None:
        self.get_cache(name)
        del self.caches[name]

    def list_caches(self) -> List[str]:
        return sorted(self.caches)
