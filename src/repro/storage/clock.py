"""Clock abstraction shared by the data plane, emulator and simulator.

The storage state machines are time-dependent (message visibility timeouts,
TTL expiry, entity timestamps) but must not care whether time is simulated
(:class:`SimClock`), real (:class:`WallClock`) or script-controlled
(:class:`ManualClock`).
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

__all__ = ["Clock", "WallClock", "ManualClock", "SimClock"]


@runtime_checkable
class Clock(Protocol):
    """Anything with a ``now()`` returning seconds as a float."""

    def now(self) -> float:  # pragma: no cover - protocol
        ...


class WallClock:
    """Real time (monotonic)."""

    def __init__(self) -> None:
        self._origin = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._origin


class ManualClock:
    """A clock advanced explicitly by tests."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        if dt < 0:
            raise ValueError("cannot move a ManualClock backwards")
        self._now += dt
        return self._now

    def set(self, t: float) -> float:
        if t < self._now:
            raise ValueError("cannot move a ManualClock backwards")
        self._now = float(t)
        return self._now


class SimClock:
    """Adapter exposing a :class:`repro.simkit.Environment` as a Clock."""

    def __init__(self, env) -> None:
        self._env = env

    def now(self) -> float:
        return self._env.now
