"""Content model: byte payloads that do not have to be materialized.

The benchmarks move gigabytes of "random data" through the storage services
(paper Algorithm 1 uploads 100 MB per worker; downloads total 2 GB per
worker).  Holding that in RAM as real ``bytes`` would make the simulation
memory-bound, so the data plane operates on :class:`Content` values:

* :class:`BytesContent` — real bytes (used by the emulator, examples, and
  semantics tests),
* :class:`SyntheticContent` — a virtual buffer defined by ``(seed, origin,
  size)`` whose bytes are a deterministic *positional* function, so slicing
  commutes with materialization: ``c.slice(a, b).to_bytes() ==
  c.to_bytes()[a:b]`` without ever materializing ``c``,
* :class:`CompositeContent` — zero-copy concatenation.

All content values are immutable.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

import numpy as np

from .errors import OutOfRangeError

__all__ = [
    "Content",
    "BytesContent",
    "SyntheticContent",
    "CompositeContent",
    "ZeroContent",
    "as_content",
    "concat",
    "random_content",
]

# splitmix64 constants — a well-mixed positional byte generator.
_PRIME_1 = np.uint64(0x9E3779B97F4A7C15)
_PRIME_2 = np.uint64(0xBF58476D1CE4E5B9)
_PRIME_3 = np.uint64(0x94D049BB133111EB)


def _positional_bytes(seed: int, origin: int, size: int) -> bytes:
    """Deterministic bytes for positions ``origin .. origin+size``."""
    if size == 0:
        return b""
    pos = np.arange(origin, origin + size, dtype=np.uint64)
    # uint64 arithmetic wraps modulo 2**64 by design (splitmix64); silence
    # numpy's overflow warning for the deliberate wrap-around multiply.
    with np.errstate(over="ignore"):
        seed_term = np.uint64(seed & 0xFFFFFFFFFFFFFFFF) * _PRIME_1
    x = pos + seed_term
    x = (x ^ (x >> np.uint64(30))) * _PRIME_2
    x = (x ^ (x >> np.uint64(27))) * _PRIME_3
    x = x ^ (x >> np.uint64(31))
    return (x & np.uint64(0xFF)).astype(np.uint8).tobytes()


class Content:
    """Abstract immutable byte payload."""

    __slots__ = ()

    @property
    def size(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def slice(self, start: int, stop: int) -> "Content":  # pragma: no cover
        raise NotImplementedError

    def to_bytes(self) -> bytes:  # pragma: no cover - abstract
        raise NotImplementedError

    def _check_range(self, start: int, stop: int) -> None:
        if not (0 <= start <= stop <= self.size):
            raise OutOfRangeError(
                f"range [{start}, {stop}) outside content of size {self.size}"
            )

    def __len__(self) -> int:
        return self.size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Content):
            return NotImplemented
        if self.size != other.size:
            return False
        return self.to_bytes() == other.to_bytes()

    def __hash__(self) -> int:  # content values are small or test-only
        return hash((self.size, self.to_bytes() if self.size <= 1 << 16 else id(self)))


class BytesContent(Content):
    """Content backed by real bytes."""

    __slots__ = ("_data",)

    def __init__(self, data: Union[bytes, bytearray, memoryview]) -> None:
        self._data = bytes(data)

    @property
    def size(self) -> int:
        return len(self._data)

    def slice(self, start: int, stop: int) -> "BytesContent":
        self._check_range(start, stop)
        return BytesContent(self._data[start:stop])

    def to_bytes(self) -> bytes:
        return self._data

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BytesContent(size={self.size})"


class SyntheticContent(Content):
    """A virtual buffer of positionally-generated pseudo-random bytes."""

    __slots__ = ("_seed", "_origin", "_size")

    def __init__(self, size: int, seed: int = 0, origin: int = 0) -> None:
        if size < 0:
            raise ValueError("size must be >= 0")
        self._seed = int(seed)
        self._origin = int(origin)
        self._size = int(size)

    @property
    def size(self) -> int:
        return self._size

    @property
    def seed(self) -> int:
        return self._seed

    def slice(self, start: int, stop: int) -> "SyntheticContent":
        self._check_range(start, stop)
        return SyntheticContent(stop - start, self._seed, self._origin + start)

    def to_bytes(self) -> bytes:
        return _positional_bytes(self._seed, self._origin, self._size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SyntheticContent(size={self._size}, seed={self._seed}, "
                f"origin={self._origin})")


class ZeroContent(Content):
    """All-zero bytes (uninitialized page-blob ranges read as zeros)."""

    __slots__ = ("_size",)

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError("size must be >= 0")
        self._size = int(size)

    @property
    def size(self) -> int:
        return self._size

    def slice(self, start: int, stop: int) -> "ZeroContent":
        self._check_range(start, stop)
        return ZeroContent(stop - start)

    def to_bytes(self) -> bytes:
        return bytes(self._size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ZeroContent(size={self._size})"


class CompositeContent(Content):
    """Zero-copy concatenation of child contents."""

    __slots__ = ("_parts", "_size", "_offsets")

    def __init__(self, parts: Sequence[Content]) -> None:
        flat: List[Content] = []
        for p in parts:
            if isinstance(p, CompositeContent):
                flat.extend(p._parts)
            elif p.size > 0:
                flat.append(p)
        self._parts = tuple(flat)
        self._offsets: List[int] = []
        off = 0
        for p in self._parts:
            self._offsets.append(off)
            off += p.size
        self._size = off

    @property
    def size(self) -> int:
        return self._size

    @property
    def parts(self) -> Sequence[Content]:
        return self._parts

    def slice(self, start: int, stop: int) -> Content:
        self._check_range(start, stop)
        if start == stop:
            return BytesContent(b"")
        out: List[Content] = []
        for off, part in zip(self._offsets, self._parts):
            end = off + part.size
            if end <= start:
                continue
            if off >= stop:
                break
            lo = max(start, off) - off
            hi = min(stop, end) - off
            out.append(part.slice(lo, hi))
        if len(out) == 1:
            return out[0]
        return CompositeContent(out)

    def to_bytes(self) -> bytes:
        return b"".join(p.to_bytes() for p in self._parts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CompositeContent(parts={len(self._parts)}, size={self._size})"


def as_content(data: Union[Content, bytes, bytearray, memoryview, str]) -> Content:
    """Coerce raw inputs to a :class:`Content` (strings become UTF-8)."""
    if isinstance(data, Content):
        return data
    if isinstance(data, str):
        return BytesContent(data.encode("utf-8"))
    if isinstance(data, (bytes, bytearray, memoryview)):
        return BytesContent(data)
    raise TypeError(f"cannot convert {type(data).__name__} to Content")


def concat(parts: Iterable[Content]) -> Content:
    """Concatenate contents without copying."""
    parts = [p for p in parts if p.size > 0]
    if not parts:
        return BytesContent(b"")
    if len(parts) == 1:
        return parts[0]
    return CompositeContent(parts)


def random_content(size: int, seed: int) -> SyntheticContent:
    """The benchmark's ``randomdata(size)``: a virtual random buffer."""
    return SyntheticContent(size, seed=seed)
