"""Error model for the emulated Windows Azure storage services (2012 era).

The hierarchy mirrors the REST error codes the 2011/2012 storage API
returned; benchmark code catches :class:`ServerBusyError` and retries after
a one-second sleep, exactly as the paper describes (Section IV.C).
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "StorageError",
    "ServerBusyError",
    "TransientServerError",
    "OperationTimedOutError",
    "RegionDownError",
    "RETRYABLE_ERRORS",
    "AuthenticationFailedError",
    "SecondaryReadOnlyError",
    "ResourceNotFoundError",
    "ContainerNotFoundError",
    "BlobNotFoundError",
    "QueueNotFoundError",
    "TableNotFoundError",
    "EntityNotFoundError",
    "MessageNotFoundError",
    "ResourceExistsError",
    "PreconditionFailedError",
    "ETagMismatchError",
    "InvalidNameError",
    "InvalidOperationError",
    "PayloadTooLargeError",
    "MessageTooLargeError",
    "EntityTooLargeError",
    "BlockTooLargeError",
    "TooManyBlocksError",
    "TooManyPropertiesError",
    "InvalidPageRangeError",
    "BlockNotFoundError",
    "OutOfRangeError",
    "AccountCapacityExceededError",
    "LeaseConflictError",
    "BatchError",
]


class StorageError(Exception):
    """Base class for all storage service failures."""

    #: REST status code the real service would return.
    status_code: int = 500
    #: Azure storage error code string.
    error_code: str = "InternalError"

    def __init__(self, message: str = "", *, detail: Optional[str] = None):
        super().__init__(message or self.error_code)
        self.detail = detail

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.args[0]!r}, status={self.status_code})"


class ServerBusyError(StorageError):
    """The server is throttling the request (scalability target exceeded).

    The paper: "we experienced a small number of server busy exceptions …
    which is an indication of hitting the 500 transactions per second limit.
    … the worker sleeps for a second before retrying the same operation."
    """

    status_code = 503
    error_code = "ServerBusy"

    def __init__(self, message: str = "", *, retry_after: float = 1.0, **kw):
        super().__init__(message, **kw)
        self.retry_after = retry_after


class TransientServerError(StorageError):
    """A transient 500 that is expected to succeed on retry.

    Injected by the fault engine (:mod:`repro.faults`) to model flaky
    front-ends; like ``ServerBusy``, clients are expected to back off and
    retry rather than fail the workload.
    """

    status_code = 500
    error_code = "InternalError"

    def __init__(self, message: str = "", *, retry_after: float = 1.0, **kw):
        super().__init__(message, **kw)
        self.retry_after = retry_after


class OperationTimedOutError(StorageError):
    """The request burned the server's time budget and then failed.

    The 2012 service returned ``500 OperationTimedOut`` when a request
    exceeded its processing deadline; the SDKs treated it as retryable.
    """

    status_code = 500
    error_code = "OperationTimedOut"

    def __init__(self, message: str = "", *, retry_after: float = 1.0, **kw):
        super().__init__(message, **kw)
        self.retry_after = retry_after


class RegionDownError(ServerBusyError):
    """An entire region (storage stamp) is unavailable.

    Raised by the geo layer's routing interceptor
    (:class:`~repro.pipeline.interceptors.GeoRoutingInterceptor`) while a
    ``region_outage`` fault window is open against the active endpoint.
    Subclasses :class:`ServerBusyError` so the paper's retry loops treat
    it as retryable; an RA-GRS client may instead serve *reads* from the
    secondary endpoint (:mod:`repro.geo`).
    """

    status_code = 503
    error_code = "RegionUnavailable"


#: Errors a well-behaved 2012 client retries (the SDK retry-policy set).
RETRYABLE_ERRORS = (ServerBusyError, TransientServerError,
                    OperationTimedOutError)


class AuthenticationFailedError(StorageError):
    """403: the request signature or account key was rejected.

    Raised by an :class:`~repro.pipeline.interceptors.AuthInterceptor`
    at the front of the operation pipeline.
    """

    status_code = 403
    error_code = "AuthenticationFailed"


class SecondaryReadOnlyError(AuthenticationFailedError):
    """Write rejected by an RA-GRS read-only secondary endpoint.

    The real service refuses writes against ``-secondary`` endpoints with
    a 403 ``InsufficientAccountPermissions``; deliberately *not* in
    :data:`RETRYABLE_ERRORS` — retrying a write against a read-only
    replica can never succeed, the client must route to the primary (or
    wait for a failover promotion).
    """

    status_code = 403
    error_code = "InsufficientAccountPermissions"


class ResourceNotFoundError(StorageError):
    status_code = 404
    error_code = "ResourceNotFound"


class ContainerNotFoundError(ResourceNotFoundError):
    error_code = "ContainerNotFound"


class BlobNotFoundError(ResourceNotFoundError):
    error_code = "BlobNotFound"


class QueueNotFoundError(ResourceNotFoundError):
    error_code = "QueueNotFound"


class TableNotFoundError(ResourceNotFoundError):
    error_code = "TableNotFound"


class EntityNotFoundError(ResourceNotFoundError):
    error_code = "EntityNotFound"


class MessageNotFoundError(ResourceNotFoundError):
    error_code = "MessageNotFound"


class ResourceExistsError(StorageError):
    status_code = 409
    error_code = "ResourceAlreadyExists"


class PreconditionFailedError(StorageError):
    status_code = 412
    error_code = "ConditionNotMet"


class ETagMismatchError(PreconditionFailedError):
    error_code = "UpdateConditionNotSatisfied"


class InvalidNameError(StorageError):
    status_code = 400
    error_code = "OutOfRangeInput"


class InvalidOperationError(StorageError):
    status_code = 400
    error_code = "InvalidOperation"


class PayloadTooLargeError(StorageError):
    status_code = 413
    error_code = "RequestBodyTooLarge"


class MessageTooLargeError(PayloadTooLargeError):
    error_code = "MessageTooLarge"


class EntityTooLargeError(PayloadTooLargeError):
    error_code = "EntityTooLarge"


class BlockTooLargeError(PayloadTooLargeError):
    error_code = "BlockTooLarge"


class TooManyBlocksError(StorageError):
    status_code = 409
    error_code = "BlockCountExceedsLimit"


class TooManyPropertiesError(StorageError):
    status_code = 400
    error_code = "PropertyCountExceedsLimit"


class InvalidPageRangeError(StorageError):
    status_code = 400
    error_code = "InvalidPageRange"


class BlockNotFoundError(StorageError):
    status_code = 400
    error_code = "InvalidBlockId"


class OutOfRangeError(StorageError):
    status_code = 416
    error_code = "InvalidRange"


class AccountCapacityExceededError(StorageError):
    status_code = 409
    error_code = "AccountBeingCreated"  # closest 2012-era analogue

    def __init__(self, message: str = "storage account capacity (100 TB) exceeded", **kw):
        super().__init__(message, **kw)


class LeaseConflictError(StorageError):
    status_code = 409
    error_code = "LeaseIdMismatchWithBlobOperation"


class BatchError(StorageError):
    """An entity-group transaction failed; carries the failing index."""

    status_code = 400
    error_code = "InvalidInput"

    def __init__(self, message: str, *, index: int, cause: StorageError, **kw):
        super().__init__(message, **kw)
        self.index = index
        self.cause = cause
