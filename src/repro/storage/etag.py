"""ETag generation and matching for optimistic concurrency (Table storage)."""

from __future__ import annotations

from itertools import count
from typing import Optional

from .errors import ETagMismatchError

__all__ = ["ETagFactory", "WILDCARD_ETAG", "check_etag"]

#: The wild-card ETag: matches any current ETag (the paper: "We only tested
#: the unconditional updates by using the wild card character * for ETag").
WILDCARD_ETAG = "*"


class ETagFactory:
    """Produces unique, monotonically increasing ETag strings.

    Real Azure uses HTTP-date-based ETags; uniqueness and monotonicity are
    the only properties the concurrency protocol needs, so a counter keeps
    the simulation deterministic.
    """

    def __init__(self, prefix: str = "W/\"datetime'") -> None:
        self._prefix = prefix
        self._counter = count(1)

    def next(self) -> str:
        return f"{self._prefix}{next(self._counter):016d}'\""


def check_etag(expected: Optional[str], actual: str) -> None:
    """Raise :class:`ETagMismatchError` unless ``expected`` matches.

    ``None`` and ``"*"`` are both treated as unconditional (match anything),
    mirroring the SDK behaviour the paper's Algorithm 5 relies on.
    """
    if expected is None or expected == WILDCARD_ETAG:
        return
    if expected != actual:
        raise ETagMismatchError(
            f"etag mismatch: expected {expected!r}, resource has {actual!r}"
        )
