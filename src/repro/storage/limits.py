"""Service limits and scalability targets of Windows Azure storage, 2012 era.

Every number here is quoted from the paper (Section IV and the per-service
subsections) or from the MSDN limits the paper cites.  Two eras are provided:

* :data:`LIMITS_2012` — the post-October-2011 API the paper benchmarks
  (64 KB messages, 7-day TTL).
* :data:`LIMITS_2010` — the earlier platform Hill et al. measured (8 KB
  messages, 2-hour TTL), used by the API-era ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ServiceLimits", "LIMITS_2012", "LIMITS_2010", "KB", "MB", "GB", "TB"]

KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB


@dataclass(frozen=True)
class ServiceLimits:
    """Hard limits and scalability targets for a storage account."""

    # -- account-wide targets (paper Section IV intro) ----------------------
    #: "The absolute limit on a storage account is 100 TB."
    account_capacity_bytes: int = 100 * TB
    #: "up to 5,000 transactions (entities/messages/blobs) per second"
    account_transactions_per_second: int = 5000
    #: "maximum bandwidth support for up to 3 GB per second"
    account_bandwidth_bytes_per_second: int = 3 * GB

    # -- blob (Section IV.A) -------------------------------------------------
    #: "The throughput of a blob is up to 60 MB per second."
    blob_throughput_bytes_per_second: int = 60 * MB
    #: "small blocks of size up to 4 MB"
    max_block_bytes: int = 4 * MB
    #: "There can be a total of 50,000 such blocks in a blob."
    max_blocks_per_blob: int = 50_000
    #: "Block blobs less than 64 MB ... uploaded ... as a single entity"
    max_single_shot_blob_bytes: int = 64 * MB
    #: "the maximum size of a Block blob cannot exceed 200 GB"
    max_block_blob_bytes: int = 200 * GB
    #: "A Page blob can store up to 1 TB of data."
    max_page_blob_bytes: int = 1 * TB
    #: "The offset boundary should be divisible by 512"
    page_alignment_bytes: int = 512
    #: "the total data that can be updated in one operation is 4 MB"
    max_page_write_bytes: int = 4 * MB

    # -- queue (Section IV.B) ------------------------------------------------
    #: "A single queue can only handle up to 500 messages per second."
    queue_messages_per_second: int = 500
    #: "The maximum size of a message supported by Azure cloud is 64 KB"
    max_message_bytes: int = 64 * KB
    #: "48 KB (49152 Bytes to be precise) is the maximum usable size …
    #: rest of the message content is metadata."
    max_message_payload_bytes: int = 48 * KB
    #: "if a message is left in the queue for longer than a week … it
    #: automatically disappears"
    max_message_ttl_seconds: float = 7 * 24 * 3600.0
    #: Default visibility timeout applied by GetMessage (SDK default 30 s).
    default_visibility_timeout_seconds: float = 30.0

    # -- table (Section IV.C) ------------------------------------------------
    #: "A single partition can support access to a maximum of 500 entities
    #: per second."
    partition_entities_per_second: int = 500
    #: "entities of up to 1 MB in size"
    max_entity_bytes: int = 1 * MB
    #: "each entity is composed of up to 255 properties"
    max_entity_properties: int = 255

    def with_overrides(self, **kw) -> "ServiceLimits":
        """A copy with some limits replaced (used by ablations and tests)."""
        return replace(self, **kw)


#: The platform the paper benchmarks (post-October-2011 APIs).
LIMITS_2012 = ServiceLimits()

#: The earlier platform (Hill et al., 2010): 8 KB messages and the 2-hour
#: message expiry the paper calls out as "problematic for long-running
#: real-world scientific applications".
LIMITS_2010 = LIMITS_2012.with_overrides(
    max_message_bytes=8 * KB,
    max_message_payload_bytes=6 * KB,
    max_message_ttl_seconds=2 * 3600.0,
)
