"""Resource-name validation matching the 2012 Azure storage naming rules."""

from __future__ import annotations

import re

from .errors import InvalidNameError

__all__ = [
    "validate_container_name",
    "validate_blob_name",
    "validate_queue_name",
    "validate_table_name",
    "validate_account_name",
]

# Containers and queues share the DNS-compatible rule set: 3-63 chars,
# lowercase letters / digits / dashes, start+end alphanumeric, no "--".
_DNS_NAME = re.compile(r"^[a-z0-9](?:[a-z0-9]|-(?=[a-z0-9])){1,61}[a-z0-9]$")

# Tables: 3-63 alphanumeric characters, must start with a letter.
_TABLE_NAME = re.compile(r"^[A-Za-z][A-Za-z0-9]{2,62}$")

# Accounts: 3-24 lowercase alphanumerics.
_ACCOUNT_NAME = re.compile(r"^[a-z0-9]{3,24}$")


def _check(pattern: re.Pattern, name: str, kind: str) -> str:
    if not isinstance(name, str):
        raise InvalidNameError(f"{kind} name must be a string, got {type(name).__name__}")
    if not pattern.match(name):
        raise InvalidNameError(f"invalid {kind} name {name!r}")
    return name


def validate_container_name(name: str) -> str:
    """Validate a blob container name (DNS rules, 3-63 chars)."""
    if name == "$root":  # the special root container is legal
        return name
    return _check(_DNS_NAME, name, "container")


def validate_blob_name(name: str) -> str:
    """Validate a blob name (1-1024 chars, any printable path)."""
    if not isinstance(name, str):
        raise InvalidNameError(f"blob name must be a string, got {type(name).__name__}")
    if not 1 <= len(name) <= 1024:
        raise InvalidNameError(f"blob name length {len(name)} outside 1..1024")
    if name.endswith(".") or name.endswith("/"):
        raise InvalidNameError(f"blob name {name!r} may not end with '.' or '/'")
    return name


def validate_queue_name(name: str) -> str:
    """Validate a queue name (DNS rules, 3-63 chars)."""
    return _check(_DNS_NAME, name, "queue")


def validate_table_name(name: str) -> str:
    """Validate a table name (alphanumeric, starts with a letter)."""
    return _check(_TABLE_NAME, name, "table")


def validate_account_name(name: str) -> str:
    """Validate a storage account name (3-24 lowercase alphanumerics)."""
    return _check(_ACCOUNT_NAME, name, "account")
