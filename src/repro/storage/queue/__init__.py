"""Queue service data plane (messages, visibility timeouts, TTL)."""

from .state import QueueMessage, QueueServiceState, QueueState

__all__ = ["QueueServiceState", "QueueState", "QueueMessage"]
