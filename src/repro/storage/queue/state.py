"""Data plane of the Windows Azure Queue service (2012 semantics).

Implements the behaviours the paper's Algorithms 2-4 depend on:

* ``PutMessage`` / ``GetMessage`` / ``PeekMessage`` / ``DeleteMessage``;
* **visibility timeouts** — a gotten message becomes invisible to other
  consumers and *reappears* unless deleted in time ("if the consumer does
  not delete the message after its consumption, it reappears in the queue
  after a certain time") — this is the platform's built-in fault tolerance;
* **TTL expiry** — messages left longer than 7 days (2 hours in the 2010-era
  limits) vanish;
* **no FIFO guarantee** — retrieval is approximately FIFO; an optional
  seeded shuffle models the observable reordering the paper warns about;
* the 64 KB message limit with only 48 KB of usable payload;
* ``approximate_message_count``, which Algorithm 2's barrier polls.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import count
from typing import Dict, List, Optional

import numpy as np

from ..clock import Clock
from ..content import Content, as_content
from ..errors import (
    InvalidOperationError,
    MessageNotFoundError,
    MessageTooLargeError,
    QueueNotFoundError,
    ResourceExistsError,
)
from ..limits import LIMITS_2012, ServiceLimits
from ..naming import validate_queue_name

__all__ = ["QueueServiceState", "QueueState", "QueueMessage"]

#: Metadata overhead per message: of the 64 KB wire limit only 48 KB carry
#: payload ("rest of the message content is metadata", paper IV.B).
_MESSAGE_OVERHEAD_FACTOR = 4 / 3


@dataclass
class QueueMessage:
    """One queue message, including its server-side bookkeeping."""

    message_id: str
    content: Content
    insertion_time: float
    expiration_time: float
    #: Time before which the message is invisible to consumers.
    next_visible_time: float
    dequeue_count: int = 0
    #: Receipt returned by the last ``get``; required to delete/update.
    pop_receipt: Optional[str] = None

    def visible(self, now: float) -> bool:
        return now >= self.next_visible_time

    def expired(self, now: float) -> bool:
        return now >= self.expiration_time

    @property
    def size(self) -> int:
        return self.content.size


class QueueState:
    """One named queue: an (approximately FIFO) list of messages."""

    def __init__(self, service: "QueueServiceState", name: str) -> None:
        self._service = service
        self.name = validate_queue_name(name)
        self._messages: List[QueueMessage] = []
        self._ids = count(1)
        self._receipts = count(1)
        self.created_at = service._clock.now()
        #: Earliest expiration among stored messages; a full purge scan only
        #: runs once the clock passes it (keeps per-op cost O(1) while the
        #: 7-day TTL is far away, which is every benchmark).
        self._next_expiry = float("inf")

    # -- internal ---------------------------------------------------------
    def _now(self) -> float:
        return self._service._clock.now()

    def _purge_expired(self) -> None:
        now = self._now()
        if now < self._next_expiry:
            return
        kept = []
        next_expiry = float("inf")
        for m in self._messages:
            if m.expired(now):
                self._service._account_delta(-m.size)
            else:
                kept.append(m)
                if m.expiration_time < next_expiry:
                    next_expiry = m.expiration_time
        self._messages = kept
        self._next_expiry = next_expiry

    def _visible_indices(self, limit: Optional[int] = None) -> List[int]:
        now = self._now()
        rng = self._service._reorder_rng
        if rng is None and limit is not None:
            # FIFO fast path: only the first ``limit`` visible messages are
            # needed; stop scanning as soon as they are found.
            idx: List[int] = []
            for i, m in enumerate(self._messages):
                if m.visible(now):
                    idx.append(i)
                    if len(idx) >= limit:
                        break
            return idx
        idx = [i for i, m in enumerate(self._messages) if m.visible(now)]
        if rng is not None and len(idx) > 1:
            # Model the lack of a FIFO guarantee: the storage front-ends may
            # serve any visible message. A light shuffle keeps it almost-FIFO
            # like the real service while exercising the non-FIFO code paths.
            perm = rng.permutation(len(idx))
            idx = [idx[i] for i in perm]
        return idx

    # -- producer API -------------------------------------------------------
    def put_message(self, data, *, ttl: Optional[float] = None,
                    visibility_delay: float = 0.0) -> QueueMessage:
        """Add a message (``PutMessage``).

        ``ttl`` defaults to (and is capped at) the era's maximum; payload is
        limited to 48 KB usable bytes (64 KB wire size).
        """
        content = as_content(data)
        limits = self._service.limits
        if content.size > limits.max_message_payload_bytes:
            raise MessageTooLargeError(
                f"payload of {content.size} B exceeds usable maximum "
                f"{limits.max_message_payload_bytes} B "
                f"(wire limit {limits.max_message_bytes} B incl. metadata)"
            )
        if visibility_delay < 0:
            raise InvalidOperationError("visibility_delay must be >= 0")
        now = self._now()
        max_ttl = limits.max_message_ttl_seconds
        if ttl is None or ttl > max_ttl:
            ttl = max_ttl
        if ttl <= 0:
            raise InvalidOperationError(f"ttl must be positive, got {ttl}")
        msg = QueueMessage(
            message_id=f"{self.name}-{next(self._ids)}",
            content=content,
            insertion_time=now,
            expiration_time=now + ttl,
            next_visible_time=now + visibility_delay,
        )
        # Charge capacity first: a rejected put must not leave the message
        # behind.
        self._service._account_delta(msg.size)
        self._messages.append(msg)
        if msg.expiration_time < self._next_expiry:
            self._next_expiry = msg.expiration_time
        return replace(msg)

    # -- consumer API ---------------------------------------------------------
    def get_messages(self, n: int = 1, *,
                     visibility_timeout: Optional[float] = None) -> List[QueueMessage]:
        """Retrieve up to ``n`` visible messages (``GetMessage``).

        Each returned message becomes invisible for ``visibility_timeout``
        seconds and carries a fresh pop receipt; its dequeue count is
        incremented.  Unless deleted before the timeout elapses, the message
        reappears for other consumers (at-least-once delivery).
        """
        if n < 1:
            raise InvalidOperationError("n must be >= 1")
        self._purge_expired()
        if visibility_timeout is None:
            visibility_timeout = self._service.limits.default_visibility_timeout_seconds
        if visibility_timeout <= 0:
            raise InvalidOperationError("visibility_timeout must be > 0")
        now = self._now()
        got: List[QueueMessage] = []
        for i in self._visible_indices(limit=n):
            if len(got) >= n:
                break
            m = self._messages[i]
            m.next_visible_time = now + visibility_timeout
            m.dequeue_count += 1
            m.pop_receipt = f"rcpt-{next(self._receipts)}"
            # Hand out a snapshot: the receipt a consumer holds must not
            # change when another consumer later re-gets the message.
            got.append(replace(m))
        return got

    def get_message(self, *, visibility_timeout: Optional[float] = None
                    ) -> Optional[QueueMessage]:
        """Retrieve one message, or ``None`` if none is visible."""
        got = self.get_messages(1, visibility_timeout=visibility_timeout)
        return got[0] if got else None

    def peek_messages(self, n: int = 1) -> List[QueueMessage]:
        """Look at up to ``n`` visible messages without any state change."""
        if n < 1:
            raise InvalidOperationError("n must be >= 1")
        self._purge_expired()
        return [replace(self._messages[i])
                for i in self._visible_indices(limit=n)[:n]]

    def peek_message(self) -> Optional[QueueMessage]:
        peeked = self.peek_messages(1)
        return peeked[0] if peeked else None

    def delete_message(self, message_id: str, pop_receipt: str) -> None:
        """Delete a previously-gotten message (receipt must match)."""
        self._purge_expired()
        for i, m in enumerate(self._messages):
            if m.message_id == message_id:
                if m.pop_receipt != pop_receipt or pop_receipt is None:
                    raise MessageNotFoundError(
                        f"pop receipt {pop_receipt!r} no longer valid for "
                        f"message {message_id!r}"
                    )
                self._service._account_delta(-m.size)
                del self._messages[i]
                return
        raise MessageNotFoundError(f"message {message_id!r} not found")

    def update_message(self, message_id: str, pop_receipt: str, data=None, *,
                       visibility_timeout: float = 0.0) -> QueueMessage:
        """Update content and/or extend invisibility of a gotten message."""
        self._purge_expired()
        for m in self._messages:
            if m.message_id == message_id:
                if m.pop_receipt != pop_receipt or pop_receipt is None:
                    raise MessageNotFoundError(
                        f"pop receipt {pop_receipt!r} no longer valid"
                    )
                if data is not None:
                    content = as_content(data)
                    limits = self._service.limits
                    if content.size > limits.max_message_payload_bytes:
                        raise MessageTooLargeError(
                            f"payload of {content.size} B exceeds "
                            f"{limits.max_message_payload_bytes} B"
                        )
                    self._service._account_delta(content.size - m.size)
                    m.content = content
                m.next_visible_time = self._now() + max(0.0, visibility_timeout)
                m.pop_receipt = f"rcpt-{next(self._receipts)}"
                return replace(m)
        raise MessageNotFoundError(f"message {message_id!r} not found")

    def make_visible(self, message_id: str) -> bool:
        """Force a message visible *now*, ignoring its visibility timeout.

        Fault-injection/test helper: models duplicate delivery — the
        at-least-once anomaly where a gotten message is served to another
        consumer as well.  Returns False if the message no longer exists.
        """
        for m in self._messages:
            if m.message_id == message_id:
                m.next_visible_time = self._now()
                return True
        return False

    def clear(self) -> None:
        """Delete all messages."""
        for m in self._messages:
            self._service._account_delta(-m.size)
        self._messages = []

    # -- introspection --------------------------------------------------------
    def approximate_message_count(self) -> int:
        """Count of non-expired messages (visible or not).

        This is what Algorithm 2's barrier polls via ``GetMsgCount``; like
        the real service it counts invisible messages too.
        """
        self._purge_expired()
        return len(self._messages)

    def visible_message_count(self) -> int:
        """Count of currently visible messages (test/diagnostic helper)."""
        self._purge_expired()
        now = self._now()
        return sum(1 for m in self._messages if m.visible(now))

    def partition_key(self) -> str:
        """Queues are partitioned on the queue name alone (paper IV.B)."""
        return self.name

    def __len__(self) -> int:
        return self.approximate_message_count()


class QueueServiceState:
    """Root state of the queue service of one storage account."""

    def __init__(self, clock: Clock, limits: ServiceLimits = LIMITS_2012,
                 account=None, *, fifo_jitter_seed: Optional[int] = None) -> None:
        self._clock = clock
        self.limits = limits
        self._account = account
        self.queues: Dict[str, QueueState] = {}
        #: When set, visible-message selection is shuffled (non-FIFO model).
        self._reorder_rng = (
            np.random.default_rng(fifo_jitter_seed)
            if fifo_jitter_seed is not None else None
        )

    def _account_delta(self, delta: int) -> None:
        if self._account is not None:
            self._account.adjust_usage(delta)

    def create_queue(self, name: str, *, fail_on_exist: bool = False) -> QueueState:
        """Create a queue (idempotent unless ``fail_on_exist``)."""
        if name in self.queues:
            if fail_on_exist:
                raise ResourceExistsError(f"queue {name!r} already exists")
            return self.queues[name]
        queue = QueueState(self, name)
        self.queues[name] = queue
        return queue

    def get_queue(self, name: str) -> QueueState:
        try:
            return self.queues[name]
        except KeyError:
            raise QueueNotFoundError(f"queue {name!r} not found") from None

    def delete_queue(self, name: str) -> None:
        queue = self.get_queue(name)
        queue.clear()
        del self.queues[name]

    def list_queues(self, prefix: str = "") -> List[str]:
        return sorted(n for n in self.queues if n.startswith(prefix))

    def total_bytes(self) -> int:
        return sum(
            m.size for q in self.queues.values() for m in q._messages
        )
