"""Table service data plane (entities, partitions, queries, batches)."""

from .entity import Entity, entity_size
from .filters import FilterError, parse_filter
from .state import BatchOperation, QueryResult, TableServiceState, TableState

__all__ = [
    "TableServiceState",
    "TableState",
    "Entity",
    "entity_size",
    "QueryResult",
    "BatchOperation",
    "parse_filter",
    "FilterError",
]
