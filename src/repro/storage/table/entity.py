"""Entities for the Table service: schema-less property bags.

"All of the properties of a table are stored as (Name, Value) pairs, i.e.
two entities in the same table can have different properties." (paper IV.C)
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping, Tuple

from ..content import Content
from ..errors import (
    EntityTooLargeError,
    InvalidOperationError,
    TooManyPropertiesError,
)
from ..limits import ServiceLimits

__all__ = ["Entity", "entity_size", "SYSTEM_PROPERTIES"]

#: Property names managed by the service itself.
SYSTEM_PROPERTIES = frozenset({"PartitionKey", "RowKey", "Timestamp"})

#: Python types storable as property values (EDM types of the 2012 service).
_ALLOWED_TYPES = (str, int, float, bool, bytes, Content)


def _value_size(value: Any) -> int:
    """Approximate stored size of one property value, in bytes.

    Mirrors the published Azure entity-size formula closely enough for the
    1 MB limit to bite where it would on the real service: strings count
    2 bytes/char (UTF-16 on the wire), binary its length, numbers 8 bytes.
    """
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, str):
        return 2 * len(value)
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, Content):
        return value.size
    raise InvalidOperationError(
        f"unsupported property type {type(value).__name__}"
    )


def entity_size(partition_key: str, row_key: str,
                properties: Mapping[str, Any]) -> int:
    """Approximate stored size of an entity, in bytes."""
    size = 4 + 2 * (len(partition_key) + len(row_key))
    for name, value in properties.items():
        size += 8 + 2 * len(name) + _value_size(value)
    return size


class Entity:
    """One table entity: (PartitionKey, RowKey) plus a property bag.

    Immutable from the outside; the table state machine produces new
    instances on update/merge so snapshots taken by queries stay stable.
    """

    __slots__ = ("partition_key", "row_key", "_properties", "etag", "timestamp")

    def __init__(self, partition_key: str, row_key: str,
                 properties: Mapping[str, Any], *, etag: str = "",
                 timestamp: float = 0.0) -> None:
        if not isinstance(partition_key, str) or not isinstance(row_key, str):
            raise InvalidOperationError("PartitionKey and RowKey must be strings")
        for name, value in properties.items():
            if name in SYSTEM_PROPERTIES:
                raise InvalidOperationError(
                    f"property {name!r} is reserved for the system"
                )
            if not isinstance(value, _ALLOWED_TYPES):
                raise InvalidOperationError(
                    f"property {name!r} has unsupported type {type(value).__name__}"
                )
        self.partition_key = partition_key
        self.row_key = row_key
        self._properties: Dict[str, Any] = dict(properties)
        self.etag = etag
        self.timestamp = timestamp

    # -- validation ---------------------------------------------------------
    def validate(self, limits: ServiceLimits) -> None:
        """Enforce the ≤255-property and ≤1 MB entity limits."""
        if len(self._properties) > limits.max_entity_properties:
            raise TooManyPropertiesError(
                f"{len(self._properties)} properties exceed "
                f"{limits.max_entity_properties}"
            )
        size = self.size
        if size > limits.max_entity_bytes:
            raise EntityTooLargeError(
                f"entity of {size} B exceeds {limits.max_entity_bytes} B"
            )

    # -- access ---------------------------------------------------------------
    @property
    def size(self) -> int:
        return entity_size(self.partition_key, self.row_key, self._properties)

    @property
    def key(self) -> Tuple[str, str]:
        return (self.partition_key, self.row_key)

    def properties(self) -> Dict[str, Any]:
        """Copy of the user property bag."""
        return dict(self._properties)

    def get(self, name: str, default: Any = None) -> Any:
        if name == "PartitionKey":
            return self.partition_key
        if name == "RowKey":
            return self.row_key
        if name == "Timestamp":
            return self.timestamp
        return self._properties.get(name, default)

    def __getitem__(self, name: str) -> Any:
        sentinel = object()
        value = self.get(name, sentinel)
        if value is sentinel:
            raise KeyError(name)
        return value

    def __contains__(self, name: str) -> bool:
        return name in SYSTEM_PROPERTIES or name in self._properties

    def __iter__(self) -> Iterator[str]:
        return iter(self._properties)

    def __len__(self) -> int:
        return len(self._properties)

    # -- derivation -------------------------------------------------------
    def replaced_with(self, properties: Mapping[str, Any], *, etag: str,
                      timestamp: float) -> "Entity":
        """A new entity with the property bag fully replaced."""
        return Entity(self.partition_key, self.row_key, properties,
                      etag=etag, timestamp=timestamp)

    def merged_with(self, properties: Mapping[str, Any], *, etag: str,
                    timestamp: float) -> "Entity":
        """A new entity with ``properties`` merged over the current bag."""
        merged = dict(self._properties)
        merged.update(properties)
        return Entity(self.partition_key, self.row_key, merged,
                      etag=etag, timestamp=timestamp)

    def project(self, names) -> "Entity":
        """A copy keeping only the ``names`` properties (OData ``$select``).

        System keys are always retained; selecting an absent property
        simply omits it, like the 2012 service.
        """
        kept = {n: self._properties[n] for n in names
                if n in self._properties}
        return Entity(self.partition_key, self.row_key, kept,
                      etag=self.etag, timestamp=self.timestamp)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Entity(pk={self.partition_key!r}, rk={self.row_key!r}, "
                f"props={len(self._properties)}, etag={self.etag!r})")
