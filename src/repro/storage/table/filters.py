"""A small OData-style filter language for table queries.

The 2012 Table service accepted ``$filter`` expressions such as::

    PartitionKey eq 'worker-7' and RowKey ge '0100'
    Size gt 4096 or not (Flag eq true)

This module provides a recursive-descent parser compiling such expressions
into predicates over :class:`~repro.storage.table.entity.Entity`.  The
grammar (in precedence order, loosest first)::

    expr    := or_e
    or_e    := and_e ('or' and_e)*
    and_e   := not_e ('and' not_e)*
    not_e   := 'not' not_e | cmp
    cmp     := '(' expr ')' | ident OP literal
    OP      := eq | ne | gt | ge | lt | le
    literal := 'string' | number | true | false
"""

from __future__ import annotations

import re
from typing import Any, Callable, List, NamedTuple, Optional

from ..errors import InvalidOperationError
from .entity import Entity

__all__ = ["parse_filter", "FilterError", "Predicate"]

Predicate = Callable[[Entity], bool]


class FilterError(InvalidOperationError):
    """The filter expression could not be parsed."""

    error_code = "InvalidInput"


class _Token(NamedTuple):
    kind: str
    value: Any
    pos: int


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<string>'(?:[^']|'')*')
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<word>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"and", "or", "not", "eq", "ne", "gt", "ge", "lt", "le",
             "true", "false"}

_MISSING = object()


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise FilterError(f"unexpected character {text[pos]!r} at {pos}")
        pos = m.end()
        kind = m.lastgroup
        if kind == "ws":
            continue
        value: Any = m.group()
        if kind == "string":
            value = value[1:-1].replace("''", "'")
        elif kind == "number":
            value = float(value) if "." in value else int(value)
        elif kind == "word":
            lowered = value.lower()
            if lowered in _KEYWORDS:
                kind, value = lowered, lowered
            else:
                kind = "ident"
        tokens.append(_Token(kind, value, m.start()))
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token], text: str) -> None:
        self._tokens = tokens
        self._text = text
        self._i = 0

    def _peek(self) -> Optional[_Token]:
        return self._tokens[self._i] if self._i < len(self._tokens) else None

    def _next(self) -> _Token:
        tok = self._peek()
        if tok is None:
            raise FilterError(f"unexpected end of filter {self._text!r}")
        self._i += 1
        return tok

    def _expect(self, kind: str) -> _Token:
        tok = self._next()
        if tok.kind != kind:
            raise FilterError(
                f"expected {kind} at position {tok.pos}, got {tok.kind} "
                f"({tok.value!r})"
            )
        return tok

    def parse(self) -> Predicate:
        pred = self._or()
        tok = self._peek()
        if tok is not None:
            raise FilterError(f"trailing input at position {tok.pos}: {tok.value!r}")
        return pred

    def _or(self) -> Predicate:
        left = self._and()
        while (tok := self._peek()) is not None and tok.kind == "or":
            self._next()
            right = self._and()
            left = _or_pred(left, right)
        return left

    def _and(self) -> Predicate:
        left = self._not()
        while (tok := self._peek()) is not None and tok.kind == "and":
            self._next()
            right = self._not()
            left = _and_pred(left, right)
        return left

    def _not(self) -> Predicate:
        tok = self._peek()
        if tok is not None and tok.kind == "not":
            self._next()
            inner = self._not()
            return _not_pred(inner)
        return self._cmp()

    def _cmp(self) -> Predicate:
        tok = self._peek()
        if tok is not None and tok.kind == "lparen":
            self._next()
            inner = self._or()
            self._expect("rparen")
            return inner
        name_tok = self._expect("ident")
        op_tok = self._next()
        if op_tok.kind not in ("eq", "ne", "gt", "ge", "lt", "le"):
            raise FilterError(
                f"expected comparison operator at position {op_tok.pos}, "
                f"got {op_tok.value!r}"
            )
        lit_tok = self._next()
        if lit_tok.kind == "string" or lit_tok.kind == "number":
            literal: Any = lit_tok.value
        elif lit_tok.kind in ("true", "false"):
            literal = lit_tok.kind == "true"
        else:
            raise FilterError(
                f"expected literal at position {lit_tok.pos}, got {lit_tok.value!r}"
            )
        return _cmp_pred(name_tok.value, op_tok.kind, literal)


def _or_pred(a: Predicate, b: Predicate) -> Predicate:
    return lambda e: a(e) or b(e)


def _and_pred(a: Predicate, b: Predicate) -> Predicate:
    return lambda e: a(e) and b(e)


def _not_pred(a: Predicate) -> Predicate:
    return lambda e: not a(e)


def _cmp_pred(name: str, op: str, literal: Any) -> Predicate:
    def pred(entity: Entity) -> bool:
        value = entity.get(name, _MISSING)
        if value is _MISSING:
            # Like the real service, comparisons against absent properties
            # are false (the entity simply does not match).
            return False
        try:
            if op == "eq":
                return value == literal
            if op == "ne":
                return value != literal
            if op == "gt":
                return value > literal
            if op == "ge":
                return value >= literal
            if op == "lt":
                return value < literal
            return value <= literal
        except TypeError:
            return False

    return pred


def parse_filter(text: str) -> Predicate:
    """Compile an OData-style filter string into an entity predicate."""
    tokens = _tokenize(text)
    if not tokens:
        raise FilterError("empty filter expression")
    return _Parser(tokens, text).parse()
