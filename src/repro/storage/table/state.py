"""Data plane of the Windows Azure Table service (2012 semantics).

Implements the operations the paper's Algorithm 5 exercises — ``AddRow``
(insert), ``Query``, ``Update`` and ``Delete`` — plus the rest of the 2012
surface: insert-or-replace / insert-or-merge upserts, merge, ETag-based
optimistic concurrency with the ``*`` wildcard, key-range queries with
``$filter``/``$top``/continuation tokens, and atomic entity-group
transactions (batches within one partition).

"Tables are partitioned on the partition keys, i.e. entities of a table
that belong to the same partition are stored together on a server."
(paper IV.C) — partition layout is exposed via :meth:`TableState.partitions`
so the cluster model can enforce the 500 entities/s/partition target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..clock import Clock
from ..errors import (
    BatchError,
    EntityNotFoundError,
    InvalidOperationError,
    ResourceExistsError,
    StorageError,
    TableNotFoundError,
)
from ..etag import ETagFactory, check_etag
from ..limits import LIMITS_2012, ServiceLimits
from ..naming import validate_table_name
from .entity import Entity
from .filters import Predicate, parse_filter

__all__ = ["TableServiceState", "TableState", "QueryResult", "BatchOperation"]

#: Maximum operations per entity-group transaction (2012 API).
MAX_BATCH_OPERATIONS = 100

FilterSpec = Union[None, str, Predicate]


@dataclass
class QueryResult:
    """A page of query results plus an optional continuation token."""

    entities: List[Entity]
    continuation: Optional[Tuple[str, str]] = None

    def __iter__(self):
        return iter(self.entities)

    def __len__(self) -> int:
        return len(self.entities)


@dataclass
class BatchOperation:
    """One operation inside an entity-group transaction."""

    kind: str  # insert | update | merge | delete | upsert_replace | upsert_merge
    partition_key: str
    row_key: str
    properties: Optional[Mapping[str, Any]] = None
    etag: Optional[str] = None


class TableState:
    """One table: partitions of row-keyed entities."""

    def __init__(self, service: "TableServiceState", name: str) -> None:
        self._service = service
        self.name = validate_table_name(name)
        #: partition key -> row key -> Entity (row dicts kept key-sorted
        #: lazily at query time).
        self._partitions: Dict[str, Dict[str, Entity]] = {}
        self.created_at = service._clock.now()

    # -- internals -----------------------------------------------------------
    def _now(self) -> float:
        return self._service._clock.now()

    def _new_etag(self) -> str:
        return self._service._etags.next()

    def _partition(self, pk: str) -> Dict[str, Entity]:
        return self._partitions.setdefault(pk, {})

    def _lookup(self, pk: str, rk: str) -> Entity:
        try:
            return self._partitions[pk][rk]
        except KeyError:
            raise EntityNotFoundError(
                f"entity ({pk!r}, {rk!r}) not found in table {self.name!r}"
            ) from None

    def _store(self, entity: Entity) -> None:
        entity.validate(self._service.limits)
        pk = entity.partition_key
        old = self._partitions.get(pk, {}).get(entity.row_key)
        delta = entity.size - (old.size if old is not None else 0)
        # Charge capacity first: a rejected write must not mutate the table.
        self._service._account_delta(delta)
        self._partition(pk)[entity.row_key] = entity

    # -- write operations -----------------------------------------------------
    def insert(self, partition_key: str, row_key: str,
               properties: Mapping[str, Any]) -> Entity:
        """Insert a new entity (the paper's ``AddRow``); 409 on conflict."""
        pk_rows = self._partitions.get(partition_key, {})
        if row_key in pk_rows:
            raise ResourceExistsError(
                f"entity ({partition_key!r}, {row_key!r}) already exists"
            )
        entity = Entity(partition_key, row_key, properties,
                        etag=self._new_etag(), timestamp=self._now())
        self._store(entity)
        return entity

    def update(self, partition_key: str, row_key: str,
               properties: Mapping[str, Any], *,
               etag: Optional[str] = "*") -> Entity:
        """Replace an existing entity's property bag (``Update``).

        The paper's Algorithm 5 uses unconditional updates (``etag='*'``);
        pass a concrete ETag for optimistic concurrency.
        """
        current = self._lookup(partition_key, row_key)
        check_etag(etag, current.etag)
        entity = current.replaced_with(properties, etag=self._new_etag(),
                                       timestamp=self._now())
        self._store(entity)
        return entity

    def merge(self, partition_key: str, row_key: str,
              properties: Mapping[str, Any], *,
              etag: Optional[str] = "*") -> Entity:
        """Merge properties into an existing entity."""
        current = self._lookup(partition_key, row_key)
        check_etag(etag, current.etag)
        entity = current.merged_with(properties, etag=self._new_etag(),
                                     timestamp=self._now())
        self._store(entity)
        return entity

    def insert_or_replace(self, partition_key: str, row_key: str,
                          properties: Mapping[str, Any]) -> Entity:
        """Upsert, replacing the property bag if the entity exists."""
        entity = Entity(partition_key, row_key, properties,
                        etag=self._new_etag(), timestamp=self._now())
        self._store(entity)
        return entity

    def insert_or_merge(self, partition_key: str, row_key: str,
                        properties: Mapping[str, Any]) -> Entity:
        """Upsert, merging into the property bag if the entity exists."""
        existing = self._partitions.get(partition_key, {}).get(row_key)
        if existing is None:
            return self.insert_or_replace(partition_key, row_key, properties)
        entity = existing.merged_with(properties, etag=self._new_etag(),
                                      timestamp=self._now())
        self._store(entity)
        return entity

    def delete(self, partition_key: str, row_key: str, *,
               etag: Optional[str] = "*") -> None:
        """Delete an entity (``Delete``), with optional ETag check."""
        current = self._lookup(partition_key, row_key)
        check_etag(etag, current.etag)
        del self._partitions[partition_key][row_key]
        if not self._partitions[partition_key]:
            del self._partitions[partition_key]
        self._service._account_delta(-current.size)

    # -- read operations ----------------------------------------------------
    def get(self, partition_key: str, row_key: str) -> Entity:
        """Point query by full key."""
        return self._lookup(partition_key, row_key)

    def try_get(self, partition_key: str, row_key: str) -> Optional[Entity]:
        try:
            return self._lookup(partition_key, row_key)
        except EntityNotFoundError:
            return None

    def query(self, filter: FilterSpec = None, *, top: Optional[int] = None,
              continuation: Optional[Tuple[str, str]] = None,
              select: Optional[Sequence[str]] = None) -> QueryResult:
        """Scan the table in (PartitionKey, RowKey) order.

        ``filter`` may be an OData-style string (see
        :mod:`repro.storage.table.filters`) or a Python predicate.  ``top``
        bounds the page size; a continuation token points at the next key;
        ``select`` projects each returned entity to the named properties
        (OData ``$select``; the filter still sees the full entity).
        """
        if top is not None and top < 1:
            raise InvalidOperationError("top must be >= 1")
        predicate = self._compile_filter(filter)
        out: List[Entity] = []
        for pk in sorted(self._partitions):
            if continuation is not None and pk < continuation[0]:
                continue
            rows = self._partitions[pk]
            for rk in sorted(rows):
                if continuation is not None and (pk, rk) <= continuation:
                    continue
                entity = rows[rk]
                if predicate is not None and not predicate(entity):
                    continue
                out.append(entity)
                if top is not None and len(out) > top:
                    # One past the page: return the page + continuation.
                    page = out[:top]
                    if select is not None:
                        page = [e.project(select) for e in page]
                    return QueryResult(page, continuation=out[top - 1].key)
        if select is not None:
            out = [e.project(select) for e in out]
        return QueryResult(out, continuation=None)

    def query_partition(self, partition_key: str,
                        filter: FilterSpec = None, *,
                        select: Optional[Sequence[str]] = None) -> List[Entity]:
        """All entities of one partition, row-key ordered."""
        predicate = self._compile_filter(filter)
        rows = self._partitions.get(partition_key, {})
        out = [rows[rk] for rk in sorted(rows)]
        if predicate is not None:
            out = [e for e in out if predicate(e)]
        if select is not None:
            out = [e.project(select) for e in out]
        return out

    @staticmethod
    def _compile_filter(filter: FilterSpec) -> Optional[Predicate]:
        if filter is None:
            return None
        if isinstance(filter, str):
            return parse_filter(filter)
        if callable(filter):
            return filter
        raise InvalidOperationError(
            f"filter must be a string or callable, got {type(filter).__name__}"
        )

    # -- entity-group transactions ------------------------------------------
    def execute_batch(self, operations: Iterable[BatchOperation]) -> List[Optional[Entity]]:
        """Atomically apply operations touching a single partition.

        All-or-nothing: if any operation fails the table is left unchanged
        and a :class:`BatchError` carrying the failing index is raised.
        """
        ops = list(operations)
        if not ops:
            return []
        if len(ops) > MAX_BATCH_OPERATIONS:
            raise InvalidOperationError(
                f"batch of {len(ops)} exceeds {MAX_BATCH_OPERATIONS} operations"
            )
        pks = {op.partition_key for op in ops}
        if len(pks) != 1:
            raise InvalidOperationError(
                "entity-group transactions must target a single partition; "
                f"got partitions {sorted(pks)!r}"
            )
        keys = [(op.partition_key, op.row_key) for op in ops]
        if len(set(keys)) != len(keys):
            raise InvalidOperationError(
                "an entity may appear only once in a batch"
            )
        pk = next(iter(pks))
        # Snapshot the partition for rollback.
        snapshot = dict(self._partitions.get(pk, {}))
        snapshot_bytes = sum(e.size for e in snapshot.values())
        results: List[Optional[Entity]] = []
        try:
            for i, op in enumerate(ops):
                try:
                    results.append(self._apply_batch_op(op))
                except StorageError as exc:
                    raise BatchError(
                        f"batch operation {i} ({op.kind}) failed: {exc}",
                        index=i, cause=exc,
                    ) from exc
        except BatchError:
            # Roll back.
            current = self._partitions.get(pk, {})
            current_bytes = sum(e.size for e in current.values())
            if snapshot:
                self._partitions[pk] = snapshot
            else:
                self._partitions.pop(pk, None)
            self._service._account_delta(snapshot_bytes - current_bytes)
            raise
        return results

    def _apply_batch_op(self, op: BatchOperation) -> Optional[Entity]:
        if op.kind == "insert":
            return self.insert(op.partition_key, op.row_key, op.properties or {})
        if op.kind == "update":
            return self.update(op.partition_key, op.row_key, op.properties or {},
                               etag=op.etag if op.etag is not None else "*")
        if op.kind == "merge":
            return self.merge(op.partition_key, op.row_key, op.properties or {},
                              etag=op.etag if op.etag is not None else "*")
        if op.kind == "upsert_replace":
            return self.insert_or_replace(op.partition_key, op.row_key,
                                          op.properties or {})
        if op.kind == "upsert_merge":
            return self.insert_or_merge(op.partition_key, op.row_key,
                                        op.properties or {})
        if op.kind == "delete":
            self.delete(op.partition_key, op.row_key,
                        etag=op.etag if op.etag is not None else "*")
            return None
        raise InvalidOperationError(f"unknown batch operation kind {op.kind!r}")

    # -- introspection --------------------------------------------------------
    def partitions(self) -> List[str]:
        """Partition keys present, sorted (cluster placement uses these)."""
        return sorted(self._partitions)

    def entity_count(self, partition_key: Optional[str] = None) -> int:
        if partition_key is not None:
            return len(self._partitions.get(partition_key, {}))
        return sum(len(rows) for rows in self._partitions.values())

    def total_bytes(self) -> int:
        return sum(e.size for rows in self._partitions.values()
                   for e in rows.values())

    def __len__(self) -> int:
        return self.entity_count()


class TableServiceState:
    """Root state of the table service of one storage account."""

    def __init__(self, clock: Clock, limits: ServiceLimits = LIMITS_2012,
                 account=None) -> None:
        self._clock = clock
        self.limits = limits
        self._account = account
        self._etags = ETagFactory()
        self.tables: Dict[str, TableState] = {}

    def _account_delta(self, delta: int) -> None:
        if self._account is not None:
            self._account.adjust_usage(delta)

    def create_table(self, name: str, *, fail_on_exist: bool = False) -> TableState:
        """Create a table (idempotent unless ``fail_on_exist``)."""
        if name in self.tables:
            if fail_on_exist:
                raise ResourceExistsError(f"table {name!r} already exists")
            return self.tables[name]
        table = TableState(self, name)
        self.tables[name] = table
        return table

    def get_table(self, name: str) -> TableState:
        try:
            return self.tables[name]
        except KeyError:
            raise TableNotFoundError(f"table {name!r} not found") from None

    def delete_table(self, name: str) -> None:
        table = self.get_table(name)
        self._account_delta(-table.total_bytes())
        del self.tables[name]

    def list_tables(self, prefix: str = "") -> List[str]:
        return sorted(n for n in self.tables if n.startswith(prefix))

    def total_bytes(self) -> int:
        return sum(t.total_bytes() for t in self.tables.values())
