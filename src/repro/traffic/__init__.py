"""Open-loop traffic generation, windowed statistics, and SLO gates.

The paper's workloads are closed-loop (N workers, think time), which
self-throttle at saturation; this package adds the DiPerF-style
open-loop side: seeded arrival processes scheduled independently of
completions (:mod:`~repro.traffic.arrivals`), a mergeable streaming
windowed aggregator (:mod:`~repro.traffic.stats`), per-window SLO
verdicts (:mod:`~repro.traffic.slo`), the engine driving any backend
(:mod:`~repro.traffic.engine`), and bisection saturation search for the
latency knee (:mod:`~repro.traffic.knee`).  See ``docs/traffic.md``.
"""

from .arrivals import (
    PROCESSES,
    ArrivalProcess,
    ArrivalSpec,
    DiurnalProcess,
    MMPPProcess,
    PoissonProcess,
    RampProcess,
    TraceReplayProcess,
    build_process,
    parse_arrival_spec,
)
from .engine import (
    MIXES,
    LoadConfig,
    LoadResult,
    ScheduledOp,
    build_schedule,
    run_load,
    schedule_digest,
)
from .flock import FlockSchedule, build_flock_schedule
from .knee import KneeProbe, KneeResult, find_knee
from .slo import SLOReport, SLOSpec, WindowViolation
from .stats import WINDOW_CSV_HEADER, StatsAggregator, WindowRow

__all__ = [
    "PROCESSES",
    "ArrivalProcess",
    "ArrivalSpec",
    "DiurnalProcess",
    "MMPPProcess",
    "PoissonProcess",
    "RampProcess",
    "TraceReplayProcess",
    "build_process",
    "parse_arrival_spec",
    "MIXES",
    "LoadConfig",
    "LoadResult",
    "ScheduledOp",
    "build_schedule",
    "run_load",
    "schedule_digest",
    "FlockSchedule",
    "build_flock_schedule",
    "KneeProbe",
    "KneeResult",
    "find_knee",
    "SLOReport",
    "SLOSpec",
    "WindowViolation",
    "WINDOW_CSV_HEADER",
    "StatsAggregator",
    "WindowRow",
]
