"""Seeded open-loop arrival processes.

Closed-loop workloads (N workers, think time) self-throttle: when the
service slows down, the offered load drops with it, which hides the
latency knee.  An *open-loop* workload keeps issuing operations on its
own schedule regardless of completions — the DiPerF discipline.  This
module supplies the schedules: every process is a deterministic function
of its seed, so the same spec always produces the byte-identical stream
of arrival instants on every backend.

Processes::

    PoissonProcess      memoryless arrivals at a constant rate
    MMPPProcess         Markov-modulated on/off bursts (bursty traffic)
    DiurnalProcess      sinusoidal day-shaped rate (thinning)
    RampProcess         linear ramp from a start rate to the target rate
    TraceReplayProcess  replay recorded instants exactly

All inhomogeneous processes use Lewis-Shedler thinning against their
peak rate, so their draws stay exact (no discretisation of the rate
curve).  :class:`ArrivalSpec` is the picklable description used by
``RunConfig``/CLI surfaces; :meth:`ArrivalSpec.build` turns it into a
process.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from random import Random
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "ArrivalProcess",
    "PoissonProcess",
    "MMPPProcess",
    "DiurnalProcess",
    "RampProcess",
    "TraceReplayProcess",
    "ArrivalSpec",
    "PROCESSES",
    "build_process",
    "parse_arrival_spec",
]


class ArrivalProcess:
    """Base class: a seeded, replayable stream of arrival instants."""

    #: Registry name ("poisson", "mmpp", ...).
    name: str = "base"

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    # -- subclass surface --------------------------------------------------
    def _stream(self, rng: Random) -> Iterator[float]:
        """Yield strictly increasing arrival times, forever (or until the
        process is exhausted, for finite traces)."""
        raise NotImplementedError

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at time ``t`` (ops/s)."""
        raise NotImplementedError

    def expected_count(self, duration: float) -> float:
        """``∫₀^duration rate(t) dt`` — the mean number of arrivals."""
        raise NotImplementedError

    # -- shared surface ----------------------------------------------------
    def times(self, duration: float) -> List[float]:
        """All arrival instants in ``[0, duration)``.

        Every call re-seeds, so the stream is a pure function of the
        process parameters: same spec ⇒ byte-identical list.
        """
        if duration < 0:
            raise ValueError("duration must be >= 0")
        out: List[float] = []
        for t in self._stream(Random(self.seed)):
            if t >= duration:
                break
            out.append(t)
        return out

    def take(self, n: int) -> List[float]:
        """The first ``n`` arrival instants (session-arrival staggering)."""
        if n < 0:
            raise ValueError("n must be >= 0")
        out: List[float] = []
        for t in self._stream(Random(self.seed)):
            if len(out) >= n:
                break
            out.append(t)
        if len(out) < n:
            raise ValueError(
                f"{self.name} process exhausted after {len(out)} arrivals "
                f"(asked for {n}); extend the trace or raise the rate")
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} seed={self.seed}>"


class PoissonProcess(ArrivalProcess):
    """Homogeneous Poisson arrivals: i.i.d. exponential gaps."""

    name = "poisson"

    def __init__(self, rate: float, seed: int = 0) -> None:
        super().__init__(seed)
        if rate <= 0:
            raise ValueError("rate must be > 0")
        self.rate = float(rate)

    def _stream(self, rng: Random) -> Iterator[float]:
        t = 0.0
        while True:
            t += rng.expovariate(self.rate)
            yield t

    def rate_at(self, t: float) -> float:
        return self.rate

    def expected_count(self, duration: float) -> float:
        return self.rate * duration


class MMPPProcess(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (on/off bursts).

    Sojourn times in each state are exponential with means ``mean_on`` /
    ``mean_off``; while *on* the process emits at ``rate_on``, while
    *off* at ``rate_off`` (0 by default — pure bursts).  ``rate_on`` is
    derived so the long-run average equals the requested ``rate``:
    ``rate = (rate_on·mean_on + rate_off·mean_off) / (mean_on+mean_off)``.

    Exactness note: when an exponential gap would cross the end of the
    current state's sojourn, the clock jumps to the boundary and the gap
    is redrawn at the new state's rate — memorylessness makes the
    discard-and-redraw construction exact, not an approximation.
    """

    name = "mmpp"

    def __init__(self, rate: float, seed: int = 0, *,
                 mean_on: float = 1.0, mean_off: float = 3.0,
                 rate_off: float = 0.0) -> None:
        super().__init__(seed)
        if rate <= 0 or mean_on <= 0 or mean_off <= 0 or rate_off < 0:
            raise ValueError("rate/mean_on/mean_off must be > 0, "
                             "rate_off >= 0")
        self.rate = float(rate)
        self.mean_on = float(mean_on)
        self.mean_off = float(mean_off)
        self.rate_off = float(rate_off)
        cycle = self.mean_on + self.mean_off
        self.rate_on = (self.rate * cycle
                        - self.rate_off * self.mean_off) / self.mean_on
        if self.rate_on <= 0:
            raise ValueError(
                f"rate_off={rate_off} already exceeds the average rate "
                f"{rate} over the off fraction; lower it")

    def _stream(self, rng: Random) -> Iterator[float]:
        t = 0.0
        on = True  # start in a burst, like a freshly ramped service
        state_end = rng.expovariate(1.0 / self.mean_on)
        while True:
            rate = self.rate_on if on else self.rate_off
            if rate <= 0:
                t = state_end
            else:
                gap = rng.expovariate(rate)
                if t + gap < state_end:
                    t += gap
                    yield t
                    continue
                t = state_end
            on = not on
            mean = self.mean_on if on else self.mean_off
            state_end = t + rng.expovariate(1.0 / mean)

    def rate_at(self, t: float) -> float:
        # The *average* rate; the realised rate depends on the sampled
        # state path, which rate_at deliberately does not replay.
        return self.rate

    def expected_count(self, duration: float) -> float:
        return self.rate * duration


class _ThinningProcess(ArrivalProcess):
    """Inhomogeneous Poisson via Lewis-Shedler thinning (shared core)."""

    #: Peak rate the candidate stream runs at (set by subclasses).
    rate_max: float

    def _stream(self, rng: Random) -> Iterator[float]:
        t = 0.0
        while True:
            t += rng.expovariate(self.rate_max)
            if rng.random() * self.rate_max < self.rate_at(t):
                yield t


class DiurnalProcess(_ThinningProcess):
    """Sinusoidal day-shaped rate: ``rate·(1 + amp·sin(2πt/period))``.

    ``period`` defaults to a 240 s compressed day so the full cycle fits
    in a short simulated run; ``amp`` in [0, 1) keeps the rate positive.
    """

    name = "diurnal"

    def __init__(self, rate: float, seed: int = 0, *,
                 amp: float = 0.8, period: float = 240.0) -> None:
        super().__init__(seed)
        if rate <= 0 or period <= 0:
            raise ValueError("rate and period must be > 0")
        if not 0 <= amp < 1:
            raise ValueError("amp must be in [0, 1)")
        self.rate = float(rate)
        self.amp = float(amp)
        self.period = float(period)
        self.rate_max = self.rate * (1.0 + self.amp)

    def rate_at(self, t: float) -> float:
        return self.rate * (1.0 + self.amp * math.sin(
            2.0 * math.pi * t / self.period))

    def expected_count(self, duration: float) -> float:
        w = 2.0 * math.pi / self.period
        return (self.rate * duration
                + self.rate * self.amp / w * (1.0 - math.cos(w * duration)))


class RampProcess(_ThinningProcess):
    """Linear ramp from ``start`` to ``rate`` over ``ramp`` seconds, then
    steady at ``rate`` — the warm-up shape load sweeps use."""

    name = "ramp"

    def __init__(self, rate: float, seed: int = 0, *,
                 start: float = 0.0, ramp: float = 60.0) -> None:
        super().__init__(seed)
        if rate <= 0 or ramp <= 0 or start < 0:
            raise ValueError("rate/ramp must be > 0, start >= 0")
        self.rate = float(rate)
        self.start = float(start)
        self.ramp = float(ramp)
        self.rate_max = max(self.rate, self.start)

    def rate_at(self, t: float) -> float:
        if t >= self.ramp:
            return self.rate
        return self.start + (self.rate - self.start) * (t / self.ramp)

    def expected_count(self, duration: float) -> float:
        d = min(duration, self.ramp)
        area = (self.start + self.rate_at(d)) / 2.0 * d
        if duration > self.ramp:
            area += self.rate * (duration - self.ramp)
        return area


class TraceReplayProcess(ArrivalProcess):
    """Replay a recorded stream of arrival instants exactly."""

    name = "trace"

    def __init__(self, instants, seed: int = 0) -> None:
        super().__init__(seed)
        times = [float(t) for t in instants]
        if any(t < 0 for t in times):
            raise ValueError("trace instants must be >= 0")
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("trace instants must be non-decreasing")
        self.instants: Tuple[float, ...] = tuple(times)

    def _stream(self, rng: Random) -> Iterator[float]:
        return iter(self.instants)

    def rate_at(self, t: float) -> float:
        if not self.instants:
            return 0.0
        horizon = max(self.instants[-1], 1e-9)
        return len(self.instants) / horizon

    def expected_count(self, duration: float) -> float:
        return float(sum(1 for t in self.instants if t < duration))


#: name -> constructor ``(rate, seed, **params)``.
PROCESSES = {
    "poisson": PoissonProcess,
    "mmpp": MMPPProcess,
    "diurnal": DiurnalProcess,
    "ramp": RampProcess,
}


@dataclass(frozen=True)
class ArrivalSpec:
    """Picklable description of an arrival process.

    ``params`` holds process keyword arguments as a sorted tuple of
    ``(name, value)`` pairs so the spec stays hashable and stable under
    JSON round trips; ``trace`` carries the instants for the replay
    process (where ``rate`` is ignored).
    """

    process: str = "poisson"
    rate: float = 10.0
    seed: int = 0
    params: Tuple[Tuple[str, float], ...] = ()
    trace: Tuple[float, ...] = field(default=(), repr=False)

    def build(self) -> ArrivalProcess:
        return build_process(self.process, self.rate, self.seed,
                             params=dict(self.params), trace=self.trace)

    def with_rate(self, rate: float) -> "ArrivalSpec":
        return replace(self, rate=float(rate))

    def describe(self) -> Dict[str, object]:
        out: Dict[str, object] = {"process": self.process, "seed": self.seed}
        if self.process == "trace":
            out["instants"] = len(self.trace)
        else:
            out["rate"] = self.rate
        out.update(dict(self.params))
        return out


def build_process(name: str, rate: float, seed: int = 0, *,
                  params: Optional[Dict[str, float]] = None,
                  trace: Tuple[float, ...] = ()) -> ArrivalProcess:
    """Instantiate a process by registry name (plus ``trace``)."""
    if name == "trace":
        return TraceReplayProcess(trace, seed=seed)
    try:
        cls = PROCESSES[name]
    except KeyError:
        raise ValueError(
            f"unknown arrival process {name!r}; choose from "
            f"{', '.join(sorted(PROCESSES))}, trace") from None
    try:
        return cls(rate, seed, **(params or {}))
    except TypeError:
        valid = sorted(k for k in cls.__init__.__kwdefaults__ or ())
        raise ValueError(
            f"bad parameters for {name!r}; valid: {', '.join(valid)}"
        ) from None


def parse_arrival_spec(text: str, *, seed: int = 0) -> ArrivalSpec:
    """Parse a CLI spec: ``process:rate[:k=v,k=v...]``.

    Examples: ``poisson:25``, ``mmpp:40:on=2,off=6``,
    ``diurnal:30:amp=0.5,period=120``, ``ramp:50:start=5,ramp=30``.
    Short parameter aliases ``on``/``off`` map to ``mean_on``/``mean_off``.
    """
    parts = text.split(":")
    name = parts[0].strip().lower()
    if name == "trace":
        raise ValueError(
            "trace replay takes a file of instants; use --trace-file "
            "with --process trace on 'repro load'")
    if name not in PROCESSES:
        raise ValueError(
            f"unknown arrival process {name!r}; choose from "
            f"{', '.join(sorted(PROCESSES))}")
    if len(parts) < 2 or not parts[1].strip():
        raise ValueError(f"arrival spec {text!r} needs a rate: "
                         f"'{name}:RATE[:k=v,...]'")
    try:
        rate = float(parts[1])
    except ValueError:
        raise ValueError(f"bad rate {parts[1]!r} in arrival spec "
                         f"{text!r}") from None
    alias = {"on": "mean_on", "off": "mean_off"}
    params: Dict[str, float] = {}
    if len(parts) > 2 and parts[2].strip():
        for pair in parts[2].split(","):
            if "=" not in pair:
                raise ValueError(
                    f"bad parameter {pair!r} in arrival spec {text!r}; "
                    f"expected k=v")
            key, value = pair.split("=", 1)
            key = alias.get(key.strip(), key.strip())
            try:
                params[key] = float(value)
            except ValueError:
                raise ValueError(
                    f"bad value {value!r} for {key} in arrival spec "
                    f"{text!r}") from None
    spec = ArrivalSpec(process=name, rate=rate, seed=seed,
                       params=tuple(sorted(params.items())))
    spec.build()  # validate parameters eagerly (raises ValueError)
    return spec
