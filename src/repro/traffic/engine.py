"""The open-loop traffic engine.

:func:`run_load` drives a seeded operation schedule against any backend:

* **sim / geo** — arrivals are injected into the DES as independent
  processes: each scheduled instant spawns one operation process
  regardless of how many earlier operations are still in flight, which
  is what makes the load open-loop (a saturated fabric accumulates
  in-flight work instead of throttling the offered rate).
* **emulator / service** — a dispatcher thread releases operations at
  their (time-scaled) wall-clock instants into a bounded client pool.

The **schedule** — arrival instants from the
:class:`~repro.traffic.arrivals.ArrivalSpec` plus seeded operation-mix
and key draws — is precomputed before anything runs, so it is a pure
function of the spec: every backend issues the *identical* operation
sequence for a given seed (pinned by
``tests/traffic/test_backend_equivalence.py``).  Completions stream into
a :class:`~repro.traffic.stats.StatsAggregator` and the optional
:class:`~repro.traffic.slo.SLOSpec` turns the windows into a verdict.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import threading
import time
from dataclasses import dataclass, field
from random import Random
from typing import (Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

from ..simkit.environment import SCHEDULERS
from ..storage import KB
from ..storage.content import SyntheticContent
from ..storage.errors import StorageError
from .arrivals import ArrivalSpec
from .slo import SLOReport, SLOSpec
from .stats import WINDOW_CSV_HEADER, StatsAggregator, WindowRow

__all__ = [
    "LoadConfig",
    "ScheduledOp",
    "LoadResult",
    "MIXES",
    "build_schedule",
    "schedule_digest",
    "run_load",
]

#: Fixed resource names every mix uses.
LOAD_QUEUE = "loadq"
LOAD_CONTAINER = "loadc"
LOAD_TABLE = "loadt"
LOAD_PARTITION = "load"

#: mix name -> ((weight, service, op), ...).  Weights need not sum to 1.
MIXES: Dict[str, Tuple[Tuple[float, str, str], ...]] = {
    "queue": ((0.5, "queue", "put"), (0.25, "queue", "peek"),
              (0.25, "queue", "get")),
    "blob": ((0.65, "blob", "download"), (0.35, "blob", "upload")),
    "table": ((0.3, "table", "insert"), (0.3, "table", "get"),
              (0.2, "table", "upsert"), (0.2, "table", "query")),
    "mixed": ((0.25, "queue", "put"), (0.15, "queue", "get"),
              (0.2, "blob", "download"), (0.1, "blob", "upload"),
              (0.15, "table", "get"), (0.15, "table", "upsert")),
}


@dataclass(frozen=True)
class LoadConfig:
    """One open-loop load run."""

    arrivals: ArrivalSpec = field(default_factory=ArrivalSpec)
    #: Simulated (or virtual, on wall-clock backends) seconds of arrivals.
    duration: float = 60.0
    window_s: float = 5.0
    mix: str = "queue"
    payload_bytes: int = 4 * KB
    #: Fabric seed (account/cost model), independent of the arrival seed.
    seed: int = 2012
    backend: str = "sim"
    slo: Optional[SLOSpec] = None
    #: Read-target objects created before arrivals start.
    preload: int = 16
    #: Utilization divisor in the window rows (read-time hint only).
    servers: int = 1
    #: Thread cap for the wall-clock backends (emulator/service).
    max_clients: int = 32
    #: Wall seconds per virtual second on wall-clock backends.
    time_scale: float = 0.01
    #: Service backend only: cluster shape and the mid-run DN kill.
    dn: int = 2
    replicas: int = 1
    kill_dn: Optional[int] = None
    #: Virtual seconds into the run at which ``kill_dn`` crash-stops.
    kill_at: Optional[float] = None
    #: Simulated clients: multiplies the per-client arrival rate.
    clients: int = 1
    #: DES backends only: drive ops from a columnar schedule in chunks of
    #: this many arrivals (0 = classic per-op schedule objects).
    flock_size: int = 0
    #: DES kernel event queue ("heap" or "calendar").
    scheduler: str = "heap"

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be > 0")
        if self.mix not in MIXES:
            raise ValueError(f"unknown mix {self.mix!r}; choose from "
                             f"{', '.join(sorted(MIXES))}")
        if self.payload_bytes < 0 or self.preload < 1:
            raise ValueError("payload_bytes must be >= 0, preload >= 1")
        if self.max_clients < 1 or self.time_scale <= 0:
            raise ValueError("max_clients must be >= 1, time_scale > 0")
        if self.dn < 1:
            raise ValueError("dn must be >= 1")
        if not 1 <= self.replicas <= self.dn:
            raise ValueError(
                f"replicas must be in [1, dn={self.dn}], "
                f"got {self.replicas}")
        if (self.kill_dn is None) != (self.kill_at is None):
            raise ValueError("kill_dn and kill_at go together")
        if self.kill_dn is not None:
            if not 0 <= self.kill_dn < self.dn:
                raise ValueError(
                    f"kill_dn must name one of the {self.dn} data nodes")
            if not 0 < self.kill_at < self.duration:
                raise ValueError("kill_at must fall inside the run")
        if ((self.replicas > 1 or self.kill_dn is not None)
                and self.backend != "service"):
            raise ValueError("replicas/kill_dn apply to the service "
                             "backend only")
        if self.clients < 1:
            raise ValueError("clients must be >= 1")
        if self.clients > 1 and self.arrivals.process == "trace":
            raise ValueError("clients scales the arrival rate, which "
                             "trace replay ignores; pre-scale the trace "
                             "instants instead")
        if self.flock_size < 0:
            raise ValueError("flock_size must be >= 0 (0 disables "
                             "flock mode)")
        if self.flock_size and self.backend not in ("sim", "geo"):
            raise ValueError("flock mode applies to the DES backends "
                             "(sim, geo) only")
        if self.scheduler not in SCHEDULERS:
            raise ValueError(f"unknown scheduler {self.scheduler!r}; "
                             f"choose from {', '.join(SCHEDULERS)}")

    def describe(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "arrivals": self.arrivals.describe(),
            "duration_s": self.duration,
            "window_s": self.window_s,
            "mix": self.mix,
            "payload_bytes": self.payload_bytes,
            "seed": self.seed,
            "backend": self.backend,
            "preload": self.preload,
            "servers": self.servers,
        }
        # Failure-domain knobs appear only when engaged, so default-run
        # verdict JSON is unchanged.
        if self.replicas > 1 or self.kill_dn is not None:
            out["dn"] = self.dn
            out["replicas"] = self.replicas
        if self.kill_dn is not None:
            out["kill_dn"] = self.kill_dn
            out["kill_at_s"] = self.kill_at
        # Scale/kernel knobs likewise appear only when engaged.
        if self.clients != 1:
            out["clients"] = self.clients
        if self.flock_size:
            out["flock_size"] = self.flock_size
        if self.scheduler != "heap":
            out["scheduler"] = self.scheduler
        return out

    def effective_arrivals(self) -> ArrivalSpec:
        """The spec actually driven: per-client rate times ``clients``."""
        if self.clients == 1:
            return self.arrivals
        return self.arrivals.with_rate(self.arrivals.rate * self.clients)


@dataclass(frozen=True)
class ScheduledOp:
    """One precomputed arrival: when, what, and against which key."""

    index: int
    at: float
    service: str
    op: str
    key: str
    nbytes: int


def build_schedule(config: LoadConfig) -> List[ScheduledOp]:
    """The full, deterministic operation schedule for one run.

    Arrival instants come from the arrival process; the operation mix
    and key choices come from an independent stream seeded off the same
    arrival seed — so changing the mix does not perturb the instants and
    vice versa.
    """
    instants = config.effective_arrivals().build().times(config.duration)
    rng = Random(f"{config.arrivals.seed}:{config.mix}:ops")
    mix = MIXES[config.mix]
    total = sum(w for w, _, _ in mix)
    out: List[ScheduledOp] = []
    for index, at in enumerate(instants):
        draw = rng.random() * total
        for weight, service, op in mix:
            draw -= weight
            if draw < 0:
                break
        preloaded = f"obj-{rng.randrange(config.preload)}"
        if (service, op) in (("blob", "upload"), ("table", "insert")):
            key = f"new-{index}"
        elif (service, op) == ("table", "query"):
            key = LOAD_PARTITION
        elif service == "queue":
            key = LOAD_QUEUE
        else:
            key = preloaded
        nbytes = config.payload_bytes if op in ("put", "upload", "insert",
                                                "upsert") else 0
        out.append(ScheduledOp(index, at, service, op, key, nbytes))
    return out


def schedule_digest(schedule: Iterable[ScheduledOp],
                    outcomes: Optional[Sequence] = None) -> str:
    """SHA-256 over the issued operation sequence (and outcomes).

    ``schedule`` may be any iterable of ops (flock mode streams them
    from its columnar arrays); ``outcomes`` any indexable of
    None/bool-convertible entries.
    """
    h = hashlib.sha256()
    for s in schedule:
        ok = "-" if outcomes is None else str(int(bool(outcomes[s.index])))
        h.update(f"{s.index},{s.at:.9f},{s.service},{s.op},{s.key},"
                 f"{s.nbytes},{ok}\n".encode())
    return h.hexdigest()


# -- operation scripts -------------------------------------------------------
# One op = a tiny instruction script yielding (method, args, kwargs) steps;
# the DES interpreter forwards each step with ``yield from`` while the
# wall-clock interpreter drives it blocking.  Both backends thereby share
# one definition of what every scheduled op *does*.

def _payload(config: LoadConfig, s: ScheduledOp) -> SyntheticContent:
    return SyntheticContent(s.nbytes, seed=s.index)


def _entity_props(config: LoadConfig, s: ScheduledOp) -> Dict[str, str]:
    return {"v": "x" * max(1, config.payload_bytes)}


def _op_script(clients: Dict[str, object], config: LoadConfig,
               s: ScheduledOp):
    qc, bc, tc = clients["queue"], clients["blob"], clients["table"]
    kind = (s.service, s.op)
    if kind == ("queue", "put"):
        yield (qc.put_message, (s.key, _payload(config, s)), {})
    elif kind == ("queue", "peek"):
        yield (qc.peek_message, (s.key,), {})
    elif kind == ("queue", "get"):
        msg = yield (qc.get_message, (s.key,),
                     {"visibility_timeout": 3600.0})
        if msg is not None:
            yield (qc.delete_message,
                   (s.key, msg.message_id, msg.pop_receipt), {})
    elif kind == ("blob", "download"):
        yield (bc.download_block_blob, (LOAD_CONTAINER, s.key), {})
    elif kind == ("blob", "upload"):
        yield (bc.upload_blob,
               (LOAD_CONTAINER, s.key, _payload(config, s)), {})
    elif kind == ("table", "insert"):
        yield (tc.insert,
               (LOAD_TABLE, LOAD_PARTITION, s.key,
                _entity_props(config, s)), {})
    elif kind == ("table", "get"):
        yield (tc.get, (LOAD_TABLE, LOAD_PARTITION, s.key), {})
    elif kind == ("table", "upsert"):
        yield (tc.insert_or_replace,
               (LOAD_TABLE, LOAD_PARTITION, s.key,
                _entity_props(config, s)), {})
    elif kind == ("table", "query"):
        yield (tc.query_partition, (LOAD_TABLE, s.key), {})
    else:  # pragma: no cover - schedule builder emits only known kinds
        raise ValueError(f"unknown scheduled op {kind}")


def _setup_script(clients: Dict[str, object], config: LoadConfig):
    """Create the fixed resources and preload read targets."""
    qc, bc, tc = clients["queue"], clients["blob"], clients["table"]
    mix_services = {service for _, service, _ in MIXES[config.mix]}
    if "queue" in mix_services:
        yield (qc.create_queue, (LOAD_QUEUE,), {})
        for i in range(min(config.preload, 8)):
            yield (qc.put_message,
                   (LOAD_QUEUE, SyntheticContent(config.payload_bytes,
                                                 seed=-1 - i)), {})
    if "blob" in mix_services:
        yield (bc.create_container, (LOAD_CONTAINER,), {})
        for i in range(config.preload):
            yield (bc.upload_blob,
                   (LOAD_CONTAINER, f"obj-{i}",
                    SyntheticContent(max(1, config.payload_bytes),
                                     seed=-1 - i)), {})
    if "table" in mix_services:
        yield (tc.create_table, (LOAD_TABLE,), {})
        for i in range(config.preload):
            yield (tc.insert,
                   (LOAD_TABLE, LOAD_PARTITION, f"obj-{i}",
                    {"v": "x" * max(1, config.payload_bytes)}), {})


def _run_script_des(script):
    """Interpret a script inside the DES (simkit generator)."""
    try:
        step = next(script)
        while True:
            fn, args, kwargs = step
            result = yield from fn(*args, **kwargs)
            step = script.send(result)
    except StopIteration:
        return None


def _drive(value):
    """Resolve a client-call result on the wall-clock backends.

    Emulator clients return values directly; the service wire shims are
    never-yielding generators (so sim-style bodies can ``yield from``
    them) — exhaust those to their return value.
    """
    if not hasattr(value, "send"):
        return value
    try:
        while True:
            next(value)
    except StopIteration as stop:
        return stop.value


def _run_script_blocking(script) -> None:
    try:
        step = next(script)
        while True:
            fn, args, kwargs = step
            step = script.send(_drive(fn(*args, **kwargs)))
    except StopIteration:
        return


# -- results -----------------------------------------------------------------

@dataclass
class LoadResult:
    """Everything one open-loop run produced."""

    config: LoadConfig
    rows: List[WindowRow]
    aggregator: StatsAggregator
    #: Digest over the issued op sequence + outcomes (see
    #: :func:`schedule_digest`); backend-independent for seeded runs.
    digest: str
    #: Virtual seconds from first arrival to last completion.
    elapsed_s: float
    slo_report: Optional[SLOReport]
    #: Measured failure-domain disruption (kill runs only): detection and
    #: heal timings plus error accounting around the kill.
    disruption: Optional[Dict[str, object]] = None
    #: Measured execution cost (peak RSS, wall clock, kernel events/sec)
    #: so scale claims are recorded, not anecdotal.  Host-dependent — the
    #: one deliberately non-deterministic part of the verdict.
    resources: Optional[Dict[str, object]] = None

    @property
    def passed(self) -> bool:
        return self.slo_report.clean if self.slo_report else True

    def verdict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "kind": "open-loop-load",
            "config": self.config.describe(),
            "totals": self.aggregator.totals(),
            "windows": [row.to_dict() for row in self.rows],
            "elapsed_s": round(self.elapsed_s, 6),
            "op_digest": self.digest,
            "passed": self.passed,
        }
        if self.slo_report is not None:
            out["slo_report"] = self.slo_report.to_dict()
        if self.disruption is not None:
            out["disruption"] = dict(self.disruption)
        if self.resources is not None:
            out["resources"] = dict(self.resources)
        return out

    def to_json(self) -> str:
        return json.dumps(self.verdict(), indent=2, sort_keys=True)

    def windows_csv(self) -> str:
        lines = [WINDOW_CSV_HEADER]
        for row in self.rows:
            d = row.to_dict()
            lines.append(",".join(str(d[col]) for col in
                                  WINDOW_CSV_HEADER.split(",")))
        return "\n".join(lines) + "\n"

    def write_artifacts(self, out_dir: str) -> List[str]:
        """Write ``windows.csv`` + ``verdict.json``; return the paths."""
        os.makedirs(out_dir, exist_ok=True)
        paths = []
        for name, text in (("windows.csv", self.windows_csv()),
                           ("verdict.json", self.to_json() + "\n")):
            path = os.path.join(out_dir, name)
            with open(path, "w") as f:
                f.write(text)
            paths.append(path)
        return paths


# -- execution ---------------------------------------------------------------

def run_load(config: LoadConfig) -> LoadResult:
    """Run one open-loop load campaign on the configured backend."""
    from ..backend import (EmulatorBackend, ServiceBackend, SimBackend,
                           get_backend)

    agg = StatsAggregator(config.window_s)
    backend = get_backend(config.backend)
    disruption = None
    events: Optional[int] = None
    wall_start = time.perf_counter()
    if isinstance(backend, SimBackend):  # includes GeoBackend
        if config.flock_size:
            from .flock import build_flock_schedule, run_flock_des
            flock = build_flock_schedule(config)
            outcomes, elapsed, events = run_flock_des(
                backend, config, flock, agg)
            digest = schedule_digest(flock.iter_ops(), outcomes)
        else:
            schedule = build_schedule(config)
            outcomes, elapsed, events = _run_des(
                backend, config, schedule, agg)
            digest = schedule_digest(schedule, outcomes)
    elif isinstance(backend, EmulatorBackend):
        schedule = build_schedule(config)
        outcomes, elapsed = _run_wallclock(
            config, schedule, agg, _emulator_client_factory(config))
        digest = schedule_digest(schedule, outcomes)
    elif isinstance(backend, ServiceBackend):
        schedule = build_schedule(config)
        outcomes, elapsed, disruption = _run_service(config, schedule, agg)
        digest = schedule_digest(schedule, outcomes)
    else:  # pragma: no cover - registry covers all names
        raise ValueError(f"backend {config.backend!r} cannot run "
                         f"open-loop load")
    wall = time.perf_counter() - wall_start
    horizon = max(config.duration, elapsed)
    rows = agg.rows(duration=horizon, servers=config.servers)
    report = config.slo.check(rows) if config.slo is not None else None
    return LoadResult(config=config, rows=rows, aggregator=agg,
                      digest=digest,
                      elapsed_s=elapsed, slo_report=report,
                      disruption=disruption,
                      resources=_resource_usage(wall, events))


def _resource_usage(wall_s: float,
                    events: Optional[int]) -> Dict[str, object]:
    """Measured execution-cost facts for the verdict's resources block."""
    try:
        import resource as res
        peak = res.getrusage(res.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KB on Linux, bytes on macOS.
        divisor = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0
        peak_rss_mb: Optional[float] = round(peak / divisor, 3)
    except ImportError:  # pragma: no cover - non-POSIX
        peak_rss_mb = None
    out: Dict[str, object] = {
        "wall_clock_s": round(wall_s, 6),
        "peak_rss_mb": peak_rss_mb,
    }
    if events is not None:
        out["kernel_events"] = events
        out["kernel_events_per_sec"] = (
            round(events / wall_s, 1) if wall_s > 0 else None)
    return out


def _run_des(backend, config: LoadConfig, schedule: List[ScheduledOp],
             agg: StatsAggregator):
    """Seeded DES execution (sim and geo backends)."""
    from ..core.runner import RunConfig
    from ..simkit import Environment

    env = Environment(scheduler=config.scheduler)
    account = backend._make_account(
        env, RunConfig(seed=config.seed, label="load"))
    clients = {"queue": account.queue_client(),
               "blob": account.blob_client(),
               "table": account.table_client()}

    setup = env.process(_run_script_des(_setup_script(clients, config)),
                        name="load-setup")
    env.run(until=setup)
    origin = env.now

    outcomes: List[Optional[bool]] = [None] * len(schedule)
    pending = {"n": len(schedule)}
    done = env.event()
    last_end = {"t": 0.0}

    def op_proc(s: ScheduledOp):
        t0 = env.now
        try:
            yield from _run_script_des(_op_script(clients, config, s))
            ok = True
        except StorageError:
            ok = False
        outcomes[s.index] = ok
        end = env.now
        agg.record(t0 - origin, end - origin, ok=ok, nbytes=s.nbytes,
                   operation=f"{s.service}.{s.op}")
        last_end["t"] = max(last_end["t"], end - origin)
        pending["n"] -= 1
        if pending["n"] == 0:
            done.succeed()

    def injector():
        for s in schedule:
            wait = origin + s.at - env.now
            if wait > 0:
                yield env.timeout(wait)
            env.process(op_proc(s), name=f"load-op-{s.index}")

    if schedule:
        env.process(injector(), name="load-injector")
        env.run(until=done)
    return outcomes, last_end["t"], env.events_processed


def _emulator_client_factory(config: LoadConfig) -> Callable[[], Dict]:
    from ..emulator import EmulatorAccount

    account = EmulatorAccount()

    def make() -> Dict[str, object]:
        return {"queue": account.queue_client(),
                "blob": account.blob_client(),
                "table": account.table_client()}
    return make


def _run_service(config: LoadConfig, schedule: List[ScheduledOp],
                 agg: StatsAggregator):
    """Boot an in-process SN/DN cluster and drive it over signed HTTP.

    With ``kill_dn``/``kill_at`` set, one data node crash-stops mid-run
    (the ``repro load`` failover scenario): replicated shards plus
    health-checked membership must absorb the kill, and the returned
    disruption report carries the measured SLO dip (errors around the
    kill) and the detection/heal timings.
    """
    from ..service import DEV_KEY, TenantConfig, TenantDirectory
    from ..service.client import (ServiceConnection, WireBlobClient,
                                  WireQueueClient, WireTableClient)
    from ..service.cluster import ClusterRunner, ServiceCluster
    from ..service.membership import FailureDomainConfig

    failure_domain = None
    if config.replicas > 1 or config.kill_dn is not None:
        failure_domain = FailureDomainConfig(
            replicas=config.replicas, health_checks=True,
            heartbeat_interval=0.1, suspect_after=1, dead_after=3,
            heartbeat_timeout=0.5, retry_after=0.25, seed=config.seed)
    tenants = TenantDirectory([TenantConfig.development()])
    cluster = ServiceCluster(nodes=1, dn=config.dn, tenants=tenants,
                             failure_domain=failure_domain)
    runner = ClusterRunner(cluster)
    runner.start()
    kill_wall: Dict[str, float] = {}
    timer: Optional[threading.Timer] = None
    try:
        account = tenants.accounts()[0]

        def make() -> Dict[str, object]:
            conn = ServiceConnection(cluster.endpoints(0), account, DEV_KEY)
            return {"queue": WireQueueClient(conn),
                    "blob": WireBlobClient(conn),
                    "table": WireTableClient(conn)}

        def on_origin() -> None:
            nonlocal timer
            if config.kill_dn is None:
                return

            def fire() -> None:
                kill_wall["t"] = time.monotonic()
                runner.kill_data_node(config.kill_dn)

            timer = threading.Timer(config.kill_at * config.time_scale,
                                    fire)
            timer.start()

        outcomes, elapsed = _run_wallclock(config, schedule, agg, make,
                                           on_origin=on_origin)
        if timer is not None:
            timer.join()
        disruption = None
        if config.kill_dn is not None:
            detected = runner.wait_deaths_detected(1, timeout=30.0)
            settled = runner.wait_settled(timeout=30.0)
            membership = cluster.membership
            recovery = membership.recovery_seconds()
            heal_at = membership.last_heal_at
            unavailable = None
            if heal_at is not None and "t" in kill_wall:
                unavailable = max(0.0, heal_at - kill_wall["t"])
            disruption = {
                "kill_dn": config.kill_dn,
                "kill_at_s": config.kill_at,
                "detected": detected,
                "settled": settled,
                "deaths": membership.counters["deaths"],
                "shards_migrated": membership.counters["shards_migrated"],
                "errors": sum(1 for ok in outcomes if ok is False),
                "recovery_s": (round(recovery, 3)
                               if recovery is not None else None),
                "unavailable_s": (round(unavailable, 3)
                                  if unavailable is not None else None),
            }
        return outcomes, elapsed, disruption
    finally:
        runner.stop()


def _run_wallclock(config: LoadConfig, schedule: List[ScheduledOp],
                   agg: StatsAggregator, make_clients: Callable[[], Dict],
                   on_origin: Optional[Callable[[], None]] = None):
    """Dispatcher + bounded client pool on wall-clock backends.

    Virtual time is wall time since the dispatch origin divided by
    ``time_scale``; arrivals are released at their scheduled virtual
    instants, so the offered rate stays open-loop even when every pool
    thread is busy (queueing shows up as latency, as it should).
    ``on_origin`` (if given) runs right as the dispatch origin is pinned
    — the hook the service backend uses to arm its DN-kill timer.
    """
    from concurrent.futures import ThreadPoolExecutor

    _run_script_blocking(_setup_script(make_clients(), config))

    outcomes: List[Optional[bool]] = [None] * len(schedule)
    local = threading.local()
    lock = threading.Lock()
    last_end = {"t": 0.0}
    origin = time.monotonic()
    if on_origin is not None:
        on_origin()

    def virtual_now() -> float:
        return (time.monotonic() - origin) / config.time_scale

    def run_op(s: ScheduledOp) -> None:
        clients = getattr(local, "clients", None)
        if clients is None:
            clients = local.clients = make_clients()
        try:
            _run_script_blocking(_op_script(clients, config, s))
            ok = True
        except StorageError:
            ok = False
        outcomes[s.index] = ok
        end = virtual_now()
        with lock:
            agg.record(s.at, max(s.at, end), ok=ok, nbytes=s.nbytes,
                       operation=f"{s.service}.{s.op}")
            last_end["t"] = max(last_end["t"], end)

    with ThreadPoolExecutor(max_workers=config.max_clients) as pool:
        for s in schedule:
            wait = s.at * config.time_scale - (time.monotonic() - origin)
            if wait > 0:
                time.sleep(wait)
            pool.submit(run_op, s)
    return outcomes, last_end["t"]
