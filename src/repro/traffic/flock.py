"""Vectorized client flocks: the DES scale path for huge client counts.

The classic DES load path materialises one :class:`ScheduledOp` object
(plus a key string and a named process) per arrival — fine at thousands
of ops, prohibitive at the million-client scale ROADMAP item 3 targets.
Flock mode keeps the *execution* semantics identical (each arrival is
still an independent open-loop operation process charging the simulated
cluster) but changes the *representation*:

* the schedule is columnar — numpy arrays of arrival instants, mix-kind
  ids and key draws (13 bytes/op instead of an object graph), built by
  replaying the exact RNG draw sequence of
  :func:`~repro.traffic.engine.build_schedule`;
* the injector consumes those arrays in chunks of ``flock_size``,
  converting one chunk at a time to plain scalars;
* completions are buffered and flushed to
  :meth:`~repro.traffic.stats.StatsAggregator.record_chunk` per chunk.

Because the per-op event sequence is unchanged, a flock run produces the
byte-identical op digest (and equal aggregator state) of a classic run
with the same seed — pinned by ``tests/traffic/test_flock.py``.
"""

from __future__ import annotations

from random import Random
from typing import Iterator, List, Tuple

import numpy as np

from ..storage.errors import StorageError
from .engine import (LOAD_PARTITION, LOAD_QUEUE, MIXES, LoadConfig,
                     ScheduledOp, _op_script, _run_script_des,
                     _setup_script)

__all__ = ["FlockSchedule", "build_flock_schedule", "run_flock_des"]

#: Ops that carry the configured payload (mirrors build_schedule).
_PAYLOAD_OPS = ("put", "upload", "insert", "upsert")


class FlockSchedule:
    """Columnar operation schedule for one flock-mode run.

    ``at`` (float64), ``kind`` (int8 index into ``kinds``) and
    ``key_id`` (int32 preload draw) fully determine every op; key
    strings and :class:`ScheduledOp` views are derived on demand.
    """

    __slots__ = ("at", "kind", "key_id", "kinds", "payload_bytes",
                 "labels", "kind_nbytes")

    def __init__(self, at: "np.ndarray", kind: "np.ndarray",
                 key_id: "np.ndarray", kinds: Tuple[Tuple[str, str], ...],
                 payload_bytes: int) -> None:
        self.at = at
        self.kind = kind
        self.key_id = key_id
        self.kinds = kinds
        self.payload_bytes = payload_bytes
        self.labels = tuple(f"{s}.{o}" for s, o in kinds)
        self.kind_nbytes = tuple(
            payload_bytes if op in _PAYLOAD_OPS else 0
            for _, op in kinds)

    def __len__(self) -> int:
        return len(self.at)

    def op(self, index: int) -> ScheduledOp:
        """The :class:`ScheduledOp` view of arrival ``index``.

        Field-identical to ``build_schedule(config)[index]`` (pinned by
        the flock parity test).
        """
        k = self.kind[index]
        service, opname = self.kinds[k]
        if (service, opname) in (("blob", "upload"), ("table", "insert")):
            key = f"new-{index}"
        elif (service, opname) == ("table", "query"):
            key = LOAD_PARTITION
        elif service == "queue":
            key = LOAD_QUEUE
        else:
            key = f"obj-{self.key_id[index]}"
        return ScheduledOp(index, float(self.at[index]), service, opname,
                           key, self.kind_nbytes[k])

    def iter_ops(self) -> Iterator[ScheduledOp]:
        """Stream every op as a transient view (O(1) extra memory)."""
        return (self.op(i) for i in range(len(self.at)))


def build_flock_schedule(config: LoadConfig) -> FlockSchedule:
    """The columnar twin of :func:`~repro.traffic.engine.build_schedule`.

    Replays the identical RNG draw sequence (one mix draw plus one
    preload draw per arrival, whether or not the key is used) so the op
    stream matches element for element.
    """
    instants = config.effective_arrivals().build().times(config.duration)
    n = len(instants)
    at = np.array(instants, dtype=np.float64)
    del instants  # free the Python float list before the op loop
    kind = np.empty(n, dtype=np.int8)
    key_id = np.empty(n, dtype=np.int32)
    rng = Random(f"{config.arrivals.seed}:{config.mix}:ops")
    random = rng.random
    randrange = rng.randrange
    mix = MIXES[config.mix]
    total = sum(w for w, _, _ in mix)
    weights = tuple(w for w, _, _ in mix)
    preload = config.preload
    for i in range(n):
        draw = random() * total
        k = len(weights) - 1  # float-edge fallthrough, like build_schedule
        for j, w in enumerate(weights):
            draw -= w
            if draw < 0:
                k = j
                break
        kind[i] = k
        key_id[i] = randrange(preload)
    kinds = tuple((service, op) for _, service, op in mix)
    return FlockSchedule(at, kind, key_id, kinds, config.payload_bytes)


def run_flock_des(backend, config: LoadConfig, flock: FlockSchedule,
                  agg) -> Tuple["np.ndarray", float, int]:
    """Flock-mode DES execution (sim and geo backends).

    Same open-loop semantics as ``_run_des`` — every arrival spawns an
    independent operation process at its scheduled instant — but driven
    off the columnar schedule in ``flock_size`` chunks, with unnamed op
    processes and batched stats flushes.  Returns
    ``(outcomes, last_end, events_processed)``.
    """
    from ..core.runner import RunConfig
    from ..simkit import Environment

    env = Environment(scheduler=config.scheduler)
    account = backend._make_account(
        env, RunConfig(seed=config.seed, label="load"))
    clients = {"queue": account.queue_client(),
               "blob": account.blob_client(),
               "table": account.table_client()}

    setup = env.process(_run_script_des(_setup_script(clients, config)),
                        name="load-setup")
    env.run(until=setup)
    origin = env.now

    n = len(flock)
    #: -1 = never completed (impossible after run), 0 = error, 1 = ok.
    outcomes = np.full(n, -1, dtype=np.int8)
    pending = {"n": n}
    done = env.event()
    last_end = {"t": 0.0}
    chunk = config.flock_size
    kind_nbytes = flock.kind_nbytes
    labels = flock.labels

    buf_start: List[float] = []
    buf_end: List[float] = []
    buf_ok: List[bool] = []
    buf_kind: List[int] = []

    def flush() -> None:
        if not buf_start:
            return
        agg.record_chunk(
            buf_start, buf_end, oks=buf_ok,
            nbytes=[kind_nbytes[k] for k in buf_kind],
            operations=[labels[k] for k in buf_kind])
        buf_start.clear()
        buf_end.clear()
        buf_ok.clear()
        buf_kind.clear()

    def op_proc(i: int, k: int):
        t0 = env.now
        try:
            yield from _run_script_des(
                _op_script(clients, config, flock.op(i)))
            ok = True
        except StorageError:
            ok = False
        outcomes[i] = ok
        end = env.now - origin
        buf_start.append(t0 - origin)
        buf_end.append(end)
        buf_ok.append(ok)
        buf_kind.append(k)
        if len(buf_start) >= chunk:
            flush()
        if end > last_end["t"]:
            last_end["t"] = end
        pending["n"] -= 1
        if pending["n"] == 0:
            done.succeed()

    def injector():
        timeout = env.timeout
        process = env.process
        at_arr = flock.at
        kind_arr = flock.kind
        for base in range(0, n, chunk):
            ats = at_arr[base:base + chunk].tolist()
            kinds = kind_arr[base:base + chunk].tolist()
            i = base
            for t_at, k in zip(ats, kinds):
                wait = origin + t_at - env.now
                if wait > 0:
                    yield timeout(wait)
                process(op_proc(i, k))
                i += 1

    if n:
        env.process(injector(), name="load-injector")
        env.run(until=done)
    flush()
    return outcomes, last_end["t"], env.events_processed
