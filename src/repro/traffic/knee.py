"""Bisection saturation search: find a service's latency knee.

DiPerF-style capacity location: the **knee** is the highest open-loop
arrival rate whose steady-state windows are all SLO-clean.  Closed-loop
sweeps never see it (a saturated closed loop self-throttles its offered
rate); an open-loop probe at rate λ either keeps every window inside the
objectives or it does not, which makes "clean at λ" a monotone-enough
predicate to bisect.

Every probe is a full seeded :func:`~repro.traffic.engine.run_load` run,
so the search is deterministic: same seed and bounds ⇒ same probe
sequence ⇒ same knee (pinned by ``tests/traffic``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from .engine import LoadConfig, LoadResult, run_load
from .slo import SLOSpec

__all__ = ["KneeProbe", "KneeResult", "find_knee"]


@dataclass(frozen=True)
class KneeProbe:
    """One bisection probe at a fixed arrival rate."""

    rate: float
    clean: bool
    completions: int
    errors: int
    p95_ms: float
    violation_windows: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "rate": round(self.rate, 6),
            "clean": self.clean,
            "completions": self.completions,
            "errors": self.errors,
            "p95_ms": round(self.p95_ms, 6),
            "violation_windows": self.violation_windows,
        }


@dataclass
class KneeResult:
    """Outcome of one saturation search."""

    #: Highest probed rate with every steady-state window SLO-clean,
    #: or ``None`` when even the lowest probe violated the objectives.
    knee_rate: Optional[float]
    converged: bool
    probes: List[KneeProbe] = field(default_factory=list)
    low: float = 0.0
    high: float = 0.0
    rel_tol: float = 0.0

    def verdict(self) -> Dict[str, object]:
        return {
            "kind": "saturation-search",
            "knee_rate": (round(self.knee_rate, 6)
                          if self.knee_rate is not None else None),
            "converged": self.converged,
            "bracket": {"low": self.low, "high": self.high},
            "rel_tol": self.rel_tol,
            "probes": [p.to_dict() for p in self.probes],
        }

    def to_json(self) -> str:
        return json.dumps(self.verdict(), indent=2, sort_keys=True)


def _probe(config: LoadConfig, rate: float) -> tuple:
    result = run_load(replace(
        config, arrivals=config.arrivals.with_rate(rate)))
    report = result.slo_report
    assert report is not None  # find_knee requires an SLO
    steady = report.spec.steady_rows(result.rows)
    p95 = max((row.p95_ms for row in steady), default=0.0)
    probe = KneeProbe(
        rate=rate, clean=report.clean,
        completions=result.aggregator.total_completions,
        errors=result.aggregator.total_errors,
        p95_ms=p95,
        violation_windows=len({v.window for v in report.violations}),
    )
    return probe, result


def find_knee(config: LoadConfig, *, low: float = 1.0,
              high: float = 200.0, rel_tol: float = 0.1,
              max_probes: int = 12) -> KneeResult:
    """Bisect [low, high] for the highest SLO-clean arrival rate.

    ``config.slo`` must be set; ``config.arrivals`` supplies the process
    shape and seed while its rate is overridden per probe.  The bracket
    endpoints are probed first: an unclean ``low`` means the service
    cannot meet the SLO anywhere in the bracket (``knee_rate=None``); a
    clean ``high`` means the knee lies at or beyond ``high`` (returned
    as the knee, ``converged=False``).  Otherwise bisection narrows the
    clean/unclean bracket until ``high - low <= rel_tol * high``.
    """
    if config.slo is None:
        raise ValueError("find_knee requires a LoadConfig with an SLO")
    if not 0 < low < high:
        raise ValueError("need 0 < low < high")
    if rel_tol <= 0 or max_probes < 2:
        raise ValueError("rel_tol must be > 0 and max_probes >= 2")

    result = KneeResult(knee_rate=None, converged=False,
                        low=low, high=high, rel_tol=rel_tol)

    probe, _ = _probe(config, low)
    result.probes.append(probe)
    if not probe.clean:
        result.converged = True  # answer is definitive: no clean rate
        return result

    probe, _ = _probe(config, high)
    result.probes.append(probe)
    if probe.clean:
        result.knee_rate = high  # knee is at or beyond the bracket top
        return result

    lo, hi = low, high  # invariant: lo clean, hi unclean
    while len(result.probes) < max_probes and (hi - lo) > rel_tol * hi:
        mid = (lo + hi) / 2.0
        probe, _ = _probe(config, mid)
        result.probes.append(probe)
        if probe.clean:
            lo = mid
        else:
            hi = mid
    result.knee_rate = lo
    result.converged = (hi - lo) <= rel_tol * hi
    return result
