"""Service-level objectives over windowed open-loop statistics.

An :class:`SLOSpec` states per-window bounds — latency percentiles, an
error-rate ceiling, a throughput floor — and :meth:`SLOSpec.check`
evaluates them over the :class:`~repro.traffic.stats.WindowRow` stream,
flagging each violating window with the metric, the observed value, and
the bound.  Warmup (and optionally trailing cooldown) windows are
excluded so ramp transients do not mask the steady state; the knee
search (:mod:`repro.traffic.knee`) bisects on "every steady-state
window clean".
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .stats import WindowRow

__all__ = ["SLOSpec", "SLOReport", "WindowViolation"]


@dataclass(frozen=True)
class WindowViolation:
    """One window failing one objective."""

    window: int
    metric: str
    value: float
    bound: float

    def to_dict(self) -> Dict[str, float]:
        return {"window": self.window, "metric": self.metric,
                "value": round(self.value, 6), "bound": self.bound}

    def describe(self) -> str:
        return (f"window {self.window}: {self.metric}={self.value:.3f} "
                f"breaches bound {self.bound:g}")


@dataclass
class SLOReport:
    """Verdict of one SLO evaluation."""

    spec: "SLOSpec"
    windows_checked: int
    violations: List[WindowViolation] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, object]:
        return {
            "slo": self.spec.to_dict(),
            "windows_checked": self.windows_checked,
            "clean": self.clean,
            "violations": [v.to_dict() for v in self.violations],
        }


#: value suffix -> milliseconds multiplier for latency bounds.
_LATENCY_UNITS = {"ms": 1.0, "s": 1000.0}


@dataclass(frozen=True)
class SLOSpec:
    """Per-window objectives.  ``None`` disables a bound.

    Latency bounds are milliseconds; ``max_error_rate`` is a fraction in
    [0, 1]; ``min_throughput`` is successful ops/s.  The first
    ``warmup_windows`` and last ``cooldown_windows`` rows are skipped.
    Windows with zero attempts are judged only against the throughput
    floor (there is no latency sample to bound — but an *empty* window
    under a throughput floor is itself the violation that matters).
    """

    p50_ms: Optional[float] = None
    p95_ms: Optional[float] = None
    p99_ms: Optional[float] = None
    max_error_rate: Optional[float] = None
    min_throughput: Optional[float] = None
    warmup_windows: int = 1
    cooldown_windows: int = 1

    def __post_init__(self) -> None:
        for name in ("p50_ms", "p95_ms", "p99_ms"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} bound must be > 0")
        if (self.max_error_rate is not None
                and not 0 <= self.max_error_rate <= 1):
            raise ValueError("max_error_rate must be in [0, 1]")
        if self.min_throughput is not None and self.min_throughput < 0:
            raise ValueError("min_throughput must be >= 0")
        if self.warmup_windows < 0 or self.cooldown_windows < 0:
            raise ValueError("warmup/cooldown window counts must be >= 0")

    # -- parsing -----------------------------------------------------------
    @classmethod
    def parse(cls, text: str, *, warmup_windows: int = 1,
              cooldown_windows: int = 1) -> "SLOSpec":
        """Parse a CLI objective list.

        Comma-separated ``metric=value`` terms; whitespace is ignored::

            p95=250ms, p99=1s, err=1%, tput=100

        Metrics: ``p50``/``p95``/``p99`` (latency, ``ms`` default, ``s``
        accepted), ``err`` (fraction or percent), ``tput`` (ops/s floor).
        """
        kwargs: Dict[str, float] = {}
        for term in text.split(","):
            term = term.strip()
            if not term:
                continue
            if "=" not in term:
                raise ValueError(f"bad SLO term {term!r}; expected "
                                 f"metric=value")
            metric, value = (p.strip().lower() for p in term.split("=", 1))
            if metric in ("p50", "p95", "p99"):
                match = re.fullmatch(r"([0-9.]+)\s*(ms|s)?", value)
                if not match:
                    raise ValueError(f"bad latency bound {value!r} for "
                                     f"{metric}")
                ms = float(match.group(1)) * _LATENCY_UNITS[
                    match.group(2) or "ms"]
                kwargs[f"{metric}_ms"] = ms
            elif metric in ("err", "error", "error_rate"):
                if value.endswith("%"):
                    kwargs["max_error_rate"] = float(value[:-1]) / 100.0
                else:
                    kwargs["max_error_rate"] = float(value)
            elif metric in ("tput", "throughput"):
                kwargs["min_throughput"] = float(value)
            else:
                raise ValueError(
                    f"unknown SLO metric {metric!r}; choose from p50, "
                    f"p95, p99, err, tput")
        if not kwargs:
            raise ValueError(f"SLO spec {text!r} names no objectives")
        return cls(warmup_windows=warmup_windows,
                   cooldown_windows=cooldown_windows, **kwargs)

    # -- evaluation --------------------------------------------------------
    def steady_rows(self, rows: Sequence[WindowRow]) -> Sequence[WindowRow]:
        """The steady-state slice warmup/cooldown excludes."""
        end = len(rows) - self.cooldown_windows
        return rows[self.warmup_windows:max(self.warmup_windows, end)]

    def check(self, rows: Sequence[WindowRow]) -> SLOReport:
        steady = self.steady_rows(rows)
        report = SLOReport(spec=self, windows_checked=len(steady))
        for row in steady:
            has_samples = (row.completions - row.errors) > 0
            for metric, bound in (("p50_ms", self.p50_ms),
                                  ("p95_ms", self.p95_ms),
                                  ("p99_ms", self.p99_ms)):
                if bound is None or not has_samples:
                    continue
                value = getattr(row, metric)
                if value > bound:
                    report.violations.append(WindowViolation(
                        row.index, metric, value, bound))
            if (self.max_error_rate is not None and row.completions
                    and row.error_rate > self.max_error_rate):
                report.violations.append(WindowViolation(
                    row.index, "error_rate", row.error_rate,
                    self.max_error_rate))
            if (self.min_throughput is not None
                    and row.throughput < self.min_throughput):
                report.violations.append(WindowViolation(
                    row.index, "throughput", row.throughput,
                    self.min_throughput))
        return report

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {}
        for name in ("p50_ms", "p95_ms", "p99_ms", "max_error_rate",
                     "min_throughput"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        out["warmup_windows"] = self.warmup_windows
        out["cooldown_windows"] = self.cooldown_windows
        return out
