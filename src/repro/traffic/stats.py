"""Streaming windowed statistics for open-loop runs.

:class:`StatsAggregator` folds completed operations into fixed-width
time windows as they finish.  The stored state is a **commutative
monoid**: integer counters, byte totals, mergeable log-bucketed latency
:class:`~repro.observability.histogram.Histogram`\\ s, and an exact
in-flight time integral (each operation contributes its overlap with
every window it spans, so partition merges neither double-count nor
drop boundary-crossing work).  Aggregators built on different workers or
partitions therefore merge into exactly the aggregate a single offline
pass over all operations would produce — the property the
``tests/traffic/test_stats_merge.py`` battery pins.

Attribution rules (fixed, so merges agree):

* an operation's *arrival* counts in the window containing its start;
* its *completion*, latency sample, error flag, and bytes count in the
  window containing its end (a completion exactly on a boundary belongs
  to the later window — windows are ``[k·w, (k+1)·w)``);
* its *in-flight* contribution to each window is the exact overlap of
  ``[start, end)`` with that window.

Derived metrics (throughput, percentiles, mean in-flight, utilization)
are computed at read time from the mergeable state, never stored.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..observability.histogram import DEFAULT_GROWTH, Histogram

__all__ = ["StatsAggregator", "WindowRow", "WINDOW_CSV_HEADER"]


class _Window:
    """Mergeable per-window state (internal)."""

    __slots__ = ("arrivals", "completions", "errors", "nbytes",
                 "latency", "inflight_area", "ops")

    def __init__(self, growth: float) -> None:
        self.arrivals = 0
        self.completions = 0
        self.errors = 0
        self.nbytes = 0
        self.latency = Histogram(growth)
        #: ∫ in-flight dt restricted to this window (exact overlap sum).
        self.inflight_area = 0.0
        #: operation name -> completions (successful + failed).
        self.ops: Dict[str, int] = {}

    def merge(self, other: "_Window", growth: float) -> "_Window":
        out = _Window(growth)
        out.arrivals = self.arrivals + other.arrivals
        out.completions = self.completions + other.completions
        out.errors = self.errors + other.errors
        out.nbytes = self.nbytes + other.nbytes
        out.latency = self.latency.merge(other.latency)
        out.inflight_area = self.inflight_area + other.inflight_area
        out.ops = dict(self.ops)
        for op, n in other.ops.items():
            out.ops[op] = out.ops.get(op, 0) + n
        return out

    def eq_exact(self, other: "_Window") -> bool:
        # inflight_area is float-summed in merge order, so like
        # Histogram.total it is compared with a tolerance, not exactly.
        return (self.arrivals == other.arrivals
                and self.completions == other.completions
                and self.errors == other.errors
                and self.nbytes == other.nbytes
                and self.latency == other.latency
                and self.ops == other.ops
                and math.isclose(self.inflight_area, other.inflight_area,
                                 rel_tol=1e-9, abs_tol=1e-9))


@dataclass(frozen=True)
class WindowRow:
    """Derived, read-only view of one window."""

    index: int
    start: float
    end: float
    arrivals: int
    completions: int
    errors: int
    throughput: float       #: successful completions / s
    error_rate: float       #: errors / (completions + errors)
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_latency_ms: float
    mean_in_flight: float   #: time-averaged concurrency (Little's L)
    utilization: float      #: mean_in_flight / servers hint
    mb_per_s: float

    def to_dict(self) -> Dict[str, float]:
        return {
            "window": self.index, "start": self.start, "end": self.end,
            "arrivals": self.arrivals, "completions": self.completions,
            "errors": self.errors,
            "throughput": round(self.throughput, 6),
            "error_rate": round(self.error_rate, 6),
            "p50_ms": round(self.p50_ms, 6),
            "p95_ms": round(self.p95_ms, 6),
            "p99_ms": round(self.p99_ms, 6),
            "mean_latency_ms": round(self.mean_latency_ms, 6),
            "mean_in_flight": round(self.mean_in_flight, 6),
            "utilization": round(self.utilization, 6),
            "mb_per_s": round(self.mb_per_s, 6),
        }


WINDOW_CSV_HEADER = ("window,start,end,arrivals,completions,errors,"
                     "throughput,error_rate,p50_ms,p95_ms,p99_ms,"
                     "mean_latency_ms,mean_in_flight,utilization,mb_per_s")


class StatsAggregator:
    """Fold operation completions into fixed-width windows; merge exactly."""

    def __init__(self, window_s: float, *,
                 growth: float = DEFAULT_GROWTH) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be > 0")
        self.window_s = float(window_s)
        self.growth = growth
        self._windows: Dict[int, _Window] = {}
        #: Run-level latency histogram over every completion.
        self.overall = Histogram(growth)
        self.total_arrivals = 0
        self.total_completions = 0
        self.total_errors = 0
        self.total_bytes = 0

    # -- recording ---------------------------------------------------------
    def _window(self, index: int) -> _Window:
        win = self._windows.get(index)
        if win is None:
            win = _Window(self.growth)
            self._windows[index] = win
        return win

    def index_of(self, t: float) -> int:
        return int(math.floor(t / self.window_s))

    def record(self, start: float, end: float, *, ok: bool = True,
               nbytes: int = 0, operation: Optional[str] = None) -> None:
        """Fold one finished operation (times relative to the run origin)."""
        if end < start:
            raise ValueError(f"operation ends ({end}) before it starts "
                             f"({start})")
        if start < 0:
            raise ValueError("start must be >= 0")
        latency = end - start
        self._window(self.index_of(start)).arrivals += 1
        done = self._window(self.index_of(end))
        done.completions += 1
        done.latency.observe(latency)
        done.nbytes += nbytes
        if not ok:
            done.errors += 1
        if operation:
            done.ops[operation] = done.ops.get(operation, 0) + 1
        # Exact in-flight split across every window [start, end) touches.
        if latency > 0:
            first, last = self.index_of(start), self.index_of(end)
            for idx in range(first, last + 1):
                lo = max(start, idx * self.window_s)
                hi = min(end, (idx + 1) * self.window_s)
                if hi > lo:
                    self._window(idx).inflight_area += hi - lo
        self.overall.observe(latency)
        self.total_arrivals += 1
        self.total_completions += 1
        self.total_bytes += nbytes
        if not ok:
            self.total_errors += 1

    def record_chunk(self, starts, ends, *, oks=None, nbytes=None,
                     operations=None) -> None:
        """Fold a batch of finished operations in one call.

        The state change is exactly equivalent to calling
        :meth:`record` once per element, in order (pinned by
        ``tests/traffic/test_stats_chunk.py``): validation and window
        indexing are vectorized with numpy, while latency observations
        reuse the scalar histogram path so bucket boundaries agree to
        the last ulp.  Flock-mode load runs flush their completion
        buffers through here.

        ``oks``/``nbytes``/``operations`` are optional parallel
        sequences (defaults: ok, 0 bytes, unattributed).
        """
        import numpy as np

        starts = np.asarray(starts, dtype=np.float64)
        ends = np.asarray(ends, dtype=np.float64)
        n = len(starts)
        if len(ends) != n:
            raise ValueError("starts and ends must have equal length")
        if n == 0:
            return
        bad = ends < starts
        if bad.any():
            i = int(np.argmax(bad))
            raise ValueError(f"operation ends ({ends[i]}) before it "
                             f"starts ({starts[i]})")
        if (starts < 0).any():
            raise ValueError("start must be >= 0")
        w = self.window_s
        first = np.floor(starts / w).astype(np.int64).tolist()
        last = np.floor(ends / w).astype(np.int64).tolist()
        lats = (ends - starts).tolist()
        starts_l = starts.tolist()
        ends_l = ends.tolist()
        window = self._window
        overall_observe = self.overall.observe
        total_nbytes = 0
        nerr = 0
        for i in range(n):
            fi = first[i]
            li = last[i]
            lat = lats[i]
            window(fi).arrivals += 1
            done = window(li)
            done.completions += 1
            done.latency.observe(lat)
            nb = 0 if nbytes is None else nbytes[i]
            done.nbytes += nb
            total_nbytes += nb
            ok = True if oks is None else oks[i]
            if not ok:
                done.errors += 1
                nerr += 1
            if operations is not None:
                op = operations[i]
                if op:
                    done.ops[op] = done.ops.get(op, 0) + 1
            if lat > 0:
                if fi == li:
                    # Single-window op: the overlap is the whole latency.
                    window(fi).inflight_area += lat
                else:
                    start = starts_l[i]
                    end = ends_l[i]
                    for idx in range(fi, li + 1):
                        lo = max(start, idx * w)
                        hi = min(end, (idx + 1) * w)
                        if hi > lo:
                            window(idx).inflight_area += hi - lo
            overall_observe(lat)
        self.total_arrivals += n
        self.total_completions += n
        self.total_bytes += total_nbytes
        self.total_errors += nerr

    # -- merging -----------------------------------------------------------
    def merge(self, other: "StatsAggregator") -> "StatsAggregator":
        """A new aggregator holding both operation sets (monoid op)."""
        if other.window_s != self.window_s:
            raise ValueError(
                f"cannot merge aggregators with different window widths "
                f"({self.window_s} vs {other.window_s})")
        if other.growth != self.growth:
            raise ValueError("cannot merge aggregators with different "
                             "histogram growth factors")
        merged = StatsAggregator(self.window_s, growth=self.growth)
        for idx, win in self._windows.items():
            theirs = other._windows.get(idx)
            merged._windows[idx] = (win.merge(theirs, self.growth)
                                    if theirs else
                                    win.merge(_Window(self.growth),
                                              self.growth))
        for idx, win in other._windows.items():
            if idx not in self._windows:
                merged._windows[idx] = _Window(self.growth).merge(
                    win, self.growth)
        merged.overall = self.overall.merge(other.overall)
        merged.total_arrivals = self.total_arrivals + other.total_arrivals
        merged.total_completions = (self.total_completions
                                    + other.total_completions)
        merged.total_errors = self.total_errors + other.total_errors
        merged.total_bytes = self.total_bytes + other.total_bytes
        return merged

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StatsAggregator):
            return NotImplemented
        if (self.window_s != other.window_s
                or self.growth != other.growth
                or self.overall != other.overall
                or self.total_arrivals != other.total_arrivals
                or self.total_completions != other.total_completions
                or self.total_errors != other.total_errors
                or self.total_bytes != other.total_bytes):
            return False
        empty = _Window(self.growth)
        indices = set(self._windows) | set(other._windows)
        return all(
            self._windows.get(i, empty).eq_exact(other._windows.get(i, empty))
            for i in indices)

    __hash__ = None  # mutable container

    # -- reading -----------------------------------------------------------
    def window_count(self, duration: Optional[float] = None) -> int:
        if duration is not None:
            return max(1, int(math.ceil(duration / self.window_s)))
        return (max(self._windows) + 1) if self._windows else 0

    def rows(self, duration: Optional[float] = None, *,
             servers: int = 1) -> List[WindowRow]:
        """Derived per-window rows, 0..N-1 (gaps become empty windows).

        ``servers`` scales the utilization column: mean in-flight
        operations per server (a pure read-time hint — the mergeable
        state never depends on it).
        """
        if servers < 1:
            raise ValueError("servers must be >= 1")
        out: List[WindowRow] = []
        w = self.window_s
        empty = _Window(self.growth)
        for idx in range(self.window_count(duration)):
            win = self._windows.get(idx, empty)
            hist = win.latency
            attempts = win.completions
            good = win.completions - win.errors
            mean_if = win.inflight_area / w
            out.append(WindowRow(
                index=idx, start=idx * w, end=(idx + 1) * w,
                arrivals=win.arrivals, completions=win.completions,
                errors=win.errors,
                throughput=good / w,
                error_rate=(win.errors / attempts) if attempts else 0.0,
                p50_ms=hist.p50 * 1e3 if hist.count else 0.0,
                p95_ms=hist.percentile(95) * 1e3 if hist.count else 0.0,
                p99_ms=hist.p99 * 1e3 if hist.count else 0.0,
                mean_latency_ms=hist.mean * 1e3,
                mean_in_flight=mean_if,
                utilization=mean_if / servers,
                mb_per_s=win.nbytes / w / (1024 * 1024),
            ))
        return out

    def totals(self) -> Dict[str, float]:
        return {
            "arrivals": self.total_arrivals,
            "completions": self.total_completions,
            "errors": self.total_errors,
            "bytes": self.total_bytes,
            "latency": self.overall.to_dict(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<StatsAggregator windows={len(self._windows)} "
                f"n={self.total_completions}>")
