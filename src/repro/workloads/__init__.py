"""Workload generators for benchmarks and example applications."""

from .generators import (
    GISTile,
    bag_of_tasks,
    gis_tiles,
    payload_stream,
    size_ladder,
)
from .ycsb import (
    WORKLOAD_A,
    WORKLOAD_B,
    WORKLOAD_C,
    WORKLOAD_D,
    WORKLOAD_E,
    WORKLOAD_F,
    YCSBWorkload,
    ZipfianGenerator,
    ycsb_worker_body,
)

__all__ = [
    "size_ladder",
    "payload_stream",
    "bag_of_tasks",
    "gis_tiles",
    "GISTile",
    "YCSBWorkload",
    "ZipfianGenerator",
    "ycsb_worker_body",
    "WORKLOAD_A",
    "WORKLOAD_B",
    "WORKLOAD_C",
    "WORKLOAD_D",
    "WORKLOAD_E",
    "WORKLOAD_F",
]
