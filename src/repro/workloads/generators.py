"""Workload generators: payloads and task sets for benchmarks and examples."""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from ..storage import KB, MB
from ..storage.content import SyntheticContent

__all__ = [
    "size_ladder",
    "payload_stream",
    "bag_of_tasks",
    "gis_tiles",
    "GISTile",
]


def size_ladder(start: int = 4 * KB, stop: int = 64 * KB) -> List[int]:
    """The paper's doubling size ladder: 4, 8, 16, 32, 64 KB."""
    if start <= 0 or stop < start:
        raise ValueError("need 0 < start <= stop")
    sizes = []
    size = start
    while size <= stop:
        sizes.append(size)
        size *= 2
    return sizes


def payload_stream(size: int, seed: int) -> Iterator[SyntheticContent]:
    """An endless stream of distinct same-size payloads (seeded)."""
    i = 0
    while True:
        yield SyntheticContent(size, seed=seed * 1_000_003 + i)
        i += 1


def bag_of_tasks(count: int, *, work_low: float = 0.01, work_high: float = 1.0,
                 seed: int = 0) -> List[bytes]:
    """Independent tasks with random service demands (seconds), as JSON.

    The classic workload of the paper's Section III framework: a master
    enqueues ``count`` task descriptors; workers pull and execute them.
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    rng = np.random.default_rng(seed)
    demands = rng.uniform(work_low, work_high, size=count)
    return [
        json.dumps({"task_id": i, "work_s": float(d)}).encode()
        for i, d in enumerate(demands)
    ]


@dataclass(frozen=True)
class GISTile:
    """One tile of a Crayons-style GIS polygon-overlay job (paper [9]).

    ``base_polygons``/``overlay_polygons`` set the compute demand of the
    overlay; ``data_bytes`` the storage payload the worker must fetch.
    """

    tile_id: int
    x: int
    y: int
    base_polygons: int
    overlay_polygons: int
    data_bytes: int

    def to_message(self) -> bytes:
        return json.dumps({
            "tile_id": self.tile_id, "x": self.x, "y": self.y,
            "base_polygons": self.base_polygons,
            "overlay_polygons": self.overlay_polygons,
            "data_bytes": self.data_bytes,
        }).encode()

    @staticmethod
    def from_message(payload: bytes) -> "GISTile":
        d = json.loads(payload.decode())
        return GISTile(d["tile_id"], d["x"], d["y"], d["base_polygons"],
                       d["overlay_polygons"], d["data_bytes"])


def gis_tiles(grid: int = 8, *, mean_polygons: int = 400,
              seed: int = 0) -> List[GISTile]:
    """A ``grid x grid`` tiling with spatially clustered polygon density.

    GIS overlay workloads are famously load-imbalanced — urban tiles carry
    orders of magnitude more polygons than rural ones, and they *cluster*
    (a city spans adjacent tiles).  Density combines a lognormal draw with
    a Gaussian hotspot, so contiguous static partitions land entire hot
    regions on one worker — exactly why the paper's queue-based task pool
    (dynamic load balancing) beats static partitioning.
    """
    if grid < 1:
        raise ValueError("grid must be >= 1")
    rng = np.random.default_rng(seed)
    # Hotspot ("city center") somewhere in the interior of the map.
    cx = rng.uniform(grid * 0.25, grid * 0.75)
    cy = rng.uniform(grid * 0.25, grid * 0.75)
    sigma = max(1.0, grid / 6)
    tiles: List[GISTile] = []
    for tile_id in range(grid * grid):
        x, y = tile_id % grid, tile_id // grid
        boost = 1.0 + 20.0 * float(
            np.exp(-((x - cx) ** 2 + (y - cy) ** 2) / (2 * sigma ** 2)))
        base = int(rng.lognormal(np.log(mean_polygons), 0.6) * boost)
        over = int(rng.lognormal(np.log(mean_polygons), 0.6) * boost)
        data = 16 * KB + 64 * (base + over)
        tiles.append(GISTile(tile_id, x, y, base, over, data))
    return tiles
