"""YCSB-style workloads for the Table service.

YCSB (Cooper et al., SoCC'10) is the contemporaneous cloud-storage
benchmark the AzureBench paper complements: where AzureBench sweeps
uniform per-worker workloads across services, YCSB mixes operation types
with skewed key popularity.  This module brings the YCSB core workloads to
the simulated Table service, so the reproduction connects to the standard
benchmark family.

* :class:`YCSBWorkload` — operation mix + key distribution; presets A–F
  (F's read-modify-write is modeled as read+update in one task).
* :class:`ZipfianGenerator` — the standard YCSB skewed key chooser
  (Gray et al. constant-time zipfian).
* :func:`ycsb_worker_body` — a role body running a workload against the
  Table service and recording per-op phases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..storage import KB
from ..storage.content import SyntheticContent

__all__ = [
    "YCSBWorkload",
    "WORKLOAD_A",
    "WORKLOAD_B",
    "WORKLOAD_C",
    "WORKLOAD_D",
    "WORKLOAD_E",
    "WORKLOAD_F",
    "ZipfianGenerator",
    "ycsb_worker_body",
]


class ZipfianGenerator:
    """Constant-time zipfian integer generator over ``[0, n)``.

    The YCSB/Gray formulation: ``P(k) ∝ 1 / (k+1)^theta`` with the standard
    rejection-free inverse-CDF approximation.
    """

    def __init__(self, n: int, theta: float = 0.99, *, seed: int = 0) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        if not 0 < theta < 1:
            raise ValueError("theta must be in (0, 1)")
        self.n = n
        self.theta = theta
        self._rng = np.random.default_rng(seed)
        self._zetan = self._zeta(n, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = ((1 - (2.0 / n) ** (1 - theta))
                     / (1 - self._zeta2 / self._zetan))

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        ks = np.arange(1, n + 1, dtype=float)
        return float(np.sum(1.0 / ks ** theta))

    def next(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.n * (self._eta * u - self._eta + 1) ** self._alpha)

    def sample(self, count: int) -> np.ndarray:
        return np.array([self.next() for _ in range(count)])


@dataclass(frozen=True)
class YCSBWorkload:
    """One YCSB core workload: operation proportions + key distribution."""

    name: str
    read: float
    update: float
    insert: float
    scan: float
    #: "zipfian", "uniform" or "latest".
    distribution: str = "zipfian"
    record_count: int = 1000
    field_bytes: int = 1 * KB
    max_scan_length: int = 20

    def __post_init__(self):
        total = self.read + self.update + self.insert + self.scan
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"proportions of {self.name} sum to {total}")
        if self.distribution not in ("zipfian", "uniform", "latest"):
            raise ValueError(f"unknown distribution {self.distribution!r}")

    def operations(self, count: int, *, seed: int = 0):
        """Yield ``(op, key)`` pairs for ``count`` operations."""
        rng = np.random.default_rng(seed)
        zipf = ZipfianGenerator(self.record_count, seed=seed + 1)
        inserted = self.record_count
        thresholds = np.cumsum([self.read, self.update, self.insert,
                                self.scan])
        for _ in range(count):
            r = rng.random()
            if self.distribution == "uniform":
                key = int(rng.integers(0, inserted))
            elif self.distribution == "latest":
                key = max(0, inserted - 1 - zipf.next())
            else:
                key = zipf.next() % inserted
            if r < thresholds[0]:
                yield ("read", key)
            elif r < thresholds[1]:
                yield ("update", key)
            elif r < thresholds[2]:
                yield ("insert", inserted)
                inserted += 1
            else:
                yield ("scan", key)


#: YCSB core workloads (SoCC'10 Table 1), at a 1 KB record size.
WORKLOAD_A = YCSBWorkload("A (update heavy)", read=0.5, update=0.5,
                          insert=0.0, scan=0.0)
WORKLOAD_B = YCSBWorkload("B (read mostly)", read=0.95, update=0.05,
                          insert=0.0, scan=0.0)
WORKLOAD_C = YCSBWorkload("C (read only)", read=1.0, update=0.0,
                          insert=0.0, scan=0.0)
WORKLOAD_D = YCSBWorkload("D (read latest)", read=0.95, update=0.0,
                          insert=0.05, scan=0.0, distribution="latest")
WORKLOAD_E = YCSBWorkload("E (short ranges)", read=0.0, update=0.0,
                          insert=0.05, scan=0.95)
WORKLOAD_F = YCSBWorkload("F (read-modify-write)", read=0.5, update=0.5,
                          insert=0.0, scan=0.0)


def _row_key(key: int) -> str:
    return f"user{key:012d}"


def ycsb_worker_body(workload: YCSBWorkload, *, table_name: str = "Usertable",
                     ops_per_worker: int = 200, seed: int = 0):
    """Build a role body running ``workload`` against the Table service.

    Records one phase per operation type (``ycsb_read`` etc.) in a
    :class:`~repro.core.metrics.PhaseRecorder`.  The table is pre-loaded by
    worker 0; each worker owns one partition (YCSB's hash-partitioned
    keyspace maps naturally onto PartitionKey).
    """
    from ..core.metrics import PhaseRecorder
    from ..framework import QueueBarrier
    from ..sim import retrying

    def body(ctx):
        env = ctx.env
        table = ctx.account.table_client()
        qc = ctx.account.queue_client()
        rec = PhaseRecorder(env, ctx.role_id)
        barrier = QueueBarrier(qc, "ycsb-sync", ctx.instance_count,
                               poll_interval=0.5, env=env)
        yield from barrier.ensure_queue()
        yield from table.create_table(table_name)

        partition = f"shard-{ctx.role_id}"
        payload = SyntheticContent(workload.field_bytes, seed=seed)

        # Load phase (untimed): each worker loads its own shard.
        for key in range(workload.record_count):
            yield from retrying(env, lambda k=key: table.insert(
                table_name, partition, _row_key(k), {"field0": payload}))
        yield from barrier.wait()

        # Run phase: one recorder span per op kind, accumulated.
        times: Dict[str, float] = {"read": 0.0, "update": 0.0,
                                   "insert": 0.0, "scan": 0.0}
        counts: Dict[str, int] = dict.fromkeys(times, 0)
        inserted = workload.record_count
        for op, key in workload.operations(ops_per_worker,
                                           seed=seed + ctx.role_id):
            t0 = env.now
            if op == "read":
                yield from retrying(env, lambda k=key: table.get(
                    table_name, partition, _row_key(k)))
            elif op == "update":
                yield from retrying(env, lambda k=key: table.update(
                    table_name, partition, _row_key(k),
                    {"field0": payload}, etag="*"))
            elif op == "insert":
                yield from retrying(env, lambda k=key: table.insert(
                    table_name, partition, _row_key(k), {"field0": payload}))
                inserted += 1
            else:  # scan: a short partition range read
                yield from retrying(env, lambda k=key: table.query_partition(
                    table_name, partition,
                    f"RowKey ge '{_row_key(k)}'", select=["field0"]))
            times[op] += env.now - t0
            counts[op] += 1

        for op in times:
            if counts[op]:
                rec.record_span(f"ycsb_{op}", times[op], ops=counts[op],
                                nbytes=counts[op] * workload.field_bytes)
        return rec

    return body
