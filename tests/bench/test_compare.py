"""Tests for the paper-vs-measured comparison (reproduction audit)."""

import pytest

from repro.bench import (
    BenchScale,
    FigureRunner,
    compare_to_paper,
    comparison_table,
)
from repro.storage import KB

SMALL_SCALE = BenchScale(
    name="audit-small",
    worker_counts=(1, 2, 8),
    blob_total_chunks=16,
    blob_repeats=1,
    queue_total_messages=160,
    queue_message_sizes=(4 * KB, 8 * KB, 16 * KB, 32 * KB, 64 * KB),
    shared_total_transactions=160,
    shared_think_times=(1.0, 3.0),
    table_entity_count=20,
    table_entity_sizes=(4 * KB, 32 * KB, 64 * KB),
)


@pytest.fixture(scope="module")
def rows():
    return compare_to_paper(FigureRunner(SMALL_SCALE))


class TestCompare:
    def test_all_shape_claims_hold_even_at_small_scale(self, rows):
        failing = [r.key for r in rows if r.paper_value is None and not r.holds]
        assert failing == [], failing

    def test_anchor_rows_present(self, rows):
        keys = {r.key for r in rows}
        for key in ("blob_max_download_mbps", "blob_max_upload_mbps",
                    "blob_block_upload_mbps"):
            assert key in keys

    def test_anchors_not_flagged_below_paper_scale(self, rows):
        """At 8 workers the absolute MB/s are below the paper's 96-worker
        maxima, but the audit must not call that a failure."""
        anchors = [r for r in rows if r.paper_value is not None]
        assert all(r.holds for r in anchors)
        assert all(r.ratio is not None and r.ratio < 1.0 for r in anchors)

    def test_table_rendering(self, rows):
        text = comparison_table(rows)
        assert "claim / anchor" in text
        assert "fig6_get_16k_anomaly" in text
        assert "NO" not in text  # everything holds
