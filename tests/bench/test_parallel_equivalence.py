"""Serial vs parallel sweep equivalence: ``--jobs`` must not move a number.

The whole parallelisation contract is byte-identity: every sweep cell
re-seeds its own fresh environment from the scale's seed, so fanning
cells over a process pool may only change wall-clock, never results.
These tests pin that contract at every layer — raw sweep records, the
rendered CSV bytes, the checkpoint file on disk, chaos verdicts, and the
golden trace digest.
"""

import json

import pytest

from repro.bench import FigureRunner, SweepExecutor, default_jobs
from repro.bench.executor import run_chaos_matrix
from repro.bench.figures import MINI_SCALE, SWEEP_BUILDERS
from repro.chaos import run_chaos
from repro.chaos.checkpoint import RunCheckpoint

SCALE = MINI_SCALE


def figures_csv(runner):
    """All figures of a runner rendered to one CSV byte-string."""
    return "\n".join(fig.to_csv() for fig in runner.all_figures())


def assert_sweeps_equal(serial, parallel):
    assert list(serial) == list(parallel)
    for workers in serial:
        a, b = serial[workers], parallel[workers]
        assert a.label == b.label
        assert a.phase_names() == b.phase_names()
        for name in a.phase_names():
            assert a.phase(name) == b.phase(name), (workers, name)


class TestSweepEquivalence:
    def test_every_sweep_bit_identical_under_jobs(self):
        serial = FigureRunner(SCALE)
        parallel = FigureRunner(SCALE, jobs=2)
        parallel.prefetch()
        for label, attr in FigureRunner._SWEEP_CACHES.items():
            assert_sweeps_equal(
                getattr(serial, {"_blob": "blob_sweep",
                                 "_queue_sep": "queue_separate_sweep",
                                 "_queue_shared": "queue_shared_sweep",
                                 "_table": "table_sweep"}[attr])(),
                getattr(parallel, attr))

    def test_all_figures_csv_byte_identical(self):
        serial_csv = figures_csv(FigureRunner(SCALE))
        parallel_csv = figures_csv(FigureRunner(SCALE, jobs=4))
        assert serial_csv == parallel_csv

    def test_campaign_key_ignores_jobs(self):
        keys = {FigureRunner(SCALE, jobs=jobs).campaign_key()
                for jobs in (None, 1, 2, 8)}
        assert len(keys) == 1

    def test_executor_matches_serial_runner_per_label(self):
        sweeps = SweepExecutor(2).run_sweeps(SCALE, list(SWEEP_BUILDERS))
        runner = FigureRunner(SCALE)
        assert_sweeps_equal(runner.queue_separate_sweep(), sweeps["fig6"])
        assert_sweeps_equal(runner.table_sweep(), sweeps["fig8"])


class TestCheckpointIntegration:
    def test_checkpoint_hit_never_reenters_run_bench(self, tmp_path,
                                                     monkeypatch):
        """A warm checkpoint must satisfy the sweep without simulating."""
        path = str(tmp_path / "ckpt.json")
        warm = FigureRunner(SCALE,
                            checkpoint=RunCheckpoint(path, "k"))
        warm.queue_separate_sweep()

        import repro.bench.figures as figures

        def boom(*args, **kwargs):
            raise AssertionError("checkpoint hit re-entered run_bench")

        monkeypatch.setattr(figures, "run_bench", boom)
        resumed = FigureRunner(SCALE,
                               checkpoint=RunCheckpoint(path, "k"))
        assert_sweeps_equal(warm.queue_separate_sweep(),
                            resumed.queue_separate_sweep())

    def test_parallel_checkpoint_file_byte_identical(self, tmp_path):
        """Completion-order puts still flush to the same bytes on disk."""
        serial_path = str(tmp_path / "serial.json")
        parallel_path = str(tmp_path / "parallel.json")
        FigureRunner(SCALE, checkpoint=RunCheckpoint(serial_path, "k")
                     ).queue_separate_sweep()
        FigureRunner(SCALE, jobs=2,
                     checkpoint=RunCheckpoint(parallel_path, "k")
                     ).queue_separate_sweep()
        with open(serial_path, encoding="utf-8") as fh:
            serial = fh.read()
        with open(parallel_path, encoding="utf-8") as fh:
            parallel = fh.read()
        assert serial == parallel
        assert json.loads(serial)["campaign_key"] == "k"

    def test_parallel_pre_pass_resolves_hits_in_parent(self, tmp_path,
                                                       monkeypatch):
        """With every cell checkpointed, jobs>1 must not spawn a pool."""
        path = str(tmp_path / "ckpt.json")
        FigureRunner(SCALE, checkpoint=RunCheckpoint(path, "k")
                     ).queue_separate_sweep()

        import repro.bench.executor as executor

        def no_pool(*args, **kwargs):
            raise AssertionError("fully-checkpointed sweep opened a pool")

        monkeypatch.setattr(executor, "ProcessPoolExecutor", no_pool)
        runner = FigureRunner(SCALE, jobs=4,
                              checkpoint=RunCheckpoint(path, "k"))
        assert list(runner.queue_separate_sweep()) == list(SCALE.worker_counts)


class TestParallelEligibility:
    def test_traced_runner_stays_serial(self):
        assert not FigureRunner(SCALE, trace=True, jobs=4)._parallel_eligible()

    def test_instrumented_runner_stays_serial(self):
        runner = FigureRunner(SCALE, instrument=lambda account: None, jobs=4)
        assert not runner._parallel_eligible()

    def test_backend_instance_stays_serial(self):
        from repro.backend import SimBackend
        assert not FigureRunner(SCALE, backend=SimBackend(),
                                jobs=4)._parallel_eligible()

    def test_jobs_one_or_none_stays_serial(self):
        assert not FigureRunner(SCALE, jobs=1)._parallel_eligible()
        assert not FigureRunner(SCALE)._parallel_eligible()

    def test_plain_parallel_runner_is_eligible(self):
        assert FigureRunner(SCALE, jobs=2)._parallel_eligible()

    def test_traced_digest_unchanged_by_jobs(self):
        """--jobs on a traced run falls back to serial: same span stream."""
        serial = FigureRunner(SCALE, trace=True)
        jobbed = FigureRunner(SCALE, trace=True, jobs=4)
        serial.queue_separate_sweep()
        jobbed.queue_separate_sweep()
        serial_digests = [t.digest() for _, _, t in serial.traces()]
        jobbed_digests = [t.digest() for _, _, t in jobbed.traces()]
        assert serial_digests and serial_digests == jobbed_digests


class TestChaosMatrix:
    def test_matrix_verdicts_equal_single_runs(self):
        matrix = run_chaos_matrix("fig6", "queue-storm", [7, 8], jobs=2)
        assert list(matrix) == [7, 8]
        for seed, verdict in matrix.items():
            solo = run_chaos("fig6", "queue-storm", seed)
            assert verdict.to_json() == solo.to_json()

    def test_matrix_serial_path_matches_parallel(self):
        serial = run_chaos_matrix("fig6", "queue-storm", [7, 8], jobs=1)
        parallel = run_chaos_matrix("fig6", "queue-storm", [7, 8], jobs=2)
        assert [v.to_json() for v in serial.values()] == \
               [v.to_json() for v in parallel.values()]

    def test_matrix_preserves_seed_order(self):
        matrix = run_chaos_matrix("fig6", "queue-storm", [9, 7, 8], jobs=3)
        assert list(matrix) == [9, 7, 8]


class TestExecutor:
    def test_default_jobs_positive(self):
        assert default_jobs() >= 1

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            SweepExecutor(0)

    def test_unknown_label_rejected(self):
        with pytest.raises(KeyError, match="unknown sweep"):
            SweepExecutor(1).run_sweeps(SCALE, ["fig99"])
