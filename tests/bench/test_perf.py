"""Smoke tests for the perf-regression harness (repro.bench.perf)."""

from pathlib import Path

import pytest

from repro.bench import perf
from repro.bench.figures import MINI_SCALE


def tiny_kernel(**kwargs):
    return perf.kernel_events_per_sec(procs=4, rounds=25, repeats=2,
                                      **kwargs)


class TestKernelBench:
    def test_reports_positive_rate(self):
        sample = tiny_kernel()
        assert sample["events_per_sec"] > 0
        assert sample["procs"] == 4 and sample["rounds"] == 25
        assert sample["scheduler"] == "heap"
        # 4 sleepers x 25 rounds, plus process-start events.
        assert sample["events"] >= 4 * 25

    def test_deterministic_event_count(self):
        assert tiny_kernel()["events"] == tiny_kernel()["events"]

    def test_calendar_scheduler_same_event_count(self):
        cal = tiny_kernel(scheduler="calendar")
        assert cal["scheduler"] == "calendar"
        assert cal["events"] == tiny_kernel()["events"]


class TestFlockMetrics:
    def test_small_flock_figure(self):
        sample = perf.flock_load_metrics(clients=50, per_client_rate=0.2,
                                         duration=3.0, flock_size=16)
        assert sample["clients"] == 50
        assert sample["ops"] > 0
        assert sample["ops_per_sec"] > 0
        assert sample["peak_rss_mb"] is None or sample["peak_rss_mb"] > 0


class TestSweepWallClock:
    def test_measures_both_legs(self):
        sample = perf.sweep_wall_clock(["fig6"], MINI_SCALE, jobs=2)
        assert sample["cells"] == len(MINI_SCALE.worker_counts)
        assert sample["serial_s"] > 0 and sample["parallel_s"] > 0
        assert sample["jobs"] == 2 and sample["scale"] == "mini"


class TestBenchDocument:
    def test_write_load_roundtrip(self, tmp_path):
        doc = {"schema": perf.BENCH_SCHEMA_VERSION,
               "kernel": {"events_per_sec": 123.0}}
        path = str(tmp_path / "BENCH_core.json")
        perf.write_bench(doc, path)
        assert perf.load_bench(path) == doc

    def test_load_rejects_other_schema(self, tmp_path):
        path = str(tmp_path / "BENCH_core.json")
        perf.write_bench({"schema": 999}, path)
        with pytest.raises(ValueError, match="schema"):
            perf.load_bench(path)

    def test_committed_bench_is_loadable_and_improved(self):
        """The committed trajectory must show the kernel acceptance bar."""
        committed = (Path(__file__).resolve().parents[2]
                     / "benchmarks" / "perf" / "BENCH_core.json")
        doc = perf.load_bench(str(committed))
        rate = doc["kernel"]["events_per_sec"]
        cal = doc["kernel_calendar"]["events_per_sec"]
        base = doc["baseline"]["kernel_events_per_sec"]
        assert cal >= 2.0 * base, (
            f"committed calendar rate {cal:,.0f} is not >=2x the "
            f"pre-PR heap baseline {base:,.0f}")
        assert rate >= 0.7 * base, (
            f"committed heap rate {rate:,.0f} regressed below the "
            f"30% floor of the pre-PR baseline {base:,.0f}")

    def test_committed_flock_figure_bounded_rss(self):
        committed = (Path(__file__).resolve().parents[2]
                     / "benchmarks" / "perf" / "BENCH_core.json")
        doc = perf.load_bench(str(committed))
        flock = doc["flock"]
        assert flock["clients"] >= 1_000_000
        assert flock["peak_rss_mb"] < 4096, (
            f"1M-client flock run peaked at {flock['peak_rss_mb']} MB")


class TestRegressionGate:
    BASE = {"kernel": {"events_per_sec": 1000.0}}

    def quiet(self, message):
        pass

    def test_within_tolerance_passes(self):
        current = {"kernel": {"events_per_sec": 750.0}}
        assert perf.check_regression(current, self.BASE, log=self.quiet)

    def test_faster_always_passes(self):
        current = {"kernel": {"events_per_sec": 5000.0}}
        assert perf.check_regression(current, self.BASE, log=self.quiet)

    def test_below_floor_fails(self):
        current = {"kernel": {"events_per_sec": 600.0}}
        assert not perf.check_regression(current, self.BASE, log=self.quiet)

    def test_tolerance_is_configurable(self):
        current = {"kernel": {"events_per_sec": 950.0}}
        assert not perf.check_regression(current, self.BASE, tolerance=0.01,
                                         log=self.quiet)

    def test_missing_rate_rejected(self):
        with pytest.raises(ValueError):
            perf.check_regression({}, self.BASE, log=self.quiet)

    def test_calendar_gate_applies_when_both_carry_it(self):
        base = {"kernel": {"events_per_sec": 1000.0},
                "kernel_calendar": {"events_per_sec": 2000.0}}
        current = {"kernel": {"events_per_sec": 1000.0},
                   "kernel_calendar": {"events_per_sec": 1000.0}}
        assert not perf.check_regression(current, base, log=self.quiet)
        current["kernel_calendar"]["events_per_sec"] = 1900.0
        assert perf.check_regression(current, base, log=self.quiet)

    def test_calendar_gate_skipped_for_schema1_baseline(self):
        current = {"kernel": {"events_per_sec": 1000.0},
                   "kernel_calendar": {"events_per_sec": 1.0}}
        assert perf.check_regression(current, self.BASE, log=self.quiet)


class TestRunPerf:
    def test_quick_document_shape(self, monkeypatch):
        # Keep the smoke genuinely quick: shrink the kernel bench and
        # point the sweep leg at the mini scale.
        real_kernel = perf.kernel_events_per_sec
        monkeypatch.setattr(
            perf, "kernel_events_per_sec",
            lambda **kw: real_kernel(procs=4, rounds=25, repeats=1, **kw))
        real_flock = perf.flock_load_metrics
        monkeypatch.setattr(
            perf, "flock_load_metrics",
            lambda **kw: real_flock(clients=20, per_client_rate=0.5,
                                    duration=2.0, flock_size=8))
        import repro.bench.figures as figures
        monkeypatch.setattr(figures, "QUICK_SCALE", MINI_SCALE)
        lines = []
        doc = perf.run_perf(quick=True, jobs=2,
                            baseline={"kernel": {"events_per_sec": 1.0},
                                      "host": {}},
                            log=lines.append)
        assert doc["schema"] == perf.BENCH_SCHEMA_VERSION
        assert doc["kernel"]["events_per_sec"] > 0
        assert doc["kernel"]["scheduler"] == "heap"
        assert doc["kernel_calendar"]["scheduler"] == "calendar"
        assert doc["kernel_calendar"]["events_per_sec"] > 0
        assert doc["flock"]["ops"] > 0
        assert doc["sweeps"]["labels"] == ["fig6"]
        assert doc["baseline"]["kernel_events_per_sec"] == 1.0
        assert doc["host"]["cpus"] >= 1
        assert any("kernel" in line for line in lines)
