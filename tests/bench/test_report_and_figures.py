"""Tests for the reporting layer and the figure harness (tiny scale)."""

import pytest

from repro.bench import (
    BenchScale,
    FigureData,
    FigureRunner,
    PAPER_ANCHORS,
    PAPER_SCALE,
    QUICK_SCALE,
    figure_table1,
    format_table,
    qualitative_claims,
)
from repro.storage import KB


class TestFigureData:
    def test_add_and_get(self):
        fig = FigureData("F1", "title", "x", [1, 2, 3])
        fig.add("s1", [10.0, 20.0, 30.0], unit="MB/s")
        assert fig.get("s1").values == [10.0, 20.0, 30.0]
        with pytest.raises(KeyError):
            fig.get("ghost")

    def test_length_mismatch_rejected(self):
        fig = FigureData("F1", "t", "x", [1, 2])
        with pytest.raises(ValueError):
            fig.add("bad", [1.0])

    def test_to_text_contains_everything(self):
        fig = FigureData("F1", "My Title", "workers", [1, 2])
        fig.add("alpha", [1.5, 2.5], unit="s")
        text = fig.to_text()
        assert "F1" in text and "My Title" in text
        assert "workers" in text and "alpha [s]" in text
        assert "1.500" in text and "2.500" in text

    def test_to_csv(self):
        fig = FigureData("F1", "t", "x", [1])
        fig.add("a", [2.0], unit="s")
        lines = fig.to_csv().strip().splitlines()
        assert lines[0] == "x,a [s]"
        assert lines[1] == "1,2.000"

    def test_format_table_alignment(self):
        rows = [["h1", "h2"], ["a", "1"], ["bbb", "22"]]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4  # header + rule + 2 rows
        assert len(set(len(l) for l in lines)) == 1  # aligned

    def test_format_empty(self):
        assert format_table([]) == ""


class TestPaperAnchors:
    def test_key_anchor_values(self):
        assert PAPER_ANCHORS["blob_max_download_mbps"].value == 165.0
        assert PAPER_ANCHORS["blob_max_upload_mbps"].value == 60.0
        assert PAPER_ANCHORS["blob_block_upload_mbps"].value == 21.0
        assert PAPER_ANCHORS["queue_usable_payload_bytes"].value == 49152.0

    def test_anchors_have_provenance(self):
        for anchor in PAPER_ANCHORS.values():
            assert anchor.quote and anchor.where and anchor.unit

    def test_qualitative_claims_exist(self):
        claims = qualitative_claims()
        assert "fig6_get_16k_anomaly" in claims
        assert len(claims) >= 10


class TestScales:
    def test_paper_scale_matches_paper(self):
        s = PAPER_SCALE
        assert s.blob_total_chunks == 100 and s.blob_repeats == 10
        assert s.queue_total_messages == 20_000
        assert s.table_entity_count == 500
        assert 96 in s.worker_counts
        assert s.queue_message_sizes == (4 * KB, 8 * KB, 16 * KB, 32 * KB,
                                         64 * KB)

    def test_quick_scale_is_smaller(self):
        assert QUICK_SCALE.blob_total_chunks < PAPER_SCALE.blob_total_chunks
        assert max(QUICK_SCALE.worker_counts) < max(PAPER_SCALE.worker_counts)


TINY = BenchScale(
    name="tiny",
    worker_counts=(1, 2),
    blob_total_chunks=8,
    blob_repeats=1,
    queue_total_messages=40,
    queue_message_sizes=(4 * KB, 16 * KB, 32 * KB),
    shared_total_transactions=40,
    shared_think_times=(0.5, 1.0),
    table_entity_count=10,
    table_entity_sizes=(4 * KB,),
)


class TestFigureRunner:
    @pytest.fixture(scope="class")
    def runner(self):
        return FigureRunner(TINY)

    def test_table1(self):
        fig = figure_table1()
        assert fig.x_values[0] == "Extra Small"
        assert fig.get("Storage").values[-1] == 2040

    def test_figure4_shapes(self, runner):
        thr, tim = runner.figure4()
        assert thr.x_values == [1, 2]
        assert {s.name for s in thr.series} == {
            "Page upload", "Block upload", "Page download", "Block download"}
        for s in thr.series:
            assert all(v > 0 for v in s.values)

    def test_figure5_shapes(self, runner):
        thr, tim = runner.figure5()
        assert {s.name for s in thr.series} == {
            "Page (random)", "Block (sequential)"}

    def test_figure6_panels(self, runner):
        figs = runner.figure6()
        assert set(figs) == {"Fig 6a", "Fig 6b", "Fig 6c"}
        for fig in figs.values():
            assert {s.name for s in fig.series} == {"4 KB", "16 KB", "32 KB"}

    def test_figure7_panels(self, runner):
        figs = runner.figure7()
        assert set(figs) == {"Fig 7a", "Fig 7b", "Fig 7c"}
        for fig in figs.values():
            assert {s.name for s in fig.series} == {"think 0s", "think 1s"}

    def test_figure8_panels(self, runner):
        figs = runner.figure8()
        assert set(figs) == {"Fig 8a", "Fig 8b", "Fig 8c", "Fig 8d"}

    def test_figure9(self, runner):
        fig = runner.figure9(queue_size=32 * KB, table_size=4 * KB)
        names = {s.name for s in fig.series}
        assert "queue put" in names and "table update" in names

    def test_sweeps_are_cached(self, runner):
        a = runner.blob_sweep()
        b = runner.blob_sweep()
        assert a is b
