"""Direct tests for the reproduction-report generator."""

import pytest

from repro.bench import BenchScale, FigureRunner
from repro.bench.reportgen import generate_report
from repro.storage import KB

TINY = BenchScale(
    name="report-tiny",
    worker_counts=(1, 2),
    blob_total_chunks=4,
    blob_repeats=1,
    queue_total_messages=20,
    queue_message_sizes=(4 * KB, 8 * KB, 16 * KB, 32 * KB, 64 * KB),
    shared_total_transactions=20,
    shared_think_times=(0.5, 1.0),
    table_entity_count=5,
    table_entity_sizes=(4 * KB, 64 * KB),
)


@pytest.fixture(scope="module")
def report():
    return generate_report(FigureRunner(TINY))


class TestGenerateReport:
    def test_sections_present(self, report):
        assert "AzureBench reproduction report" in report
        assert "Paper-vs-measured audit" in report
        assert "Scalability analysis" in report

    def test_every_figure_present(self, report):
        for fig_id in ("Table I", "Fig 4a", "Fig 4b", "Fig 5a", "Fig 5b",
                       "Fig 6a", "Fig 6b", "Fig 6c", "Fig 7a", "Fig 7b",
                       "Fig 7c", "Fig 8a", "Fig 8b", "Fig 8c", "Fig 8d",
                       "Fig 9"):
            assert fig_id in report, fig_id

    def test_charts_included_by_default(self, report):
        # ASCII charts draw axes with +---- rules.
        assert report.count("+" + "-" * 20) > 3

    def test_charts_can_be_disabled(self):
        text = generate_report(FigureRunner(TINY), charts=False)
        assert "Fig 4a" in text
        assert text.count("+" + "-" * 20) == 0

    def test_audit_verdicts_present(self, report):
        assert "blob_max_download_mbps" in report
        assert "checks hold" in report

    def test_analysis_lines(self, report):
        assert "page upload" in report and "USL alpha=" in report
        assert "table update" in report and "knee at" in report

    def test_scale_named(self, report):
        assert "report-tiny" in report
