"""Run checkpoint/resume: interrupted figure campaigns finish identically.

The determinism contract makes this checkable to the byte: a campaign
killed between sweep cells and resumed from its checkpoint must emit
exactly the CSVs an uninterrupted campaign would have.
"""

import os

import pytest

from repro.bench.figures import BenchScale, FigureRunner
from repro.chaos import RunCheckpoint
from repro.storage import KB

SCALE = BenchScale(
    name="ckpt", worker_counts=(1, 2), blob_total_chunks=4, blob_repeats=1,
    queue_total_messages=16, queue_message_sizes=(4 * KB,),
    shared_total_transactions=16, shared_think_times=(1.0,),
    table_entity_count=8, table_entity_sizes=(4 * KB,), seed=2012)


def fig6_csv(runner: FigureRunner) -> str:
    return "\n\n".join(fd.to_csv() for fd in runner.figure6().values())


@pytest.fixture()
def baseline():
    return fig6_csv(FigureRunner(scale=SCALE))


def checkpoint_at(tmp_path) -> str:
    return os.path.join(str(tmp_path), "campaign.json")


def test_cells_persist_as_they_complete(tmp_path, baseline):
    path = checkpoint_at(tmp_path)
    runner = FigureRunner(scale=SCALE)
    runner.checkpoint = RunCheckpoint(path, runner.campaign_key())
    fig6_csv(runner)
    stored = RunCheckpoint(path, runner.campaign_key())
    assert stored.labels() == ["fig6@1", "fig6@2"]
    assert "fig6@1" in stored
    assert stored.get("nope") is None


def test_full_resume_reproduces_identical_csv(tmp_path, baseline):
    path = checkpoint_at(tmp_path)
    first = FigureRunner(scale=SCALE)
    first.checkpoint = RunCheckpoint(path, first.campaign_key())
    fig6_csv(first)
    # A fresh runner (fresh process, conceptually) resumes purely from
    # disk: every cell restores, no benchmark re-runs, same bytes out.
    resumed = FigureRunner(scale=SCALE)
    resumed.checkpoint = RunCheckpoint(path, resumed.campaign_key())
    assert fig6_csv(resumed) == baseline


def test_interrupted_campaign_resumes_mid_sweep(tmp_path, baseline):
    """Kill after the first cell: resume re-runs only the missing cell."""
    path = checkpoint_at(tmp_path)
    runner = FigureRunner(scale=SCALE)
    key = runner.campaign_key()
    runner.checkpoint = RunCheckpoint(path, key)
    fig6_csv(runner)
    # Simulate the interruption by dropping the second cell from disk.
    store = RunCheckpoint(path, key)
    store._runs.pop("fig6@2")
    store._flush()
    resumed = FigureRunner(scale=SCALE)
    resumed.checkpoint = RunCheckpoint(path, key)
    assert fig6_csv(resumed) == baseline
    assert RunCheckpoint(path, key).labels() == ["fig6@1", "fig6@2"]


def test_checkpoint_refuses_foreign_campaigns(tmp_path):
    path = checkpoint_at(tmp_path)
    runner = FigureRunner(scale=SCALE)
    RunCheckpoint(path, runner.campaign_key()).put(
        "fig6@1", runner.queue_separate_sweep()[1])
    with pytest.raises(ValueError, match="campaign"):
        RunCheckpoint(path, "someone-elses-key")


def test_campaign_key_tracks_scale_and_backend():
    a = FigureRunner(scale=SCALE)
    b = FigureRunner(scale=SCALE)
    assert a.campaign_key() == b.campaign_key()
    other_scale = BenchScale(**{**SCALE.__dict__, "seed": 2013})
    assert FigureRunner(scale=other_scale).campaign_key() != a.campaign_key()
    assert FigureRunner(scale=SCALE,
                        backend="emulator").campaign_key() != a.campaign_key()
    # Tracing never changes the numbers, so it shares the campaign.
    assert FigureRunner(scale=SCALE, trace=True).campaign_key() == \
        a.campaign_key()


def test_restored_results_carry_no_tracer(tmp_path):
    path = checkpoint_at(tmp_path)
    runner = FigureRunner(scale=SCALE, trace=True)
    key = runner.campaign_key()
    runner.checkpoint = RunCheckpoint(path, key)
    runner.queue_separate_sweep()
    restored = RunCheckpoint(path, key).get("fig6@1")
    assert restored is not None
    assert restored.trace is None
    assert restored.workers == 1
