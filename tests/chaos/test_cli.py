"""Exit-code contract of the chaos/faults CLI surface.

The runs themselves are covered by the runner tests; here the harness
functions are monkeypatched with canned outcomes so the wiring — exit
codes, JSON emission, ``--out`` files, stderr summaries — is tested in
milliseconds.  The contract (documented in docs/cli.md): 0 success,
1 completed-but-failed-checks, 2 bad usage.
"""

import json

import repro.chaos as chaos
import repro.faults.profiles as profiles
from repro.chaos.invariants import Violation
from repro.chaos.verdict import ChaosVerdict
from repro.cli import build_parser, main


def passing_verdict(workload="fig6"):
    return ChaosVerdict(workload=workload, profile="queue-storm", seed=7,
                        runs=[f"{workload}:queue_sep@2"],
                        counts={"runs": 1, "faults_injected": 3})


def failing_verdict(workload="fig6"):
    verdict = passing_verdict(workload)
    verdict.violations.append(
        Violation("queue-conservation", "1 acked put(s) vanished"))
    return verdict


class TestChaosParser:
    def test_defaults(self):
        args = build_parser().parse_args(["chaos", "fig6"])
        assert args.figure == "fig6" and args.profile == "none"
        assert args.seed == 0 and not args.self_test_splice

    def test_flags(self):
        args = build_parser().parse_args(
            ["chaos", "taskpool", "--profile", "queue-storm", "--seed", "7",
             "--crashes", "3", "--retry-budget", "9", "--out", "v.json"])
        assert args.crashes == 3 and args.retry_budget == 9
        assert args.out == "v.json"


class TestChaosExitCodes:
    def test_pass_exits_zero_and_emits_json(self, monkeypatch, capsys):
        monkeypatch.setattr(chaos, "run_chaos",
                            lambda *a, **k: passing_verdict())
        assert main(["chaos", "fig6", "--profile", "queue-storm",
                     "--seed", "7"]) == 0
        captured = capsys.readouterr()
        data = json.loads(captured.out)
        assert data["passed"] is True and data["workload"] == "fig6"
        assert "PASS" in captured.err

    def test_violation_exits_one(self, monkeypatch, capsys):
        monkeypatch.setattr(chaos, "run_chaos",
                            lambda *a, **k: failing_verdict())
        assert main(["chaos", "6"]) == 1
        captured = capsys.readouterr()
        assert json.loads(captured.out)["passed"] is False
        assert "FAIL" in captured.err

    def test_bare_number_maps_to_figure(self, monkeypatch):
        seen = {}

        def fake(name, profile, seed, **kwargs):
            seen["name"] = name
            return passing_verdict(name)

        monkeypatch.setattr(chaos, "run_chaos", fake)
        assert main(["chaos", "8"]) == 0
        assert seen["name"] == "fig8"

    def test_taskpool_routes_to_crash_harness(self, monkeypatch):
        seen = {}

        def fake(profile, seed, **kwargs):
            seen.update(kwargs, profile=profile)
            return passing_verdict("taskpool")

        monkeypatch.setattr(chaos, "run_chaos_taskpool", fake)
        assert main(["chaos", "taskpool", "--crashes", "3"]) == 0
        assert seen["profile"] == "none" and seen["crashes"] == 3

    def test_unknown_figure_exits_two(self, monkeypatch, capsys):
        def fake(name, *a, **k):
            raise KeyError(f"unknown figure {name!r}")

        monkeypatch.setattr(chaos, "run_chaos", fake)
        assert main(["chaos", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_out_writes_the_verdict_file(self, monkeypatch, tmp_path,
                                         capsys):
        monkeypatch.setattr(chaos, "run_chaos",
                            lambda *a, **k: passing_verdict())
        out = str(tmp_path / "nested" / "verdict.json")
        assert main(["chaos", "fig6", "--out", out]) == 0
        with open(out) as f:
            assert json.loads(f.read())["profile"] == "queue-storm"

    def test_splice_flag_reaches_the_harness(self, monkeypatch):
        seen = {}

        def fake(name, profile, seed, **kwargs):
            seen.update(kwargs)
            return failing_verdict()

        monkeypatch.setattr(chaos, "run_chaos", fake)
        assert main(["chaos", "fig6", "--self-test-splice"]) == 1
        assert seen["splice"] is True


class TestFaultsExitCode:
    def canned(self, completed):
        return {
            "profile": "lossy-queue", "policy": "exponential",
            "completed": completed, "results_collected": 4 if completed
            else 1, "tasks": 4, "completion_time": 12.0, "attempts": 9,
            "retries": 5, "giveups": 0, "retry_amplification": 2.25,
            "total_backoff": 3.0, "worker_restarts": 0,
            "availability": {"queue": 0.9}, "faults_injected": {"loss": 2},
            "trace": [],
        }

    def test_incomplete_run_exits_one(self, monkeypatch, capsys):
        monkeypatch.setattr(profiles, "run_faulted_taskpool",
                            lambda *a, **k: self.canned(False))
        assert main(["faults", "run", "lossy-queue"]) == 1
        assert "did not run to completion" in capsys.readouterr().err

    def test_completed_run_exits_zero(self, monkeypatch, capsys):
        monkeypatch.setattr(profiles, "run_faulted_taskpool",
                            lambda *a, **k: self.canned(True))
        assert main(["faults", "run", "lossy-queue"]) == 0
        assert "completed         True" in capsys.readouterr().out
