"""The dn-failover chaos campaign: workload builder + end-to-end smoke.

The end-to-end run is deliberately small (a couple of wall seconds) but
real: a 3-DN R=2 cluster, open-loop load, a scheduled mid-run kill, the
ledger verification, and the determinism contract — two runs with the
same seed must emit byte-identical verdict JSON.
"""

import json

import pytest

from repro.chaos import build_dn_workload, run_dn_failover
from repro.chaos.dnfailover import workload_digest
from repro.faults import FaultKind
from repro.faults.profiles import get_profile


class TestWorkloadBuilder:
    def test_same_seed_same_schedule(self):
        first = build_dn_workload(7, rate=6.0, duration=20.0)
        again = build_dn_workload(7, rate=6.0, duration=20.0)
        assert first == again
        assert workload_digest(first) == workload_digest(again)

    def test_different_seeds_diverge(self):
        assert (workload_digest(build_dn_workload(1))
                != workload_digest(build_dn_workload(2)))

    def test_schedule_shape(self):
        ops = build_dn_workload(3, rate=10.0, duration=15.0)
        assert ops, "builder produced an empty schedule"
        times = [op.at for op in ops]
        assert times == sorted(times)
        assert all(0.0 <= at < 15.0 for at in times)
        kinds = {op.kind for op in ops}
        assert kinds <= {"blob.upload", "blob.download", "queue.put",
                         "table.insert", "table.get"}
        assert "blob.upload" in kinds and "queue.put" in kinds

    def test_profile_schedules_the_kill(self):
        profile = get_profile("dn-failover")
        kinds = [spec.kind for spec in profile.specs]
        assert FaultKind.DN_CRASH in kinds
        crash = profile.specs[kinds.index(FaultKind.DN_CRASH)]
        assert crash.node is not None and crash.node >= 0


class TestCampaign:
    def test_profile_node_must_fit_the_cluster(self):
        # dn-failover kills node 1; a 1-DN cluster cannot host it.
        with pytest.raises(ValueError):
            run_dn_failover("dn-failover", 0, dn=1, replicas=1)

    def test_zero_loss_and_deterministic_verdict(self, tmp_path):
        kwargs = dict(dn=3, replicas=2, rate=5.0, duration=20.0,
                      time_scale=0.12, window_s=2.0)
        csv_path = tmp_path / "windows.csv"
        first = run_dn_failover("dn-failover", 3,
                                windows_csv=str(csv_path), **kwargs)
        assert first.passed, [v.to_dict() for v in first.violations]
        assert first.counts["dn_crashes"] == 1
        assert first.counts["data_nodes"] == 3
        assert first.counts["replicas"] == 2
        assert first.counts["scheduled_ops"] > 0

        lines = csv_path.read_text().strip().splitlines()
        assert lines[0].startswith("window_start_s,")
        assert len(lines) > 1

        again = run_dn_failover("dn-failover", 3, **kwargs)
        assert first.to_json() == again.to_json()
        doc = json.loads(first.to_json())
        assert doc["passed"] is True
        assert doc["schedules"][1]["op_digest"] == workload_digest(
            build_dn_workload(3, rate=5.0, duration=20.0))
