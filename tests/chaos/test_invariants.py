"""Checker unit tests over synthetic histories.

Each test builds a small hand-written :class:`History` and asserts the
checker both accepts conforming runs and flags the specific anomaly it
exists to catch.
"""

import hashlib

from repro.chaos.history import History
from repro.chaos.invariants import (
    Violation,
    check_analytics_conservation,
    check_blob_integrity,
    check_history,
    check_queue_conservation,
    check_table_conformance,
    check_termination,
)


def digest(raw: bytes) -> str:
    return hashlib.sha256(raw).hexdigest()[:16]


def rec(h, service, op, target, request=None, result=None, error=""):
    return h.record(h._seq * 0.5, service, op, target,
                    request or {}, result or {}, error)


# -- queue conservation --------------------------------------------------------

def queue_history():
    h = History(default_visibility=30.0)
    rec(h, "queue", "create_queue", "q")
    rec(h, "queue", "put_message", "q",
        {"digest": "d", "size": 4}, {"message_id": "m1"})
    rec(h, "queue", "get_message", "q", {"visibility_timeout": 30.0},
        {"messages": ({"message_id": "m1", "dequeue_count": 1,
                       "pop_receipt": "r1", "digest": "d", "size": 4},)})
    rec(h, "queue", "delete_message", "q",
        {"message_id": "m1", "pop_receipt": "r1"})
    return h


def test_conforming_queue_history_passes():
    assert check_queue_conservation(queue_history()) == []


def test_splice_drop_flags_conservation():
    h = queue_history()
    msg_id = h.splice_drop()
    assert msg_id == "m1"
    violations = check_queue_conservation(h)
    assert any("vanished" in v.message for v in violations)


def test_splice_requires_a_successful_put():
    import pytest
    with pytest.raises(ValueError, match="no successful put_message"):
        History().splice_drop()


def test_redelivery_after_visibility_expiry_is_explained():
    h = History(default_visibility=30.0)
    rec(h, "queue", "put_message", "q", {}, {"message_id": "m1"})
    msg = {"message_id": "m1", "dequeue_count": 1, "pop_receipt": "r1",
           "digest": "d", "size": 4}
    h.record(1.0, "queue", "get_message", "q",
             {"visibility_timeout": 5.0}, {"messages": (msg,)})
    h.record(7.0, "queue", "get_message", "q",  # 1.0 + 5.0 < 7.0: expired
             {"visibility_timeout": 5.0},
             {"messages": (dict(msg, dequeue_count=2, pop_receipt="r2"),)})
    h.record(7.5, "queue", "delete_message", "q",
             {"message_id": "m1", "pop_receipt": "r2"}, {})
    assert check_queue_conservation(h) == []


def test_redelivery_inside_visibility_window_is_a_violation():
    h = History(default_visibility=30.0)
    rec(h, "queue", "put_message", "q", {}, {"message_id": "m1"})
    msg = {"message_id": "m1", "dequeue_count": 1, "pop_receipt": "r1",
           "digest": "d", "size": 4}
    h.record(1.0, "queue", "get_message", "q",
             {"visibility_timeout": 60.0}, {"messages": (msg,)})
    h.record(2.0, "queue", "get_message", "q",  # still invisible: a bug
             {"visibility_timeout": 60.0},
             {"messages": (dict(msg, dequeue_count=2, pop_receipt="r2"),)})
    h.record(2.5, "queue", "delete_message", "q",
             {"message_id": "m1", "pop_receipt": "r2"}, {})
    violations = check_queue_conservation(h)
    assert any("unexplained duplicate" in v.message for v in violations)


def test_injected_duplicate_grant_explains_redelivery():
    h = History(default_visibility=30.0)
    rec(h, "queue", "put_message", "q", {}, {"message_id": "m1"})
    msg = {"message_id": "m1", "dequeue_count": 1, "pop_receipt": "r1",
           "digest": "d", "size": 4}
    # The duplicate-delivery fault fires inside the first get: the grant
    # rides on that record's faults tuple.
    h._pending_faults.append("duplicate_delivery")
    h.record(1.0, "queue", "get_message", "q",
             {"visibility_timeout": 60.0}, {"messages": (msg,)})
    h.record(2.0, "queue", "get_message", "q",
             {"visibility_timeout": 60.0},
             {"messages": (dict(msg, dequeue_count=2, pop_receipt="r1"),)})
    h.record(2.5, "queue", "delete_message", "q",
             {"message_id": "m1", "pop_receipt": "r1"}, {})
    assert check_queue_conservation(h) == []


def test_injected_message_loss_is_not_a_violation():
    h = History()
    h._pending_faults.append("message_loss")
    rec(h, "queue", "put_message", "q", {}, {"message_id": None})
    assert check_queue_conservation(h) == []


def test_unattributed_message_loss_is_a_violation():
    h = History()
    rec(h, "queue", "put_message", "q", {}, {"message_id": None})
    violations = check_queue_conservation(h)
    assert any("without an injected" in v.message for v in violations)


# -- blob integrity ------------------------------------------------------------

def test_block_blob_roundtrip_passes_and_corruption_fails():
    data = b"block-payload"
    h = History()
    rec(h, "blob", "put_block", "c/b",
        {"block_id": "0", "digest": digest(data), "size": len(data),
         "bytes": data})
    rec(h, "blob", "put_block_list", "c/b",
        {"block_ids": ("0",), "merge": False})
    rec(h, "blob", "get_block", "c/b", {"index": 0},
        {"digest": digest(data), "size": len(data)})
    rec(h, "blob", "download_block_blob", "c/b", {},
        {"digest": digest(data), "size": len(data)})
    assert check_blob_integrity(h) == []

    bad = History()
    rec(bad, "blob", "put_block", "c/b",
        {"block_id": "0", "digest": digest(data), "size": len(data),
         "bytes": data})
    rec(bad, "blob", "put_block_list", "c/b",
        {"block_ids": ("0",), "merge": False})
    rec(bad, "blob", "get_block", "c/b", {"index": 0},
        {"digest": digest(b"corrupted"), "size": len(data)})
    violations = check_blob_integrity(bad)
    assert any("differ" in v.message for v in violations)


def test_page_blob_reassembly_checked_against_written_pages():
    h = History()
    rec(h, "blob", "create_page_blob", "c/p", {"max_size": 16})
    page = b"A" * 8
    rec(h, "blob", "put_page", "c/p",
        {"offset": 0, "digest": digest(page), "size": 8, "bytes": page})
    whole = page + bytes(8)  # unwritten tail reads back as zeros
    rec(h, "blob", "download_page_blob", "c/p", {},
        {"digest": digest(whole), "size": 16})
    rec(h, "blob", "get_page", "c/p", {"offset": 0, "length": 8},
        {"digest": digest(page), "size": 8})
    assert check_blob_integrity(h) == []

    rec(h, "blob", "get_page", "c/p", {"offset": 0, "length": 8},
        {"digest": digest(b"B" * 8), "size": 8})
    assert any("differs" in v.message for v in check_blob_integrity(h))


def test_read_of_uncommitted_block_index_flagged():
    h = History()
    rec(h, "blob", "get_block", "c/b", {"index": 3},
        {"digest": "00", "size": 1})
    # No writes at all: nothing staged, the blob is untracked -> skipped.
    assert check_blob_integrity(h) == []
    rec(h, "blob", "put_block", "c/b",
        {"block_id": "0", "digest": digest(b"x"), "size": 1, "bytes": b"x"})
    rec(h, "blob", "put_block_list", "c/b",
        {"block_ids": ("0",), "merge": False})
    rec(h, "blob", "get_block", "c/b", {"index": 3},
        {"digest": "00", "size": 1})
    assert any("uncommitted" in v.message for v in check_blob_integrity(h))


def test_oversized_writes_degrade_to_untracked():
    h = History()
    rec(h, "blob", "put_block", "c/b",
        {"block_id": "0", "digest": "dd", "size": 10 ** 9})  # no "bytes"
    rec(h, "blob", "put_block_list", "c/b",
        {"block_ids": ("0",), "merge": False})
    rec(h, "blob", "get_block", "c/b", {"index": 0},
        {"digest": "whatever", "size": 10 ** 9})
    assert check_blob_integrity(h) == []


# -- table conformance ---------------------------------------------------------

def test_conditional_write_exclusivity():
    h = History()
    rec(h, "table", "insert", "T",
        {"partition_key": "p", "row_key": "r"}, {"etag": "1"})
    rec(h, "table", "update", "T",
        {"partition_key": "p", "row_key": "r", "etag": "1"}, {"etag": "2"})
    h.final_entity_counts["T"] = 1
    assert check_table_conformance(h) == []
    # A second conditional win against the same consumed etag: violation.
    rec(h, "table", "update", "T",
        {"partition_key": "p", "row_key": "r", "etag": "1"}, {"etag": "3"})
    violations = check_table_conformance(h)
    assert any("optimistic concurrency" in v.message for v in violations)


def test_wildcard_updates_never_conflict():
    h = History()
    rec(h, "table", "insert", "T",
        {"partition_key": "p", "row_key": "r"}, {"etag": "1"})
    for _ in range(3):
        rec(h, "table", "update", "T",
            {"partition_key": "p", "row_key": "r", "etag": "*"}, {})
    h.final_entity_counts["T"] = 1
    assert check_table_conformance(h) == []


def test_entity_ledger_balances():
    h = History()
    for i in range(3):
        rec(h, "table", "insert", "T",
            {"partition_key": "p", "row_key": str(i)}, {"etag": str(i)})
    rec(h, "table", "delete", "T",
        {"partition_key": "p", "row_key": "0", "etag": "*"})
    h.final_entity_counts["T"] = 2
    assert check_table_conformance(h) == []
    h.final_entity_counts["T"] = 1  # one entity evaporated
    violations = check_table_conformance(h)
    assert any("entity ledger" in v.message for v in violations)


def test_upserts_and_dropped_tables_skip_the_ledger():
    h = History()
    rec(h, "table", "insert", "T", {"partition_key": "p", "row_key": "r"},
        {"etag": "1"})
    rec(h, "table", "insert_or_replace", "T",
        {"partition_key": "p", "row_key": "r2"}, {})
    h.final_entity_counts["T"] = 0  # would fail were the ledger enforced
    assert check_table_conformance(h) == []


# -- analytics + termination ---------------------------------------------------

class FakeSpan:
    def __init__(self, service, operation, nbytes, *, status="ok",
                 error_code="", retries=0):
        self.service = service
        self.operation = operation
        self.nbytes = nbytes
        self.status = status
        self.error_code = error_code
        self.retries = retries


class FakeTotals:
    def __init__(self, requests, ingress, egress):
        self.total_requests = requests
        self.total_ingress = ingress
        self.total_egress = egress


class FakeMetrics:
    def __init__(self, totals):
        self._totals = totals

    def services(self):
        return list(self._totals)

    def service_totals(self, service):
        return self._totals.get(service, FakeTotals(0, 0, 0))


def test_analytics_conservation_balances_and_detects_drift():
    spans = [FakeSpan("queue", "put_message", 100),
             FakeSpan("queue", "get_message", 40)]
    good = FakeMetrics({"queue": FakeTotals(2, 100, 40)})
    assert check_analytics_conservation(spans, good) == []
    drifted = FakeMetrics({"queue": FakeTotals(2, 90, 40)})
    violations = check_analytics_conservation(spans, drifted)
    assert any("ingress" in v.message for v in violations)


def test_interrupted_spans_are_not_a_conservation_leak():
    spans = [FakeSpan("queue", "put_message", 100),
             FakeSpan("queue", "put_message", 50, status="error",
                      error_code="")]  # crash mid-flight: no $logs line
    metrics = FakeMetrics({"queue": FakeTotals(1, 100, 0)})
    assert check_analytics_conservation(spans, metrics) == []


def test_protocol_errors_still_count():
    spans = [FakeSpan("queue", "put_message", 100, status="error",
                      error_code="ServerBusy")]
    metrics = FakeMetrics({"queue": FakeTotals(0, 0, 0)})
    violations = check_analytics_conservation(spans, metrics)
    assert any("requests" in v.message for v in violations)


def test_termination_checks_completion_and_retry_budget():
    assert check_termination([], retry_budget=4, completed=True) == []
    v = check_termination([], retry_budget=4, completed=False)
    assert any("did not run to completion" in x.message for x in v)
    spans = [FakeSpan("queue", "put_message", 0, retries=9)]
    v = check_termination(spans, retry_budget=4)
    assert any("retries" in x.message for x in v)


def test_check_history_bundles_available_evidence():
    h = queue_history()
    assert check_history(h) == []
    h.splice_drop()
    violations = check_history(h)
    assert violations and all(isinstance(v, Violation) for v in violations)
    assert {"checker": violations[0].checker,
            "message": violations[0].message} == violations[0].to_dict()
