"""Unit and property tests for the queue-conservation ledger algebra.

The hypothesis properties pin the three guarantees the chaos harness
leans on: the ledger is a commutative monoid under ``merge`` (so
per-worker sub-ledgers fold in any order), conforming histories never
produce false violations, and a spliced synthetic drop is *always*
detected.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.ledger import QueueLedger, ledger_from_events


# -- history generators --------------------------------------------------------

@st.composite
def conforming_events(draw, min_messages=0):
    """Ledger events of a loss-free run: every lifecycle is explained."""
    queues = [f"q{i}" for i in range(draw(st.integers(1, 3)))]
    events = []
    for m in range(draw(st.integers(min_messages, 10))):
        queue = draw(st.sampled_from(queues))
        msg_id = f"m{m}"
        events.append(("put", queue, msg_id))
        deliveries = draw(st.integers(0, 3))
        for d in range(deliveries):
            explained = ("" if d == 0
                         else draw(st.sampled_from(["dup", "timeout"])))
            events.append(("deliver", queue, msg_id, d + 1, explained))
        if deliveries and draw(st.booleans()):
            events.append(("delete", queue, msg_id, True))
            if draw(st.booleans()):
                # A stale receipt after redelivery: tolerated, not a law.
                events.append(("delete", queue, msg_id, False))
        else:
            events.append(("remaining", queue, msg_id))
    for _ in range(draw(st.integers(0, 2))):
        # Injected (attributed) losses are expected, not violations.
        events.append(("put_lost", draw(st.sampled_from(queues)), True))
    if draw(st.booleans()):
        # A purged queue absorbs its leftovers.
        events.append(("put", "purged-q", "px"))
        events.append(("purge", "purged-q"))
    return events


# -- the monoid ----------------------------------------------------------------

@given(conforming_events(), conforming_events(), conforming_events())
@settings(max_examples=60)
def test_merge_is_an_associative_commutative_monoid(ea, eb, ec):
    a, b, c = (ledger_from_events(e) for e in (ea, eb, ec))
    assert a.merge(QueueLedger.empty()) == a
    assert QueueLedger.empty().merge(a) == a
    assert a.merge(b) == b.merge(a)
    assert a.merge(b).merge(c) == a.merge(b.merge(c))


@given(conforming_events(), st.integers(0, 2 ** 32))
@settings(max_examples=60)
def test_folding_partitions_equals_folding_whole(events, seed):
    """Any partition of the event stream merges back to the same ledger."""
    import random

    rng = random.Random(seed)
    shuffled = list(events)
    # Split into worker-sized chunks (order inside chunks preserved).
    chunks, i = [], 0
    while i < len(shuffled):
        size = rng.randint(1, 4)
        chunks.append(shuffled[i:i + size])
        i += size
    rng.shuffle(chunks)
    folded = QueueLedger.empty()
    for chunk in chunks:
        folded = folded.merge(ledger_from_events(chunk))
    assert folded == ledger_from_events(events)


def test_observe_is_single_event_fold():
    ledger = QueueLedger.empty().observe(("put", "q", "m1"))
    ledger = ledger.observe(("deliver", "q", "m1", 1, ""))
    ledger = ledger.observe(("delete", "q", "m1", True))
    assert ledger == ledger_from_events([
        ("put", "q", "m1"), ("deliver", "q", "m1", 1, ""),
        ("delete", "q", "m1", True)])


# -- no false positives --------------------------------------------------------

@given(conforming_events())
@settings(max_examples=100)
def test_conforming_histories_have_no_violations(events):
    assert ledger_from_events(events).violations() == []


# -- guaranteed detection ------------------------------------------------------

@given(conforming_events(min_messages=1), st.randoms())
@settings(max_examples=100)
def test_spliced_drop_is_always_detected(events, rng):
    """Erase one message's landing: the checker must flag the splice."""
    victims = [e[2] for e in events if e[0] == "put" and e[1] != "purged-q"]
    victim = rng.choice(victims)
    spliced = [e for e in events
               if not (len(e) > 2 and e[2] == victim and e[0] != "put")]
    violations = ledger_from_events(spliced).violations()
    assert any("vanished" in v for v in violations), violations


def test_silent_loss_detected():
    events = [("put_lost", "q", False)]
    violations = ledger_from_events(events).violations()
    assert len(violations) == 1 and "without an injected" in violations[0]


def test_injected_loss_is_not_a_violation():
    assert ledger_from_events([("put_lost", "q", True)]).violations() == []


def test_phantom_delivery_detected():
    events = [("deliver", "q", "ghost", 1, "")]
    assert any("phantom" in v
               for v in ledger_from_events(events).violations())


def test_unexplained_duplicate_detected():
    events = [("put", "q", "m"), ("deliver", "q", "m", 1, ""),
              ("deliver", "q", "m", 2, ""), ("delete", "q", "m", True)]
    assert any("unexplained duplicate" in v
               for v in ledger_from_events(events).violations())


def test_explained_duplicate_conforms():
    events = [("put", "q", "m"), ("deliver", "q", "m", 1, ""),
              ("deliver", "q", "m", 2, "timeout"),
              ("delete", "q", "m", True)]
    assert ledger_from_events(events).violations() == []


def test_delete_without_delivery_detected():
    events = [("put", "q", "m"), ("delete", "q", "m", True)]
    assert any("delete without delivery" in v
               for v in ledger_from_events(events).violations())


def test_phantom_remainder_detected():
    events = [("remaining", "q", "ghost")]
    assert any("phantom remainder" in v
               for v in ledger_from_events(events).violations())


def test_purge_covers_undeleted_messages():
    events = [("put", "q", "m"), ("purge", "q")]
    assert ledger_from_events(events).violations() == []


def test_unknown_event_kind_raises():
    with pytest.raises(ValueError, match="unknown ledger event"):
        ledger_from_events([("teleport", "q", "m")])


def test_acked_puts_counts_landed_and_lost():
    ledger = ledger_from_events([
        ("put", "q", "a"), ("put", "q", "b"),
        ("put_lost", "q", True), ("put_lost", "q", False)])
    assert ledger.acked_puts("q") == 4
    assert ledger.queues() == ["q"]
