"""A crash mid-campaign still leaves a verdict behind.

When a chaos run dies before its checks complete, the harness raises
:class:`ChaosRunError` carrying the partial :class:`ChaosVerdict`
(schedule, counts so far, and a harness violation naming the crash) —
so a CI failure is diagnosable from the artifact instead of a bare
traceback.
"""

import json

import pytest

from repro.chaos import ChaosRunError, run_chaos_taskpool
from repro.chaos.history import History
from repro.geo import run_geo_chaos


@pytest.fixture
def snapshot_crash(monkeypatch):
    def boom(self, state):
        raise RuntimeError("disk full")

    monkeypatch.setattr(History, "snapshot_final_state", boom)


def assert_partial(verdict, workload):
    assert verdict.workload == workload
    assert not verdict.passed
    assert any("run crashed before checks completed" in v.message
               and "disk full" in v.message for v in verdict.violations)
    assert verdict.counts.get("audited_ops", 0) > 0
    # The partial verdict must still serialize for the --out artifact.
    assert json.loads(verdict.to_json())["passed"] is False


def test_geo_crash_carries_partial_verdict(snapshot_crash):
    with pytest.raises(ChaosRunError) as exc:
        run_geo_chaos("region-outage", seed=7)
    assert_partial(exc.value.verdict, "geo")
    assert exc.value.verdict.schedules  # the schedule survived the crash


def test_taskpool_crash_carries_partial_verdict(snapshot_crash):
    with pytest.raises(ChaosRunError) as exc:
        run_chaos_taskpool("none", seed=7, crashes=0, tasks=4, workers=2)
    assert_partial(exc.value.verdict, "taskpool")


def test_chaos_run_error_is_a_runtime_error():
    from repro.chaos.verdict import ChaosVerdict

    verdict = ChaosVerdict(workload="geo", profile="none", seed=0)
    err = ChaosRunError("boom", verdict)
    assert isinstance(err, RuntimeError)
    assert err.verdict is verdict
