"""End-to-end chaos conformance runs, and the chaos-off golden pin.

The scale here is deliberately tiny: conformance is about code paths,
not throughput, and the full profile matrix must stay CI-friendly.
"""

import pytest

from repro.bench.figures import BenchScale
from repro.chaos import chaos_workloads, run_chaos
from repro.chaos.schedule import build_schedule
from repro.storage import KB

from tests.observability.test_golden_trace import (
    GOLDEN_DIGEST,
    MINI,
    run_mini,
)

# Single worker count, but enough operations that the run outlasts the
# schedule's jittered fault-window starts (up to ~5 s in).
TINY = BenchScale(
    name="chaos-tiny", worker_counts=(2,), blob_total_chunks=4,
    blob_repeats=1, queue_total_messages=96, queue_message_sizes=(4 * KB,),
    shared_total_transactions=48, shared_think_times=(1.0,),
    table_entity_count=48, table_entity_sizes=(4 * KB,), seed=2012)


def test_workload_map_covers_every_figure():
    workloads = chaos_workloads()
    assert set(workloads) == {"fig4", "fig5", "fig6", "fig7", "fig8", "fig9"}
    assert workloads["fig9"] == ("queue_sep", "table")


def test_unknown_figure_raises():
    with pytest.raises(KeyError, match="unknown figure"):
        run_chaos("fig99", "none", 0, scale=TINY)


def test_fig6_under_queue_storm_conforms():
    verdict = run_chaos("fig6", "queue-storm", 7, scale=TINY)
    assert verdict.passed, [str(v) for v in verdict.violations]
    assert verdict.counts["runs"] == 1
    assert verdict.counts["audited_ops"] > 0
    # Every audited client op produced exactly one span (same pipeline).
    assert verdict.counts["spans"] == verdict.counts["audited_ops"]
    assert verdict.schedules and verdict.schedules[0]["profile"] == \
        "queue-storm"


def test_fig6_chaos_run_actually_injects_faults():
    verdict = run_chaos("fig6", "queue-storm", 7, scale=TINY)
    assert verdict.counts["faults_injected"] > 0


def test_splice_self_test_flips_the_verdict():
    verdict = run_chaos("fig6", "queue-storm", 7, scale=TINY, splice=True)
    assert verdict.counts["spliced"] == 1
    assert not verdict.passed
    assert any("vanished" in v.message for v in verdict.violations)
    assert all("spliced" in v.message for v in verdict.violations)


def test_fig8_under_table_storm_conforms():
    verdict = run_chaos("fig8", "table-storm", 11, scale=TINY)
    assert verdict.passed, [str(v) for v in verdict.violations]
    assert verdict.counts["faults_injected"] > 0


def test_fig4_blob_integrity_under_flaky_500s():
    verdict = run_chaos("fig4", "flaky-500s", 3, scale=TINY)
    assert verdict.passed, [str(v) for v in verdict.violations]


def test_chaos_verdict_serializes():
    import json

    verdict = run_chaos("fig6", "none", 0, scale=TINY)
    data = json.loads(verdict.to_json())
    assert data["passed"] is True
    assert data["workload"] == "fig6"
    assert "PASS" in verdict.summary()


def test_same_seed_same_schedule():
    a = build_schedule("queue-storm", seed=7, crashes=2, workers=4)
    b = build_schedule("queue-storm", seed=7, crashes=2, workers=4)
    assert a == b
    c = build_schedule("queue-storm", seed=8, crashes=2, workers=4)
    assert a != c


# -- chaos disabled: bit-identical to the pre-existing golden stream ----------

def test_chaos_disabled_run_matches_golden_digest():
    """Seeded sim runs with no chaos instrumentation stay bit-identical."""
    assert run_mini(trace=True).trace.digest() == GOLDEN_DIGEST


def test_chaos_audit_is_a_pure_observer_of_the_golden_run():
    """Auditing + a 'none' fault plan must not move a single event.

    The audit only computes digests at op completion instants and the
    empty plan draws no randomness, so the span stream digest — which
    hashes every op's timing — must equal the pinned golden digest.
    """
    from repro.chaos import History, audit_account
    from repro.chaos.schedule import build_schedule
    from repro.core import RunConfig, run_bench, separate_queue_bench_body

    history = History()
    schedule = build_schedule("none", seed=0)

    def instrument(account):
        plan = schedule.plan()
        plan.subscribe(history.on_fault)
        account.cluster.set_fault_plan(plan)
        audit_account(account, history)

    config = RunConfig(workers=2, seed=2012, label="golden", trace=True,
                       instrument=instrument)
    result = run_bench(lambda: separate_queue_bench_body(MINI), config)
    assert result.trace.digest() == GOLDEN_DIGEST
    assert history.records, "the audit recorded nothing"
    assert history.fault_events == []
