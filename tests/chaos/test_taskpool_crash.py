"""Worker-role crash recovery under the chaos harness.

The paper's fault-tolerance claim, checked: a crashed worker's in-flight
task becomes visible again after the visibility timeout, is re-delivered
to a surviving (or recycled) worker, and the bag of tasks still
completes with every task accounted for exactly once in the results.
"""

from repro.chaos import run_chaos_taskpool


def test_crash_recovery_completes_every_task_exactly_once():
    verdict = run_chaos_taskpool("none", seed=21, crashes=3)
    assert verdict.passed, [str(v) for v in verdict.violations]
    counts = verdict.counts
    assert counts["worker_crashes"] == 3
    assert counts["worker_restarts"] == 3  # supervisor recycled each one
    assert counts["results_collected"] == counts["tasks"]
    # The crashed workers' in-flight tasks came back via the visibility
    # timeout: at least one re-delivery per crash-with-task-in-flight,
    # and the completion time shows the run waited out the timeout.
    assert counts["redeliveries"] >= 1
    assert counts["completion_time"] > 60.0


def test_crash_recovery_survives_faults_too():
    verdict = run_chaos_taskpool("throttle-storm", seed=5, crashes=2)
    assert verdict.passed, [str(v) for v in verdict.violations]
    assert verdict.counts["worker_crashes"] == 2
    assert verdict.counts["faults_injected"] > 0
    assert verdict.counts["results_collected"] == verdict.counts["tasks"]


def test_injected_duplicate_delivery_is_not_a_violation():
    """At-least-once: an injected dup runs a task twice, legitimately.

    The duplicate result may displace another task's result from the
    bounded drain, so exact multiset equality only applies to runs
    without duplicate-delivery faults (seed 21 injects one here).
    """
    verdict = run_chaos_taskpool("lossy-queue", seed=21, crashes=2)
    assert verdict.passed, [str(v) for v in verdict.violations]
    assert verdict.counts["faults_injected"] >= 1


def test_no_crashes_is_a_clean_control_run():
    verdict = run_chaos_taskpool("none", seed=2, crashes=0)
    assert verdict.passed
    assert verdict.counts["worker_crashes"] == 0
    assert verdict.counts["redeliveries"] == 0
    assert verdict.counts["completion_time"] < 60.0


def test_repeated_restarts_of_the_same_role():
    """Crash the pool hard enough that roles restart more than once."""
    verdict = run_chaos_taskpool("none", seed=17, crashes=5, workers=2,
                                 tasks=24)
    assert verdict.passed, [str(v) for v in verdict.violations]
    counts = verdict.counts
    assert counts["worker_crashes"] >= 2
    assert counts["worker_restarts"] == counts["worker_crashes"]
    assert counts["results_collected"] == counts["tasks"]


def test_verdict_records_schedule_and_events():
    verdict = run_chaos_taskpool("none", seed=21, crashes=2)
    schedule = verdict.schedules[0]
    assert len(schedule["crashes"]) == 2
    assert verdict.workload == "taskpool"
    data = verdict.to_dict()
    assert data["counts"]["worker_crashes"] == 2
