"""Unit tests for the storage cluster model: placement, costs, throttles."""

import pytest

from repro.cluster import (
    DEFAULT_CALIBRATION,
    FabricCalibration,
    OpDescriptor,
    OpKind,
    Service,
    ServerPool,
    StorageCluster,
)
from repro.simkit import Environment
from repro.storage import KB, LIMITS_2012, MB, ServerBusyError


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def cluster(env):
    # Disable jitter so occupancy assertions are exact.
    cal = FabricCalibration(jitter_sigma=0.0)
    return StorageCluster(env, calibration=cal, seed=1)


def run_op(env, cluster, op):
    p = env.process(cluster.execute(op))
    env.run()
    return env.now


class TestPlacement:
    def test_blob_partition_per_blob(self, cluster):
        s1 = cluster.server_for(OpDescriptor(Service.BLOB, OpKind.PUT_PAGE, "c/b1"))
        s2 = cluster.server_for(OpDescriptor(Service.BLOB, OpKind.PUT_PAGE, "c/b2"))
        s1b = cluster.server_for(OpDescriptor(Service.BLOB, OpKind.GET_PAGE, "c/b1"))
        assert s1 is not s2
        assert s1 is s1b

    def test_queue_partition_per_queue(self, cluster):
        servers = {cluster.server_for(
            OpDescriptor(Service.QUEUE, OpKind.PUT_MESSAGE, f"q-{i}"))
            for i in range(10)}
        assert len(servers) == 10

    def test_table_partitions_share_range_servers(self, cluster):
        servers = {id(cluster.server_for(
            OpDescriptor(Service.TABLE, OpKind.INSERT_ENTITY, f"worker-{i}")))
            for i in range(100)}
        assert len(servers) == DEFAULT_CALIBRATION.table_range_servers

    def test_server_pool_stable_assignment(self, env):
        pool = ServerPool(env, "x", 4, shards=4)
        a = pool.server_for("partition-a")
        assert pool.server_for("partition-a") is a

    def test_server_pool_validation(self, env):
        with pytest.raises(ValueError):
            ServerPool(env, "x", 4, shards=0)


class TestCostModel:
    def test_read_cost_ordering(self, cluster):
        """stream < sequential block < random page, per the calibration."""
        n = 1 * MB
        stream = cluster.server_occupancy(
            OpDescriptor(Service.BLOB, OpKind.DOWNLOAD_BLOB, "c/b", nbytes=n))
        seq = cluster.server_occupancy(
            OpDescriptor(Service.BLOB, OpKind.GET_BLOCK, "c/b", nbytes=n))
        rand = cluster.server_occupancy(
            OpDescriptor(Service.BLOB, OpKind.GET_PAGE, "c/b", nbytes=n))
        assert stream < seq < rand

    def test_write_cost_ordering(self, cluster):
        """page write < block write (staging overhead)."""
        n = 1 * MB
        page = cluster.server_occupancy(
            OpDescriptor(Service.BLOB, OpKind.PUT_PAGE, "c/b", nbytes=n))
        block = cluster.server_occupancy(
            OpDescriptor(Service.BLOB, OpKind.PUT_BLOCK, "c/b", nbytes=n))
        assert page < block
        # the paper's ~3x gap
        assert 2.0 < block / page < 4.0

    def test_saturation_throughputs_match_paper(self, cluster):
        """slots/occupancy at 1 MB chunks reproduces the paper's MB/s."""
        cal = cluster.cal
        slots = cal.blob_server_slots

        def agg(kind):
            occ = cluster.server_occupancy(
                OpDescriptor(Service.BLOB, kind, "c/b", nbytes=1 * MB))
            return slots * 1.0 / occ  # MB/s

        assert agg(OpKind.DOWNLOAD_BLOB) == pytest.approx(165, rel=0.03)
        assert agg(OpKind.GET_BLOCK) == pytest.approx(104, rel=0.03)
        assert agg(OpKind.GET_PAGE) == pytest.approx(71, rel=0.03)
        assert agg(OpKind.PUT_PAGE) == pytest.approx(60, rel=0.03)
        assert agg(OpKind.PUT_BLOCK) == pytest.approx(21, rel=0.03)

    def test_queue_op_ordering(self, cluster):
        n = 4 * KB
        put = cluster.server_occupancy(
            OpDescriptor(Service.QUEUE, OpKind.PUT_MESSAGE, "q", nbytes=n))
        peek = cluster.server_occupancy(
            OpDescriptor(Service.QUEUE, OpKind.PEEK_MESSAGE, "q", nbytes=n))
        get = cluster.server_occupancy(
            OpDescriptor(Service.QUEUE, OpKind.GET_MESSAGE, "q", nbytes=n))
        assert peek < put < get

    def test_queue_16k_anomaly(self, cluster):
        def get_cost(n):
            return cluster.server_occupancy(
                OpDescriptor(Service.QUEUE, OpKind.GET_MESSAGE, "q", nbytes=n))

        assert get_cost(16 * KB) > 1.5 * get_cost(8 * KB)
        assert get_cost(16 * KB) > 1.2 * get_cost(32 * KB)

    def test_anomaly_can_be_disabled(self, env):
        cal = FabricCalibration(jitter_sigma=0.0, queue_get_16k_anomaly_factor=1.0)
        c = StorageCluster(env, calibration=cal)

        def get_cost(n):
            return c.server_occupancy(
                OpDescriptor(Service.QUEUE, OpKind.GET_MESSAGE, "q", nbytes=n))

        assert get_cost(16 * KB) < get_cost(32 * KB)

    def test_table_op_ordering(self, cluster):
        n = 4 * KB
        costs = {
            kind: cluster.server_occupancy(
                OpDescriptor(Service.TABLE, kind, "p", nbytes=n))
            for kind in (OpKind.QUERY_ENTITY, OpKind.INSERT_ENTITY,
                         OpKind.UPDATE_ENTITY, OpKind.DELETE_ENTITY)
        }
        assert costs[OpKind.QUERY_ENTITY] == min(costs.values())
        assert costs[OpKind.UPDATE_ENTITY] == max(costs.values())

    def test_commit_cost_scales_with_blocks(self, cluster):
        small = cluster.server_occupancy(OpDescriptor(
            Service.BLOB, OpKind.PUT_BLOCK_LIST, "c/b", block_count=1))
        big = cluster.server_occupancy(OpDescriptor(
            Service.BLOB, OpKind.PUT_BLOCK_LIST, "c/b", block_count=100))
        assert big > small

    def test_is_write_classification(self):
        assert OpDescriptor(Service.QUEUE, OpKind.PUT_MESSAGE, "q").is_write
        assert not OpDescriptor(Service.QUEUE, OpKind.PEEK_MESSAGE, "q").is_write
        assert OpDescriptor(Service.TABLE, OpKind.DELETE_ENTITY, "p").is_write
        assert not OpDescriptor(Service.BLOB, OpKind.DOWNLOAD_BLOB, "c/b").is_write


class TestExecution:
    def test_execute_takes_time(self, env, cluster):
        op = OpDescriptor(Service.QUEUE, OpKind.PUT_MESSAGE, "q", nbytes=1024)
        t = run_op(env, cluster, op)
        assert t > 0
        # op time recorded
        assert cluster.mean_op_time(OpKind.PUT_MESSAGE) == pytest.approx(t)

    def test_contention_serializes(self, env, cluster):
        """More concurrent ops on one partition than slots -> queueing."""
        slots = cluster.cal.queue_server_slots
        n_ops = slots * 4
        times = []

        def client(env):
            start = env.now
            yield from cluster.execute(OpDescriptor(
                Service.QUEUE, OpKind.PUT_MESSAGE, "shared", nbytes=32 * KB))
            times.append(env.now - start)

        for _ in range(n_ops):
            env.process(client(env))
        env.run()
        solo = min(times)
        assert max(times) > 2 * solo  # the queued ones waited

    def test_separate_partitions_do_not_contend(self, env, cluster):
        times = []

        def client(env, i):
            start = env.now
            yield from cluster.execute(OpDescriptor(
                Service.QUEUE, OpKind.PUT_MESSAGE, f"own-{i}", nbytes=32 * KB))
            times.append(env.now - start)

        for i in range(32):
            env.process(client(env, i))
        env.run()
        assert max(times) < 1.2 * min(times)

    def test_account_tx_throttle(self, env):
        limits = LIMITS_2012.with_overrides(account_transactions_per_second=10)
        cal = FabricCalibration(jitter_sigma=0.0)
        cluster = StorageCluster(env, limits=limits, calibration=cal)
        errors = []

        def client(env, i):
            try:
                yield from cluster.execute(OpDescriptor(
                    Service.QUEUE, OpKind.PUT_MESSAGE, f"q-{i}", nbytes=10))
            except ServerBusyError as exc:
                errors.append(exc)

        for i in range(20):
            env.process(client(env, i))
        env.run()
        assert len(errors) == 10
        assert cluster.server_busy_count == 10

    def test_per_queue_throttle(self, env):
        limits = LIMITS_2012.with_overrides(queue_messages_per_second=5)
        cal = FabricCalibration(jitter_sigma=0.0)
        cluster = StorageCluster(env, limits=limits, calibration=cal)
        errors = []

        def client(env):
            try:
                yield from cluster.execute(OpDescriptor(
                    Service.QUEUE, OpKind.PUT_MESSAGE, "hot", nbytes=10))
            except ServerBusyError:
                errors.append(1)

        for _ in range(8):
            env.process(client(env))
        env.run()
        assert len(errors) == 3

    def test_partition_throttle_only_hits_that_partition(self, env):
        limits = LIMITS_2012.with_overrides(partition_entities_per_second=3)
        cal = FabricCalibration(jitter_sigma=0.0)
        cluster = StorageCluster(env, limits=limits, calibration=cal)
        outcomes = {"hot": 0, "cold": 0}

        def client(env, part):
            try:
                yield from cluster.execute(OpDescriptor(
                    Service.TABLE, OpKind.INSERT_ENTITY, part, nbytes=10))
            except ServerBusyError:
                outcomes[part] += 1

        for _ in range(5):
            env.process(client(env, "hot"))
        for _ in range(2):
            env.process(client(env, "cold"))
        env.run()
        assert outcomes == {"hot": 2, "cold": 0}

    def test_jitter_deterministic_per_seed(self):
        def run_once(seed):
            env = Environment()
            cluster = StorageCluster(env, seed=seed)
            p = env.process(cluster.execute(OpDescriptor(
                Service.BLOB, OpKind.PUT_PAGE, "c/b", nbytes=1 * MB)))
            env.run()
            return env.now

        assert run_once(5) == run_once(5)
        assert run_once(5) != run_once(6)

    def test_calibration_validation(self):
        with pytest.raises(ValueError):
            FabricCalibration(blob_server_slots=0).validate()
        with pytest.raises(ValueError):
            FabricCalibration(jitter_sigma=-1).validate()
        with pytest.raises(ValueError):
            FabricCalibration(blob_base_rtt=-0.1).validate()
        DEFAULT_CALIBRATION.validate()  # the shipped one is valid
