"""Tests for injected availability outages + simkit tracing."""

import pytest

from repro.cluster import Service
from repro.sim import SimStorageAccount, retrying
from repro.simkit import Environment
from repro.storage import ServerBusyError
from repro.storage.analytics import attach_analytics


class TestOutages:
    def test_service_outage_fails_ops(self):
        env = Environment()
        account = SimStorageAccount(env, seed=1)
        account.cluster.inject_outage(Service.QUEUE, start=5.0, duration=10.0)
        qc = account.queue_client()
        outcomes = []

        def body():
            yield from qc.create_queue("vital")
            yield env.timeout(6.0)  # land inside the outage window
            try:
                yield from qc.put_message("vital", b"x")
                outcomes.append("ok")
            except ServerBusyError:
                outcomes.append("unavailable")

        env.process(body())
        env.run()
        assert outcomes == ["unavailable"]

    def test_retry_rides_through_outage(self):
        env = Environment()
        account = SimStorageAccount(env, seed=1)
        account.cluster.inject_outage(Service.QUEUE, start=0.5, duration=4.0)
        qc = account.queue_client()

        def body():
            yield from qc.create_queue("vital")
            yield env.timeout(1.0)
            yield from retrying(env, lambda: qc.put_message("vital", b"x"))
            return env.now

        p = env.process(body())
        env.run()
        # Landed after the outage ended at 4.5 via 1-second retries.
        assert p.value >= 4.5
        assert account.state.queues.get_queue("vital") \
            .approximate_message_count() == 1

    def test_partition_scoped_outage(self):
        env = Environment()
        account = SimStorageAccount(env, seed=1)
        account.cluster.inject_outage(Service.QUEUE, start=0.0, duration=100.0,
                                      partition="down-queue")
        qc = account.queue_client()
        results = {}

        def body():
            # The broken partition fails...
            try:
                yield from qc.create_queue("down-queue")
                results["down"] = "ok"
            except ServerBusyError:
                results["down"] = "unavailable"
            # ...while a sibling queue works fine.
            yield from qc.create_queue("up-queue")
            yield from qc.put_message("up-queue", b"x")
            results["up"] = "ok"

        env.process(body())
        env.run()
        assert results == {"down": "unavailable", "up": "ok"}

    def test_outage_visible_in_analytics(self):
        env = Environment()
        account = SimStorageAccount(env, seed=1)
        log, metrics = attach_analytics(account.cluster)
        account.cluster.inject_outage(Service.TABLE, start=0.0, duration=2.0)
        tc = account.table_client()

        def body():
            yield from retrying(env, lambda: tc.create_table("Audit"))
            yield from retrying(env, lambda: tc.insert(
                "Audit", "p", "r", {"V": 1}))

        env.process(body())
        env.run()
        cell = metrics.cell(0, "table")
        assert cell.total_throttles >= 2  # the outage rejections
        assert cell.availability < 1.0
        assert any(r.error_code == "ServerBusy" for r in log)

    def test_validation(self):
        env = Environment()
        account = SimStorageAccount(env, seed=1)
        with pytest.raises(ValueError):
            account.cluster.inject_outage(Service.BLOB, 0.0, 0.0)

    def test_overlapping_outage_windows(self):
        """Two outage windows [2,6) and [4,10): the service is down for
        the union, not just one of them, and comes back at t=10."""
        env = Environment()
        account = SimStorageAccount(env, seed=1)
        account.cluster.inject_outage(Service.QUEUE, start=2.0, duration=4.0)
        account.cluster.inject_outage(Service.QUEUE, start=4.0, duration=6.0)
        qc = account.queue_client()
        probes = []

        def body():
            yield from qc.create_queue("vital")
            for t in (3.0, 5.0, 8.0, 10.5):
                yield env.timeout(t - env.now)
                try:
                    yield from qc.put_message("vital", b"x")
                    probes.append((t, "ok"))
                except ServerBusyError:
                    probes.append((t, "down"))

        env.process(body())
        env.run()
        # t=3: first window only; t=5: both; t=8: second only; t=10.5: up.
        assert probes == [(3.0, "down"), (5.0, "down"), (8.0, "down"),
                          (10.5, "ok")]

    def test_overlapping_windows_count_one_rejection_per_op(self):
        """An op inside two overlapping windows is rejected once, not
        twice — the first matching window raises and short-circuits."""
        env = Environment()
        account = SimStorageAccount(env, seed=1)
        account.cluster.inject_outage(Service.QUEUE, start=0.0, duration=9.0)
        account.cluster.inject_outage(Service.QUEUE, start=0.0, duration=9.0)
        qc = account.queue_client()

        def body():
            try:
                yield from qc.create_queue("vital")
            except ServerBusyError:
                pass

        env.process(body())
        env.run()
        plan = account.cluster.fault_plan
        from repro.faults import FaultKind
        assert plan.counts == {FaultKind.OUTAGE: 1}

    def test_partition_outage_and_service_outage_compose(self):
        """A partition-scoped window inside a later service-wide window:
        the partition is down in both, siblings only in the second."""
        env = Environment()
        account = SimStorageAccount(env, seed=1)
        account.cluster.inject_outage(Service.QUEUE, start=2.0, duration=4.0,
                                      partition="down-queue")
        account.cluster.inject_outage(Service.QUEUE, start=8.0, duration=4.0)
        qc = account.queue_client()
        seen = []

        def check(t, queue):
            try:
                yield from qc.put_message(queue, b"x")
                seen.append((t, queue, "ok"))
            except ServerBusyError:
                seen.append((t, queue, "down"))

        def body():
            yield from qc.create_queue("down-queue")
            yield from qc.create_queue("up-queue")
            for t in (3.0, 9.0):
                yield env.timeout(t - env.now)
                yield from check(t, "down-queue")
                yield from check(t, "up-queue")

        env.process(body())
        env.run()
        assert seen == [
            (3.0, "down-queue", "down"), (3.0, "up-queue", "ok"),
            (9.0, "down-queue", "down"), (9.0, "up-queue", "down"),
        ]

    def test_partition_outage_spares_other_services(self):
        env = Environment()
        account = SimStorageAccount(env, seed=1)
        account.cluster.inject_outage(Service.QUEUE, start=0.0, duration=50.0,
                                      partition="shared-name")
        tc = account.table_client()

        def body():
            # Same partition key, different service: unaffected.
            yield from tc.create_table("sharedname")

        env.process(body())
        env.run()  # must not raise


class TestTracer:
    def test_tracer_sees_every_event(self):
        env = Environment()
        seen = []
        env.tracer = lambda t, e: seen.append((t, type(e).__name__))
        env.timeout(1)
        env.timeout(2)
        env.run()
        assert [t for t, _ in seen] == [1, 2]
        assert env.events_processed == 2

    def test_events_processed_counts(self):
        env = Environment()

        def proc(env):
            for _ in range(3):
                yield env.timeout(1)

        env.process(proc(env))
        env.run()
        # 1 init event + 3 timeouts + 1 process-end event.
        assert env.events_processed == 5
