"""Unit tests for the sliding-window throttle."""

import pytest

from repro.cluster import SlidingWindowThrottle
from repro.storage import ServerBusyError


class TestSlidingWindowThrottle:
    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowThrottle(0)
        with pytest.raises(ValueError):
            SlidingWindowThrottle(10, window=0)

    def test_admits_under_limit(self):
        t = SlidingWindowThrottle(5, window=1.0)
        for i in range(5):
            t.charge(0.0, 1)
        assert t.admitted == 5

    def test_rejects_over_limit(self):
        t = SlidingWindowThrottle(5, window=1.0, name="test")
        for _ in range(5):
            t.charge(0.0)
        with pytest.raises(ServerBusyError) as exc_info:
            t.charge(0.5)
        assert exc_info.value.retry_after == 1.0
        assert t.rejected_ops == 1

    def test_window_slides(self):
        t = SlidingWindowThrottle(5, window=1.0)
        for _ in range(5):
            t.charge(0.0)
        with pytest.raises(ServerBusyError):
            t.charge(0.99)
        t.charge(1.01)  # the 0.0 events expired

    def test_weighted_units(self):
        t = SlidingWindowThrottle(100, window=1.0)
        t.charge(0.0, 60)
        t.charge(0.0, 40)
        with pytest.raises(ServerBusyError):
            t.charge(0.0, 1)

    def test_units_larger_than_limit_rejected(self):
        t = SlidingWindowThrottle(10, window=1.0)
        with pytest.raises(ServerBusyError):
            t.charge(0.0, 11)

    def test_would_admit(self):
        t = SlidingWindowThrottle(2, window=1.0)
        assert t.would_admit(0.0)
        t.charge(0.0)
        t.charge(0.0)
        assert not t.would_admit(0.5)
        assert t.would_admit(1.5)

    def test_rejection_does_not_consume(self):
        t = SlidingWindowThrottle(5, window=1.0)
        for _ in range(5):
            t.charge(0.0)
        for _ in range(10):
            with pytest.raises(ServerBusyError):
                t.charge(0.5)
        # Rejections did not extend the window occupancy.
        t.charge(1.01)

    def test_retry_after_customizable(self):
        t = SlidingWindowThrottle(1, retry_after=2.5)
        t.charge(0.0)
        with pytest.raises(ServerBusyError) as exc_info:
            t.charge(0.0)
        assert exc_info.value.retry_after == 2.5

    def test_current_load(self):
        t = SlidingWindowThrottle(10, window=1.0)
        t.charge(0.0, 4)
        assert t.current_load == 4
