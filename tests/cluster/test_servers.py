"""Tests for partition servers and server pools (stats and placement)."""

import pytest

from repro.cluster import PartitionServer, ServerPool
from repro.simkit import Environment


@pytest.fixture
def env():
    return Environment()


class TestPartitionServer:
    def test_serve_records_stats(self, env):
        server = PartitionServer(env, "s1", slots=1)

        def client(env, occupancy, nbytes):
            yield from server.serve(occupancy, nbytes)

        env.process(client(env, 2.0, 100))
        env.process(client(env, 3.0, 200))
        env.run()
        assert server.ops_served == 2
        assert server.bytes_served == 300
        assert server.service_times.total == pytest.approx(5.0)
        # Second client waited for the first.
        assert server.wait_times.max == pytest.approx(2.0)
        assert server.wait_times.min == 0.0

    def test_queue_length_under_load(self, env):
        server = PartitionServer(env, "s1", slots=1)
        lengths = []

        def client(env):
            yield from server.serve(5.0)

        def observer(env):
            yield env.timeout(1.0)
            lengths.append(server.queue_length)

        for _ in range(4):
            env.process(client(env))
        env.process(observer(env))
        env.run()
        assert lengths == [3]

    def test_utilization_tracked(self, env):
        server = PartitionServer(env, "s1", slots=1)

        def client(env):
            yield from server.serve(4.0)

        def idle_then_done(env):
            yield env.timeout(10.0)

        env.process(client(env))
        env.process(idle_then_done(env))
        env.run()
        assert server.utilization.busy_time == pytest.approx(4.0)
        assert server.utilization.utilization == pytest.approx(0.4)

    def test_parallel_slots(self, env):
        server = PartitionServer(env, "s2", slots=4)
        done = []

        def client(env, i):
            yield from server.serve(1.0)
            done.append((i, env.now))

        for i in range(4):
            env.process(client(env, i))
        env.run()
        assert all(t == 1.0 for _, t in done)


class TestServerPool:
    def test_unsharded_pool_is_per_partition(self, env):
        pool = ServerPool(env, "p", 4)
        servers = {id(pool.server_for(f"part-{i}")) for i in range(20)}
        assert len(servers) == 20
        assert len(pool) == 20

    def test_sharded_pool_caps_server_count(self, env):
        pool = ServerPool(env, "p", 4, shards=3)
        for i in range(50):
            pool.server_for(f"part-{i}")
        assert len(pool) <= 3

    def test_hash_is_deterministic_across_pools(self, env):
        a = ServerPool(env, "a", 4, shards=7)
        b = ServerPool(Environment(), "b", 4, shards=7)
        for key in ("alpha", "beta", "gamma"):
            assert a._server_key(key) == b._server_key(key)

    def test_servers_snapshot(self, env):
        pool = ServerPool(env, "p", 2)
        pool.server_for("x")
        snapshot = pool.servers
        assert list(snapshot) == ["x"]
        snapshot["y"] = None  # mutating the copy must not affect the pool
        assert len(pool) == 1
