"""Property tests for ServerPool partition placement (_server_key).

Placement must be a pure function of the partition name: stable across
pools, processes, and platforms (Python's own ``hash`` is salted, which is
exactly why the pool rolls its own), identity when unsharded, and
reasonably uniform across shards so table range servers share load.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.servers import ServerPool
from repro.simkit import Environment

partition_names = st.text(min_size=0, max_size=64)
shard_counts = st.integers(min_value=1, max_value=64)


def make_pool(shards):
    return ServerPool(Environment(), "pool", slots_per_server=4,
                      shards=shards)


class TestServerKeyProperties:
    @given(partition=partition_names, shards=shard_counts)
    @settings(max_examples=200)
    def test_stable_across_pool_instances(self, partition, shards):
        a = make_pool(shards)
        b = make_pool(shards)
        assert a.server_key(partition) == b.server_key(partition)

    @given(partition=partition_names, shards=shard_counts)
    @settings(max_examples=200)
    def test_key_lands_on_a_valid_shard(self, partition, shards):
        key = make_pool(shards).server_key(partition)
        assert key.startswith("shard-")
        assert 0 <= int(key[len("shard-"):]) < shards

    @given(partition=partition_names)
    @settings(max_examples=200)
    def test_unsharded_pool_is_identity(self, partition):
        # shards=None: every distinct partition gets its own server.
        assert make_pool(None).server_key(partition) == partition

    @given(partition=partition_names, shards=shard_counts)
    @settings(max_examples=100)
    def test_repeated_lookup_is_idempotent(self, partition, shards):
        pool = make_pool(shards)
        first = pool.server_key(partition)
        pool.server_for(partition)  # materializing a server changes nothing
        assert pool.server_key(partition) == first

    def test_single_shard_degenerates_to_one_server(self):
        pool = make_pool(1)
        keys = {pool.server_key(f"partition-{i}") for i in range(50)}
        assert keys == {"shard-0"}


class TestDistribution:
    def test_uniform_ish_over_shards(self):
        """2000 realistic partition names over 8 shards: no shard may be
        starved or hot beyond ~40% of the expected 250 per shard."""
        shards = 8
        pool = make_pool(shards)
        counts = [0] * shards
        for i in range(2000):
            key = pool.server_key(f"table/customer-{i:05d}")
            counts[int(key[len("shard-"):])] += 1
        expected = 2000 / shards
        assert sum(counts) == 2000
        assert min(counts) > expected * 0.6, counts
        assert max(counts) < expected * 1.4, counts

    def test_distinct_names_usually_spread(self):
        # Sanity against a constant hash: plenty of distinct shard keys.
        pool = make_pool(16)
        keys = {pool.server_key(f"queue-{i}") for i in range(200)}
        assert len(keys) == 16
