"""Unit tests for the compute substrate: VM sizes, roles, deployments."""

import pytest

from repro.compute import (
    Deployment,
    EXTRA_LARGE,
    EXTRA_SMALL,
    Fabric,
    LARGE,
    MEDIUM,
    RoleStatus,
    SMALL,
    TABLE_I,
    vm_size_by_name,
)
from repro.sim import SimStorageAccount
from repro.simkit import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def account(env):
    return SimStorageAccount(env, seed=1)


class TestVMSizes:
    def test_table_i_rows(self):
        assert [v.name for v in TABLE_I] == [
            "Extra Small", "Small", "Medium", "Large", "Extra Large"]

    def test_paper_values(self):
        assert EXTRA_SMALL.cores_display == "Shared"
        assert EXTRA_SMALL.memory_display == "768MB"
        assert SMALL.cpu_cores == 1 and SMALL.storage_gb == 225
        assert MEDIUM.memory_display == "3.5 GB"
        assert LARGE.cpu_cores == 4 and LARGE.memory_display == "7 GB"
        assert EXTRA_LARGE.memory_display == "14 GB"
        assert EXTRA_LARGE.storage_gb == 2040

    def test_lookup_by_name(self):
        assert vm_size_by_name("small") is SMALL
        assert vm_size_by_name("Extra Large") is EXTRA_LARGE
        assert vm_size_by_name("extralarge") is EXTRA_LARGE
        with pytest.raises(KeyError):
            vm_size_by_name("gigantic")

    def test_nic_bandwidth(self):
        assert SMALL.nic_bytes_per_second == 100 * 1_000_000 / 8


class TestDeployment:
    def test_runs_all_instances(self, env, account):
        def body(ctx):
            yield ctx.sleep(ctx.role_id + 1)
            return ctx.role_id * 10

        d = Deployment(env, account, body, instances=4, name="w")
        results = d.run()
        assert results == [0, 10, 20, 30]
        assert d.completed
        assert env.now == 4

    def test_role_context_fields(self, env, account):
        seen = []

        def body(ctx):
            seen.append((ctx.role_id, ctx.instance_count, ctx.role_name,
                         ctx.vm_size.name))
            yield ctx.sleep(0)

        Deployment(env, account, body, instances=3, name="myrole").run()
        assert seen == [(0, 3, "myrole", "Small"),
                        (1, 3, "myrole", "Small"),
                        (2, 3, "myrole", "Small")]

    def test_instances_validation(self, env, account):
        with pytest.raises(ValueError):
            Deployment(env, account, lambda ctx: iter(()), instances=0)

    def test_start_idempotent(self, env, account):
        def body(ctx):
            yield ctx.sleep(1)

        d = Deployment(env, account, body, instances=2)
        d.start()
        d.start()  # no double launch
        env.run()
        assert d.completed

    def test_fail_instance(self, env, account):
        def body(ctx):
            yield ctx.sleep(100)
            return "finished"

        d = Deployment(env, account, body, instances=2)
        d.start()

        def killer(env):
            yield env.timeout(5)
            d.fail_instance(0, cause="chaos")

        env.process(killer(env))
        env.run()
        assert d.instances[0].status is RoleStatus.FAILED
        assert d.instances[1].status is RoleStatus.COMPLETED
        assert d.failed_instances == [d.instances[0]]

    def test_restart_after_failure(self, env, account):
        attempts = []

        def body(ctx):
            attempts.append(ctx.now)
            yield ctx.sleep(10)
            return "done"

        d = Deployment(env, account, body, instances=1)
        d.start()

        def chaos(env):
            yield env.timeout(2)
            d.fail_instance(0)
            yield env.timeout(1)
            d.restart_instance(0)

        env.process(chaos(env))
        env.run()
        inst = d.instances[0]
        assert inst.status is RoleStatus.COMPLETED
        assert inst.restarts == 1
        assert len(attempts) == 2

    def test_failing_body_exception_propagates(self, env, account):
        def body(ctx):
            yield ctx.sleep(1)
            raise ValueError("app bug")

        d = Deployment(env, account, body, instances=1)
        d.start()
        with pytest.raises(ValueError, match="app bug"):
            env.run()
        assert d.instances[0].status is RoleStatus.FAILED


class TestFabric:
    def test_multiple_deployments(self, env, account):
        fabric = Fabric(env, account)

        def web(ctx):
            yield ctx.sleep(1)
            return "web done"

        def worker(ctx):
            yield ctx.sleep(2)
            return f"worker {ctx.role_id}"

        fabric.deploy(web, instances=1, name="web")
        fabric.deploy(worker, instances=2, name="workers")
        results = fabric.run_all()
        assert results["web"] == ["web done"]
        assert results["workers"] == ["worker 0", "worker 1"]

    def test_duplicate_name_rejected(self, env, account):
        fabric = Fabric(env, account)
        fabric.deploy(lambda ctx: iter(()), instances=1, name="x")
        with pytest.raises(ValueError):
            fabric.deploy(lambda ctx: iter(()), instances=1, name="x")
