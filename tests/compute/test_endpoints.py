"""EndpointRegistry/TcpMessage: the inter-role TCP substrate.

Covers the network model's accounting (latency, bandwidth, counters),
the name service (duplicate registration, unknown targets, close), and
the per-channel FIFO guarantee that makes each (source, target) pair
behave like one TCP stream.
"""

import pytest

from repro.compute.endpoints import (
    EndpointError,
    EndpointRegistry,
    TcpMessage,
)
from repro.simkit import Environment

MB = 1024 * 1024


def _registry(env, **overrides):
    kwargs = dict(latency_s=0.001, bandwidth_bytes_per_s=1 * MB,
                  jitter_sigma=0.0, seed=0)
    kwargs.update(overrides)
    return EndpointRegistry(env, **kwargs)


class TestRegistration:
    def test_duplicate_name_rejected(self):
        registry = _registry(Environment())
        registry.register("role-0")
        with pytest.raises(EndpointError, match="already registered"):
            registry.register("role-0")

    def test_close_frees_the_name(self):
        registry = _registry(Environment())
        registry.register("role-0").close()
        registry.register("role-0")  # does not raise
        assert registry.names() == ("role-0",)

    def test_send_to_unknown_target_fails_fast(self):
        env = Environment()
        registry = _registry(env)

        def proc():
            yield from registry.send("a", "ghost", b"x")

        env.process(proc())
        with pytest.raises(EndpointError, match="no endpoint 'ghost'"):
            env.run()


class TestNetworkAccounting:
    def test_latency_and_bandwidth_charged(self):
        """1 MB at 1 MB/s + 1 ms propagation: delivery at t ~= 1.001."""
        env = Environment()
        registry = _registry(env)
        inbox = registry.register("rx")
        got = []

        def sender():
            yield from registry.send("tx", "rx", b"x" * MB)

        def receiver():
            msg = yield from inbox.recv()
            got.append((msg, env.now))

        env.process(sender())
        env.process(receiver())
        env.run()
        msg, at = got[0]
        assert isinstance(msg, TcpMessage)
        assert at == pytest.approx(1.001)
        assert msg.latency == pytest.approx(1.001)
        assert (msg.sent_at, msg.delivered_at) == (0.0, at)

    def test_sender_released_after_serialization(self):
        """The sender's NIC frees at the serialization boundary; the
        propagation hop does not block it."""
        env = Environment()
        registry = _registry(env)
        registry.register("rx")
        freed = []

        def sender():
            yield from registry.send("tx", "rx", b"x" * MB)
            freed.append(env.now)

        env.process(sender())
        env.run()
        assert freed[0] == pytest.approx(1.0)

    def test_counters(self):
        env = Environment()
        registry = _registry(env)
        registry.register("rx")

        def sender():
            yield from registry.send("tx", "rx", b"abc")
            yield from registry.send("tx", "rx", b"defgh")

        env.process(sender())
        env.run()
        assert registry.messages_sent == 2
        assert registry.bytes_sent == 8

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            EndpointRegistry(Environment(), latency_s=-1)
        with pytest.raises(ValueError):
            EndpointRegistry(Environment(), bandwidth_bytes_per_s=0)


class TestChannelFifo:
    def test_one_channel_delivers_in_send_order(self):
        """Even with jitter reordering the latency draws, one
        (source, target) channel is a stream: FIFO delivery."""
        env = Environment()
        registry = _registry(env, jitter_sigma=2.0, seed=123)
        inbox = registry.register("rx")
        order = []

        def sender():
            for i in range(20):
                yield from registry.send("tx", "rx", bytes([i]))

        def receiver():
            for _ in range(20):
                msg = yield from inbox.recv()
                order.append(msg.payload[0])

        env.process(sender())
        env.process(receiver())
        env.run()
        assert order == list(range(20))

    def test_close_while_in_flight_drops_message(self):
        env = Environment()
        registry = _registry(env)
        inbox = registry.register("rx")

        def sender():
            yield from registry.send("tx", "rx", b"late")
            inbox.close()  # closes before the propagation hop lands

        env.process(sender())
        env.run()
        assert inbox.pending == 0
        assert inbox.try_recv() is None
