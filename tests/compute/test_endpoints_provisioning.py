"""Tests for TCP endpoints and the provisioning model."""

import pytest

from repro.compute import (
    Deployment,
    EXTRA_LARGE,
    EndpointError,
    EndpointRegistry,
    ProvisioningModel,
    SMALL,
    provisioned_start,
)
from repro.sim import SimStorageAccount
from repro.simkit import Environment


@pytest.fixture
def env():
    return Environment()


class TestEndpoints:
    def test_send_recv(self, env):
        reg = EndpointRegistry(env, seed=1)
        inbox = reg.register("dst")

        def sender():
            yield from reg.send("src", "dst", b"hello")

        def receiver():
            msg = yield from inbox.recv()
            return msg

        env.process(sender())
        p = env.process(receiver())
        env.run()
        msg = p.value
        assert msg.source == "src" and msg.payload == b"hello"
        assert msg.latency > 0

    def test_unknown_target_fails_fast(self, env):
        reg = EndpointRegistry(env, seed=1)

        def sender():
            yield from reg.send("src", "nowhere", b"x")

        env.process(sender())
        with pytest.raises(EndpointError):
            env.run()

    def test_duplicate_registration(self, env):
        reg = EndpointRegistry(env, seed=1)
        reg.register("a")
        with pytest.raises(EndpointError):
            reg.register("a")

    def test_unregister_allows_reuse(self, env):
        reg = EndpointRegistry(env, seed=1)
        ep = reg.register("a")
        ep.close()
        reg.register("a")  # no error
        assert reg.names() == ("a",)

    def test_messages_to_closed_endpoint_dropped(self, env):
        reg = EndpointRegistry(env, seed=1)
        ep = reg.register("dst")

        def sender():
            yield from reg.send("src", "dst", b"x")
            ep.close()

        env.process(sender())
        env.run()  # no crash; message dropped like a RST
        assert ep.pending == 0

    def test_bandwidth_charges_sender(self, env):
        reg = EndpointRegistry(env, latency_s=0.0, jitter_sigma=0,
                               bandwidth_bytes_per_s=1000, seed=1)
        reg.register("dst")

        def sender():
            yield from reg.send("src", "dst", b"x" * 500)
            return env.now

        p = env.process(sender())
        env.run()
        assert p.value == pytest.approx(0.5)  # 500 B at 1000 B/s

    def test_fifo_delivery_per_pair(self, env):
        reg = EndpointRegistry(env, jitter_sigma=0, seed=1)
        inbox = reg.register("dst")
        got = []

        def sender():
            for i in range(5):
                yield from reg.send("src", "dst", bytes([i]))

        def receiver():
            for _ in range(5):
                msg = yield from inbox.recv()
                got.append(msg.payload[0])

        env.process(sender())
        env.process(receiver())
        env.run()
        assert got == [0, 1, 2, 3, 4]

    def test_try_recv_and_pending(self, env):
        reg = EndpointRegistry(env, seed=1)
        inbox = reg.register("dst")
        assert inbox.try_recv() is None

        def sender():
            yield from reg.send("src", "dst", b"a")
            yield from reg.send("src", "dst", b"b")

        env.process(sender())
        env.run()
        assert inbox.pending == 2
        assert inbox.try_recv().payload == b"a"
        assert inbox.pending == 1

    def test_counters(self, env):
        reg = EndpointRegistry(env, seed=1)
        reg.register("dst")

        def sender():
            yield from reg.send("src", "dst", b"x" * 100)

        env.process(sender())
        env.run()
        assert reg.messages_sent == 1
        assert reg.bytes_sent == 100

    def test_parameter_validation(self, env):
        with pytest.raises(ValueError):
            EndpointRegistry(env, latency_s=-1)
        with pytest.raises(ValueError):
            EndpointRegistry(env, bandwidth_bytes_per_s=0)


class TestProvisioning:
    def test_means_scale_with_size(self):
        model = ProvisioningModel(seed=1, sigma=0)
        assert model.mean_seconds(EXTRA_LARGE) > model.mean_seconds(SMALL)

    def test_batch_penalty(self):
        model = ProvisioningModel(seed=1, sigma=0,
                                  batch_penalty_s_per_instance=3.0)
        assert model.mean_seconds(SMALL, batch_size=11) == \
            model.mean_seconds(SMALL, batch_size=1) + 30.0

    def test_zero_sigma_is_deterministic(self):
        model = ProvisioningModel(seed=1, sigma=0)
        assert model.draw(SMALL) == model.draw(SMALL)

    def test_draws_seeded(self):
        a = [ProvisioningModel(seed=7).draw(SMALL) for _ in range(3)]
        b = [ProvisioningModel(seed=7).draw(SMALL) for _ in range(3)]
        assert a == b

    def test_unknown_size_rejected(self):
        from repro.compute.vmsizes import VMSize
        weird = VMSize("Quantum", 128, 1, 1, 1)
        with pytest.raises(KeyError):
            ProvisioningModel().mean_seconds(weird)

    def test_sigma_validation(self):
        with pytest.raises(ValueError):
            ProvisioningModel(sigma=-1)

    def test_provisioned_start_runs_bodies(self, env):
        account = SimStorageAccount(env, seed=2)

        def body(ctx):
            yield ctx.sleep(1)
            return ctx.role_id

        d = Deployment(env, account, body, instances=4, vm_size=SMALL)
        ready, record = provisioned_start(d, ProvisioningModel(seed=3))
        env.run(until=ready)
        assert d.results() == [0, 1, 2, 3]
        assert record.requested == 4
        assert 0 < record.first_ready_at <= record.all_ready_at
        assert len(record.per_instance) == 4
        # Minutes-scale startup.
        assert record.first_ready_at > 60

    def test_provisioned_start_rejects_started(self, env):
        account = SimStorageAccount(env, seed=2)

        def body(ctx):
            yield ctx.sleep(1)

        d = Deployment(env, account, body, instances=1)
        d.start()
        with pytest.raises(RuntimeError):
            provisioned_start(d, ProvisioningModel())
