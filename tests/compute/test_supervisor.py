"""Tests for the role supervisor (fabric auto-recycling)."""

import pytest

from repro.compute import Deployment, RoleStatus, Supervisor
from repro.sim import SimStorageAccount
from repro.simkit import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def account(env):
    return SimStorageAccount(env, seed=13)


class TestSupervisor:
    def test_restarts_failed_instance(self, env, account):
        def body(ctx):
            yield ctx.sleep(10)
            return "done"

        d = Deployment(env, account, body, instances=2)
        d.start()
        sup = Supervisor(d, recycle_delay=5.0).start()

        def chaos(env):
            yield env.timeout(3)
            d.fail_instance(0, cause="crash")

        env.process(chaos(env))
        env.run()
        assert d.instances[0].status is RoleStatus.COMPLETED
        assert sup.restart_count == 1
        record = sup.restarts[0]
        assert record.role_id == 0
        assert record.restarted_at >= record.failed_at + 5.0

    def test_crash_loop_cutoff(self, env, account):
        attempts = []

        def crashy(ctx):
            attempts.append(ctx.now)
            yield ctx.sleep(1)
            raise_after = True
            if raise_after:
                # Simulated app bug: fail via fabric-visible interrupt.
                return None

        # A body that always gets externally failed is easier to model:
        def body(ctx):
            attempts.append(ctx.now)
            yield ctx.sleep(1000)

        d = Deployment(env, account, body, instances=1)
        d.start()
        sup = Supervisor(d, recycle_delay=2.0, max_restarts=2).start()

        def chaos(env):
            # Crash it every 5 seconds, forever.
            while env.now < 60:
                yield env.timeout(5)
                inst = d.instances[0]
                if inst.status is RoleStatus.RUNNING:
                    d.fail_instance(0, cause="crash loop")

        env.process(chaos(env))
        env.run(until=100)
        assert sup.restart_count == 2  # cutoff respected
        assert d.instances[0].status is RoleStatus.FAILED
        assert sup.restarts_for(0) == 2

    def test_supervisor_exits_when_all_complete(self, env, account):
        def body(ctx):
            yield ctx.sleep(2)

        d = Deployment(env, account, body, instances=3)
        d.start()
        Supervisor(d, recycle_delay=1.0).start()
        env.run()  # must terminate (supervisor stops watching)
        assert d.completed

    def test_stop(self, env, account):
        def body(ctx):
            yield ctx.sleep(5)

        d = Deployment(env, account, body, instances=1)
        d.start()
        sup = Supervisor(d).start()
        sup.stop()
        env.run()
        assert d.completed

    def test_validation(self, env, account):
        d = Deployment(env, account, lambda ctx: iter(()), instances=1)
        with pytest.raises(ValueError):
            Supervisor(d, recycle_delay=-1)
        with pytest.raises(ValueError):
            Supervisor(d, poll_interval=0)

    def test_supervised_taskpool_completes_despite_crashes(self, env, account):
        """End-to-end: supervisor + queue redelivery = no lost work."""
        from repro.compute import Fabric
        from repro.framework import TaskPoolApp, TaskPoolConfig

        fabric = Fabric(env, account)

        def handler(ctx, payload):
            yield ctx.sleep(1.0)
            return payload.upper()

        app = TaskPoolApp(
            TaskPoolConfig(name="sup", visibility_timeout=15.0,
                           idle_poll_interval=0.5),
            handler)
        tasks = [f"t{i}".encode() for i in range(8)]
        fabric.deploy(app.web_role_body(tasks, poll_interval=0.5),
                      instances=1, name="web")
        workers = fabric.deploy(app.worker_role_body(), instances=2,
                                name="workers")
        fabric.start_all()
        sup = Supervisor(workers, recycle_delay=3.0).start()

        def chaos(env):
            yield env.timeout(1.5)
            workers.fail_instance(0, cause="recycle")
            yield env.timeout(6.0)
            workers.fail_instance(1, cause="recycle")

        env.process(chaos(env))
        env.run()
        assert sorted(r.payload for r in app.results) == \
            sorted(t.upper() for t in tasks)
        assert sup.restart_count == 2


class TestPoisonMessages:
    def test_poison_task_dead_lettered(self, env, account):
        from repro.compute import Fabric
        from repro.framework import TaskPoolApp, TaskPoolConfig
        from repro.simkit import Interrupt

        fabric = Fabric(env, account)

        def handler(ctx, payload):
            if payload == b"POISON":
                # A payload that crashes the worker every time.
                raise RuntimeError("handler crashed on poison payload")
            yield ctx.sleep(0.1)
            return payload

        app = TaskPoolApp(
            TaskPoolConfig(name="poison", visibility_timeout=2.0,
                           idle_poll_interval=0.5, max_dequeue_count=3),
            handler)
        tasks = [b"good-1", b"POISON", b"good-2"]
        fabric.deploy(app.web_role_body(tasks, poll_interval=0.5),
                      instances=1, name="web")
        workers = fabric.deploy(app.worker_role_body(), instances=2,
                                name="workers", contain_crashes=True)
        fabric.start_all()
        # Supervisor brings back the workers the poison task crashes.
        Supervisor(workers, recycle_delay=1.0).start()
        env.run()

        # Good tasks completed; the poison one landed on the dead-letter
        # queue instead of looping forever.
        assert sorted(r.payload for r in app.results) == [b"good-1", b"good-2"]
        poison_q = account.state.queues.get_queue("poison-poison")
        assert poison_q.approximate_message_count() == 1
        assert poison_q.peek_message().content.to_bytes() == b"POISON"
