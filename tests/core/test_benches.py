"""Integration tests for the AzureBench algorithm implementations.

Small-scale runs of Algorithms 1, 3, 4 and 5 checking data-plane effects
and the presence/consistency of every recorded phase.
"""

import pytest

from repro.core import (
    OP_DELETE,
    OP_GET,
    OP_INSERT,
    OP_PEEK,
    OP_PUT,
    OP_QUERY,
    OP_UPDATE,
    PHASE_BLOCK_FULL_DOWNLOAD,
    PHASE_BLOCK_SEQ_DOWNLOAD,
    PHASE_BLOCK_UPLOAD,
    PHASE_PAGE_FULL_DOWNLOAD,
    PHASE_PAGE_RANDOM_DOWNLOAD,
    PHASE_PAGE_UPLOAD,
    BlobBenchConfig,
    RunConfig,
    SeparateQueueBenchConfig,
    SharedQueueBenchConfig,
    TableBenchConfig,
    blob_bench_body,
    phase_name,
    run_bench,
    separate_queue_bench_body,
    shared_phase_name,
    shared_queue_bench_body,
    sweep_workers,
    table_bench_body,
    table_phase_name,
)
from repro.storage import KB, MB


class TestBlobBench:
    @pytest.fixture(scope="class")
    def result(self):
        cfg = BlobBenchConfig(total_chunks=16, repeats=2)
        return run_bench(lambda: blob_bench_body(cfg),
                         RunConfig(workers=4, seed=1))

    def test_all_phases_recorded(self, result):
        for phase in (PHASE_PAGE_UPLOAD, PHASE_BLOCK_UPLOAD,
                      PHASE_PAGE_RANDOM_DOWNLOAD, PHASE_BLOCK_SEQ_DOWNLOAD,
                      PHASE_PAGE_FULL_DOWNLOAD, PHASE_BLOCK_FULL_DOWNLOAD):
            stats = result.phase(phase)
            assert stats.total_ops > 0
            assert stats.wall_time > 0

    def test_upload_volume(self, result):
        # 16 chunks x 1 MB x 2 repeats per blob kind, split across workers.
        up = result.phase(PHASE_PAGE_UPLOAD)
        assert up.total_bytes == 16 * MB * 2

    def test_download_volume_per_worker(self, result):
        # Every worker downloads all chunks per repeat.
        down = result.phase(PHASE_PAGE_RANDOM_DOWNLOAD)
        assert down.total_bytes == 16 * MB * 2 * 4

    def test_repeat_isolation(self):
        """Each repeat rebuilds the blobs; two repeats must not double the
        committed block count."""
        cfg = BlobBenchConfig(total_chunks=8, repeats=2)
        result = run_bench(lambda: blob_bench_body(cfg),
                           RunConfig(workers=2, seed=2))
        seq = result.phase(PHASE_BLOCK_SEQ_DOWNLOAD)
        # 8 sequential reads per worker per repeat.
        assert seq.total_ops == 8 * 2 * 2

    def test_deterministic(self):
        cfg = BlobBenchConfig(total_chunks=8, repeats=1)

        def once():
            r = run_bench(lambda: blob_bench_body(cfg),
                          RunConfig(workers=3, seed=7))
            return [(p.name, p.worker_id, p.start, p.end)
                    for p in sorted(r.records,
                                    key=lambda x: (x.name, x.worker_id))]

        assert once() == once()


class TestSeparateQueueBench:
    @pytest.fixture(scope="class")
    def result(self):
        cfg = SeparateQueueBenchConfig(
            total_messages=80, message_sizes=(4 * KB, 16 * KB))
        return run_bench(lambda: separate_queue_bench_body(cfg),
                         RunConfig(workers=4, seed=1))

    def test_phases_per_size(self, result):
        for size in (4 * KB, 16 * KB):
            for op in (OP_PUT, OP_PEEK, OP_GET):
                stats = result.phase(phase_name(op, size))
                assert stats.total_ops == 80

    def test_queues_cleaned_up(self):
        cfg = SeparateQueueBenchConfig(total_messages=20,
                                       message_sizes=(4 * KB,))
        config = RunConfig(workers=2, seed=1)
        from repro.compute import Deployment
        from repro.sim import SimStorageAccount
        from repro.simkit import Environment
        env = Environment()
        account = SimStorageAccount(env, seed=1)
        d = Deployment(env, account, separate_queue_bench_body(cfg),
                       instances=2, name="w")
        d.run()
        # Per-worker queues deleted; only the barrier queue remains.
        assert account.state.queues.list_queues() == ["azurebench-qsync"]

    def test_64k_rung_uses_48k_payload(self):
        cfg = SeparateQueueBenchConfig(total_messages=8,
                                       message_sizes=(64 * KB,))
        result = run_bench(lambda: separate_queue_bench_body(cfg),
                           RunConfig(workers=2, seed=1))
        put = result.phase(phase_name(OP_PUT, 64 * KB))
        assert put.total_bytes == 8 * 48 * KB  # clamped usable payload


class TestSharedQueueBench:
    def test_phases_per_think_time(self):
        cfg = SharedQueueBenchConfig(
            total_transactions=100, round_messages=50,
            think_times=(0.5, 1.0))
        result = run_bench(lambda: shared_queue_bench_body(cfg),
                           RunConfig(workers=2, seed=1))
        for think in (0.5, 1.0):
            for op in (OP_PUT, OP_PEEK, OP_GET):
                stats = result.phase(shared_phase_name(op, think))
                assert stats.total_ops == 100

    def test_think_time_excluded_from_reported_time(self):
        """Reported communication time must be far below wall time."""
        cfg = SharedQueueBenchConfig(
            total_transactions=40, round_messages=20, think_times=(2.0,))
        result = run_bench(lambda: shared_queue_bench_body(cfg),
                           RunConfig(workers=2, seed=1))
        put = result.phase(shared_phase_name(OP_PUT, 2.0))
        # 2 rounds x 3 thinks x 2 s = 12 s of pure thinking per worker.
        assert put.mean_worker_time < 6.0

    def test_shared_queue_removed_after_run(self):
        from repro.compute import Deployment
        from repro.sim import SimStorageAccount
        from repro.simkit import Environment
        cfg = SharedQueueBenchConfig(
            total_transactions=20, round_messages=20, think_times=(0.5,))
        env = Environment()
        account = SimStorageAccount(env, seed=1)
        Deployment(env, account, shared_queue_bench_body(cfg),
                   instances=2, name="w").run()
        assert "azurebenchqueue" not in account.state.queues.list_queues()


class TestTableBench:
    @pytest.fixture(scope="class")
    def result(self):
        cfg = TableBenchConfig(entity_count=20, entity_sizes=(4 * KB,))
        return run_bench(lambda: table_bench_body(cfg),
                         RunConfig(workers=3, seed=1))

    def test_all_ops_recorded(self, result):
        for op in (OP_INSERT, OP_QUERY, OP_UPDATE, OP_DELETE):
            stats = result.phase(table_phase_name(op, 4 * KB))
            assert stats.total_ops == 60  # 20 x 3 workers

    def test_table_empty_after_run(self):
        from repro.compute import Deployment
        from repro.sim import SimStorageAccount
        from repro.simkit import Environment
        cfg = TableBenchConfig(entity_count=10, entity_sizes=(4 * KB,))
        env = Environment()
        account = SimStorageAccount(env, seed=1)
        Deployment(env, account, table_bench_body(cfg),
                   instances=2, name="w").run()
        assert account.state.tables.get_table("AzureBenchTable").entity_count() == 0

    def test_shared_partition_strategy(self):
        cfg = TableBenchConfig(entity_count=10, entity_sizes=(4 * KB,),
                               partition_strategy="shared")
        result = run_bench(lambda: table_bench_body(cfg),
                           RunConfig(workers=2, seed=1))
        assert result.phase(table_phase_name(OP_INSERT, 4 * KB)).total_ops == 20

    def test_unknown_strategy_rejected(self):
        cfg = TableBenchConfig(entity_count=2, entity_sizes=(4 * KB,),
                               partition_strategy="bogus")
        with pytest.raises(Exception):
            run_bench(lambda: table_bench_body(cfg), RunConfig(workers=1))


class TestRunner:
    def test_sweep_returns_each_scale(self):
        cfg = TableBenchConfig(entity_count=5, entity_sizes=(4 * KB,))
        sweep = sweep_workers(lambda: table_bench_body(cfg), [1, 2, 4],
                              RunConfig(seed=1))
        assert list(sweep) == [1, 2, 4]
        for workers, result in sweep.items():
            assert result.workers == workers
            assert result.phase(table_phase_name(OP_INSERT, 4 * KB)).total_ops \
                == 5 * workers

    def test_runner_rejects_non_recorder_bodies(self):
        def bad_body(ctx):
            yield ctx.sleep(1)
            return "not a recorder"

        with pytest.raises(RuntimeError, match="PhaseRecorder"):
            run_bench(lambda: bad_body, RunConfig(workers=1))
