"""Tests for benchmark metrics containers."""

import pytest

from repro.core import BenchResult, PhaseRecorder
from repro.simkit import Environment
from repro.storage import MB


@pytest.fixture
def env():
    return Environment()


class TestPhaseRecorder:
    def test_records_phase(self, env):
        rec = PhaseRecorder(env, worker_id=0)

        def proc(env):
            rec.start("upload")
            yield env.timeout(4)
            rec.add_op(nbytes=100)
            rec.add_op(nbytes=200)
            rec.stop()

        env.process(proc(env))
        env.run()
        (r,) = rec.records
        assert r.name == "upload" and r.duration == 4
        assert r.ops == 2 and r.nbytes == 300

    def test_nested_start_rejected(self, env):
        rec = PhaseRecorder(env, 0)
        rec.start("a")
        with pytest.raises(RuntimeError):
            rec.start("b")

    def test_stop_without_start_rejected(self, env):
        rec = PhaseRecorder(env, 0)
        with pytest.raises(RuntimeError):
            rec.stop()

    def test_add_op_without_phase_rejected(self, env):
        rec = PhaseRecorder(env, 0)
        with pytest.raises(RuntimeError):
            rec.add_op()

    def test_retries_tracked(self, env):
        rec = PhaseRecorder(env, 0)
        rec.start("x")
        rec.add_retry()
        rec.add_retry()
        r = rec.stop()
        assert r.retries == 2

    def test_record_span(self, env):
        rec = PhaseRecorder(env, 3)

        def proc(env):
            yield env.timeout(10)
            rec.record_span("acc", 2.5, ops=7, nbytes=70)

        env.process(proc(env))
        env.run()
        (r,) = rec.records
        assert r.start == 7.5 and r.end == 10 and r.ops == 7

    def test_record_span_negative_rejected(self, env):
        rec = PhaseRecorder(env, 0)
        with pytest.raises(ValueError):
            rec.record_span("x", -1)


class TestBenchResult:
    def make_result(self, env):
        recs = []
        for wid, (start, end, nbytes) in enumerate(
                [(0, 10, 5 * MB), (2, 12, 5 * MB)]):
            rec = PhaseRecorder(env, wid)
            rec.record_span("phase", 0)
            rec.records[0].start = start
            rec.records[0].end = end
            rec.records[0].ops = 5
            rec.records[0].nbytes = nbytes
            recs.append(rec)
        return BenchResult(2, recs, label="test")

    def test_phase_stats(self, env):
        result = self.make_result(env)
        stats = result.phase("phase")
        assert stats.wall_time == 12  # max end - min start
        assert stats.mean_worker_time == 10
        assert stats.max_worker_time == 10
        assert stats.total_ops == 10
        assert stats.total_bytes == 10 * MB
        assert stats.throughput_mb_per_s == pytest.approx(10 / 12)
        assert stats.ops_per_s == pytest.approx(10 / 12)
        assert stats.mean_op_time == pytest.approx(10 * 2 / 10)

    def test_missing_phase(self, env):
        result = self.make_result(env)
        with pytest.raises(KeyError):
            result.phase("ghost")
        assert not result.has_phase("ghost")
        assert result.has_phase("phase")

    def test_phase_names_and_all_stats(self, env):
        result = self.make_result(env)
        assert result.phase_names() == ["phase"]
        assert set(result.all_stats()) == {"phase"}

    def test_zero_wall_time(self, env):
        rec = PhaseRecorder(env, 0)
        rec.record_span("empty", 0)
        result = BenchResult(1, [rec])
        stats = result.phase("empty")
        assert stats.throughput_bytes_per_s == 0.0
        assert stats.ops_per_s == 0.0
        assert stats.mean_op_time == 0.0
