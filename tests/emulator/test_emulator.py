"""Tests for the thread-safe local emulator."""

import threading

import pytest

from repro.emulator import EmulatorAccount
from repro.storage import MB, ManualClock
from repro.storage.table import BatchOperation


@pytest.fixture
def account():
    # A manual clock makes visibility-timeout tests deterministic.
    return EmulatorAccount(clock=ManualClock())


class TestEmulatorBlob:
    def test_block_blob_roundtrip(self, account):
        blob = account.blob_client()
        blob.create_container("cont")
        blob.put_block("cont", "bb", "b1", b"hello ")
        blob.put_block("cont", "bb", "b2", b"world")
        blob.put_block_list("cont", "bb", ["b1", "b2"])
        assert blob.download_block_blob("cont", "bb").to_bytes() == b"hello world"
        assert blob.block_count("cont", "bb") == 2
        assert blob.get_block("cont", "bb", 1).to_bytes() == b"world"

    def test_page_blob_roundtrip(self, account):
        blob = account.blob_client()
        blob.create_container("cont")
        blob.create_page_blob("cont", "pb", 1 * MB)
        blob.put_page("cont", "pb", 0, b"z" * 512)
        assert blob.get_page("cont", "pb", 0, 512).to_bytes() == b"z" * 512
        assert blob.download_page_blob("cont", "pb").size == 1 * MB

    def test_list_and_delete(self, account):
        blob = account.blob_client()
        blob.create_container("cont")
        blob.upload_blob("cont", "a", b"1")
        blob.upload_blob("cont", "b", b"2")
        assert blob.list_blobs("cont") == ["a", "b"]
        blob.delete_blob("cont", "a")
        assert blob.list_blobs("cont") == ["b"]
        blob.delete_container("cont")


class TestEmulatorQueue:
    def test_message_lifecycle(self, account):
        q = account.queue_client()
        q.create_queue("tasks")
        q.put_message("tasks", b"m")
        assert q.peek_message("tasks").content.to_bytes() == b"m"
        m = q.get_message("tasks", visibility_timeout=60)
        q.delete_message("tasks", m.message_id, m.pop_receipt)
        assert q.get_message_count("tasks") == 0
        q.delete_queue("tasks")
        assert q.list_queues() == []

    def test_visibility_with_manual_clock(self, account):
        q = account.queue_client()
        q.create_queue("tasks")
        q.put_message("tasks", b"m")
        q.get_message("tasks", visibility_timeout=30)
        assert q.get_message("tasks") is None
        account.state.clock.advance(30)
        assert q.get_message("tasks") is not None

    def test_update_message(self, account):
        q = account.queue_client()
        q.create_queue("tasks")
        q.put_message("tasks", b"old")
        m = q.get_message("tasks", visibility_timeout=60)
        q.update_message("tasks", m.message_id, m.pop_receipt, b"new",
                         visibility_timeout=0)
        assert q.peek_message("tasks").content.to_bytes() == b"new"


class TestEmulatorTable:
    def test_crud(self, account):
        t = account.table_client()
        t.create_table("Tab")
        t.insert("Tab", "p", "r", {"V": 1})
        assert t.get("Tab", "p", "r")["V"] == 1
        t.update("Tab", "p", "r", {"V": 2})
        t.merge("Tab", "p", "r", {"W": 3})
        assert t.get("Tab", "p", "r").properties() == {"V": 2, "W": 3}
        t.delete("Tab", "p", "r")
        t.delete_table("Tab")

    def test_query_interfaces(self, account):
        t = account.table_client()
        t.create_table("Tab")
        for i in range(6):
            t.insert("Tab", f"p{i % 2}", f"r{i}", {"V": i})
        res = t.query("Tab", "V ge 3")
        assert sorted(e["V"] for e in res) == [3, 4, 5]
        part = t.query_partition("Tab", "p0")
        assert [e["V"] for e in part] == [0, 2, 4]
        page = t.query("Tab", top=2)
        assert len(page) == 2 and page.continuation is not None

    def test_batch(self, account):
        t = account.table_client()
        t.create_table("Tab")
        t.execute_batch("Tab", [
            BatchOperation("insert", "p", "r1", {"V": 1}),
            BatchOperation("insert", "p", "r2", {"V": 2}),
        ])
        assert t.get("Tab", "p", "r2")["V"] == 2


class TestThreadSafety:
    def test_concurrent_queue_consumers_no_duplicates(self):
        account = EmulatorAccount()
        q = account.queue_client()
        q.create_queue("tasks")
        n = 200
        for i in range(n):
            q.put_message("tasks", f"m{i}".encode())

        got = []
        lock = threading.Lock()

        def consume():
            client = account.queue_client()
            while True:
                m = client.get_message("tasks", visibility_timeout=300)
                if m is None:
                    return
                with lock:
                    got.append(m.content.to_bytes())
                client.delete_message("tasks", m.message_id, m.pop_receipt)

        threads = [threading.Thread(target=consume) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(got) == sorted(f"m{i}".encode() for i in range(n))
        assert q.get_message_count("tasks") == 0

    def test_concurrent_table_inserts_distinct_rows(self):
        account = EmulatorAccount()
        t = account.table_client()
        t.create_table("Tab")

        def insert_rows(wid):
            client = account.table_client()
            for i in range(50):
                client.insert("Tab", f"w{wid}", f"r{i}", {"V": i})

        threads = [threading.Thread(target=insert_rows, args=(w,))
                   for w in range(6)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert account.state.tables.get_table("Tab").entity_count() == 300
        assert account.state.recompute_usage() == account.state.bytes_used

    def test_concurrent_blob_block_staging(self):
        account = EmulatorAccount()
        blob = account.blob_client()
        blob.create_container("cont")

        def stage(wid):
            client = account.blob_client()
            for i in range(20):
                client.put_block("cont", "shared", f"w{wid}-b{i:02d}",
                                 bytes([wid]) * 64)
            client.put_block_list(
                "cont", "shared", [f"w{wid}-b{i:02d}" for i in range(20)],
                merge=True)

        threads = [threading.Thread(target=stage, args=(w,)) for w in range(5)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert blob.block_count("cont", "shared") == 100
        assert blob.download_block_blob("cont", "shared").size == 100 * 64

    def test_artificial_latency(self):
        import time
        account = EmulatorAccount(latency=0.01)
        q = account.queue_client()
        start = time.monotonic()
        q.create_queue("tasks")
        q.put_message("tasks", b"x")
        elapsed = time.monotonic() - start
        assert elapsed >= 0.02


class TestEmulatorCache:
    def test_roundtrip(self, account):
        c = account.cache_client()
        c.create_cache("hot")
        c.put("hot", "k", b"value")
        assert c.get("hot", "k").to_bytes() == b"value"
        assert c.get("hot", "ghost") is None
        assert c.remove("hot", "k") is True

    def test_ttl_with_manual_clock(self, account):
        c = account.cache_client()
        c.create_cache("hot", default_ttl=50)
        c.put("hot", "k", b"v")
        account.state.clock.advance(50)
        assert c.get("hot", "k") is None

    def test_threaded_cache_access(self):
        account = EmulatorAccount()
        c = account.cache_client()
        c.create_cache("hot")

        def hammer(wid):
            client = account.cache_client()
            for i in range(100):
                client.put("hot", f"k{wid}-{i % 10}", bytes([wid]) * 32)
                client.get("hot", f"k{wid}-{i % 10}")

        threads = [threading.Thread(target=hammer, args=(w,)) for w in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = account.cache_state.get_cache("hot").stats
        assert stats.requests == 600
        assert stats.hits == 600  # every get follows its own put


class TestEmulatorTableParity:
    def test_upserts(self, account):
        t = account.table_client()
        t.create_table("Ups")
        t.insert_or_replace("Ups", "p", "r", {"A": 1})
        t.insert_or_replace("Ups", "p", "r", {"B": 2})
        assert t.get("Ups", "p", "r").properties() == {"B": 2}
        t.insert_or_merge("Ups", "p", "r", {"C": 3})
        assert t.get("Ups", "p", "r").properties() == {"B": 2, "C": 3}

    def test_select_projection(self, account):
        t = account.table_client()
        t.create_table("Sel")
        t.insert("Sel", "p", "r", {"A": 1, "B": 2})
        res = t.query("Sel", select=["A"])
        assert res.entities[0].properties() == {"A": 1}
        part = t.query_partition("Sel", "p", select=["B"])
        assert part[0].properties() == {"B": 2}
