"""Engine tests: every fault kind injected against the simulated fabric."""

import pytest

from repro.cluster import Service
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.sim import SimStorageAccount
from repro.simkit import Environment
from repro.storage import (
    OperationTimedOutError,
    ServerBusyError,
    TransientServerError,
)


def faulted_account(*specs, seed=1, plan_seed=0):
    env = Environment()
    account = SimStorageAccount(env, seed=seed)
    plan = FaultPlan(specs, seed=plan_seed)
    account.cluster.set_fault_plan(plan)
    return env, account, plan


def run_one(env, gen):
    """Drive one client-op generator to completion; return its value."""
    p = env.process(gen)
    env.run()
    return p.value


class TestPlanBasics:
    def test_add_is_fluent_and_typed(self):
        plan = FaultPlan().add(FaultSpec(kind=FaultKind.LATENCY))
        assert len(plan) == 1
        with pytest.raises(TypeError):
            plan.add("not a spec")

    def test_probability_one_draws_no_randomness(self):
        # Adding a certain fault must not perturb another spec's draws.
        a = FaultPlan(seed=5)
        b = FaultPlan(seed=5)
        b._sample(1.0)
        b._sample(0.0)
        draws_a = [a._sample(0.5) for _ in range(32)]
        draws_b = [b._sample(0.5) for _ in range(32)]
        assert draws_a == draws_b


class TestThrottleAndTransient:
    def test_throttle_window_rejects_with_503(self):
        env, account, plan = faulted_account(
            FaultSpec(kind=FaultKind.THROTTLE, service="queue",
                      start=0.0, duration=10.0, retry_after=2.0))
        qc = account.queue_client()
        with pytest.raises(ServerBusyError) as ei:
            run_one(env, qc.create_queue("faultq"))
        assert ei.value.retry_after == 2.0
        assert plan.counts[FaultKind.THROTTLE] == 1

    def test_transient_error_is_a_retryable_500(self):
        env, account, plan = faulted_account(
            FaultSpec(kind=FaultKind.TRANSIENT_ERROR, service="queue"))
        qc = account.queue_client()
        with pytest.raises(TransientServerError) as ei:
            run_one(env, qc.create_queue("faultq"))
        assert ei.value.status_code == 500

    def test_faults_end_when_the_window_closes(self):
        env, account, _ = faulted_account(
            FaultSpec(kind=FaultKind.THROTTLE, service="queue",
                      start=0.0, duration=5.0))
        qc = account.queue_client()

        def body():
            yield env.timeout(5.0)
            yield from qc.create_queue("faultq")
            return "ok"

        assert run_one(env, body()) == "ok"

    def test_other_services_unaffected(self):
        env, account, _ = faulted_account(
            FaultSpec(kind=FaultKind.THROTTLE, service="table"))
        qc = account.queue_client()
        run_one(env, qc.create_queue("faultq"))  # must not raise


class TestTimeout:
    def test_timeout_burns_client_patience_then_fails(self):
        env, account, plan = faulted_account(
            FaultSpec(kind=FaultKind.TIMEOUT, service="queue",
                      timeout_after=5.0))
        qc = account.queue_client()
        with pytest.raises(OperationTimedOutError):
            run_one(env, qc.create_queue("faultq"))
        # The doomed request consumed exactly its timeout budget.
        assert env.now == 5.0
        assert plan.counts[FaultKind.TIMEOUT] == 1


class TestLatency:
    def test_latency_window_stretches_operations(self):
        def timed_put(factor_spec):
            specs = (factor_spec,) if factor_spec else ()
            env, account, _ = faulted_account(*specs)
            qc = account.queue_client()

            def body():
                yield from qc.create_queue("faultq")
                t0 = env.now
                yield from qc.put_message("faultq", b"x")
                return env.now - t0

            return run_one(env, body())

        base = timed_put(None)
        slow = timed_put(FaultSpec(kind=FaultKind.LATENCY, latency_factor=8.0))
        # Same seed, same op sequence: only the multiplier differs.
        assert slow == pytest.approx(8.0 * base)

    def test_overlapping_latency_windows_compound(self):
        env, account, _ = faulted_account(
            FaultSpec(kind=FaultKind.LATENCY, latency_factor=2.0),
            FaultSpec(kind=FaultKind.LATENCY, latency_factor=3.0))
        factor, timeout_spec = account.cluster.fault_plan.pre_execute(
            _FakeOp(), 0.0, account.cluster)
        assert factor == pytest.approx(6.0)
        assert timeout_spec is None


class _FakeOp:
    service = Service.QUEUE
    partition = "faultq"


class TestPartitionCrash:
    def test_crash_fails_range_then_reassigns_to_fresh_server(self):
        env, account, plan = faulted_account(
            FaultSpec(kind=FaultKind.PARTITION_CRASH, service="queue",
                      partition="hot", start=2.0, failover_delay=4.0))
        qc = account.queue_client()
        pool = account.cluster.pool_for(Service.QUEUE)
        log = []

        def body():
            yield from qc.create_queue("hot")
            yield from qc.put_message("hot", b"x")
            old_server = pool.server_for("hot")
            yield env.timeout(3.0 - env.now)  # inside the crash window
            try:
                yield from qc.put_message("hot", b"y")
            except ServerBusyError:
                log.append("crashed")
            yield env.timeout(6.0 - env.now)  # failover complete
            yield from qc.put_message("hot", b"z")
            log.append("reassigned" if pool.server_for("hot") is not old_server
                       else "same-server")

        env.process(body())
        env.run()
        assert log == ["crashed", "reassigned"]
        assert plan.counts[FaultKind.PARTITION_CRASH] == 1
        # State survives the failover: durability is the store's, not the
        # server's (Calder SOSP'11 — the range moves, the data does not).
        assert account.state.queues.get_queue("hot") \
            .approximate_message_count() == 2  # "y" died with the server

    def test_sibling_partitions_unaffected_during_crash(self):
        env, account, _ = faulted_account(
            FaultSpec(kind=FaultKind.PARTITION_CRASH, service="queue",
                      partition="hot", start=0.0, failover_delay=50.0))
        qc = account.queue_client()
        run_one(env, qc.create_queue("cold"))  # different server: no fault


class TestQueueDataPlane:
    def test_message_loss_acks_but_never_lands(self):
        env, account, plan = faulted_account(
            FaultSpec(kind=FaultKind.MESSAGE_LOSS, service="queue",
                      partition="faultq", probability=1.0))
        qc = account.queue_client()

        def body():
            yield from qc.create_queue("faultq")
            yield from qc.put_message("faultq", b"doomed")  # acked, no error
            count = yield from qc.get_message_count("faultq")
            return count

        assert run_one(env, body()) == 0
        assert plan.counts[FaultKind.MESSAGE_LOSS] == 1

    def test_duplicate_delivery_leaves_message_visible(self):
        env, account, plan = faulted_account(
            FaultSpec(kind=FaultKind.DUPLICATE_DELIVERY, service="queue",
                      partition="faultq", probability=1.0))
        qc = account.queue_client()

        def body():
            yield from qc.create_queue("faultq")
            yield from qc.put_message("faultq", b"x")
            first = yield from qc.get_message("faultq", visibility_timeout=60.0)
            second = yield from qc.get_message("faultq", visibility_timeout=60.0)
            return first, second

        first, second = run_one(env, body())
        # At-least-once anomaly: same payload delivered twice, immediately.
        assert first.content.to_bytes() == second.content.to_bytes() == b"x"
        assert second.dequeue_count == 2
        assert plan.counts[FaultKind.DUPLICATE_DELIVERY] == 2


class TestTraceDeterminism:
    def _trace(self, plan_seed):
        env, account, plan = faulted_account(
            FaultSpec(kind=FaultKind.THROTTLE, service="queue",
                      probability=0.5, retry_after=0.1),
            seed=1, plan_seed=plan_seed)
        qc = account.queue_client()

        def body():
            from repro.sim import retrying
            yield from retrying(env, lambda: qc.create_queue("faultq"))
            for i in range(20):
                yield from retrying(env, lambda: qc.put_message("faultq", b"x"))

        env.process(body())
        env.run()
        return plan.trace()

    def test_same_seed_same_trace(self):
        assert self._trace(7) == self._trace(7)

    def test_trace_records_occurrences(self):
        trace = self._trace(7)
        assert trace  # the storm did hit at p=0.5 over 20+ draws
        assert all(e[1] == "throttle" and e[2] == "queue" for e in trace)
        times = [e[0] for e in trace]
        assert times == sorted(times)
