"""Tests for the named fault profiles and the chaos harness.

Includes the PR's two acceptance tests: fault injection is deterministic
(an identical faulted run diffs clean, trace and all), and paper fidelity
is preserved (the harness with no faults and the default fixed retry
matches a plain paper-style run exactly).
"""

import pytest

from repro.faults import FaultPlan
from repro.faults.profiles import (
    POLICIES,
    PROFILES,
    build_plan,
    get_profile,
    make_policy,
    run_faulted_taskpool,
)


class TestRegistry:
    def test_every_profile_builds_a_plan(self):
        for name in PROFILES:
            plan = build_plan(name, seed=3)
            assert isinstance(plan, FaultPlan)
            assert plan.seed == 3

    def test_plans_are_fresh_per_build(self):
        # Profiles are stateless; plans (RNG, trace) must not be shared.
        assert build_plan("failover") is not build_plan("failover")

    def test_policies_are_fresh_per_make(self):
        a, b = make_policy("fixed"), make_policy("fixed")
        assert a is not b and a.stats is not b.stats

    def test_unknown_names_raise_with_suggestions(self):
        with pytest.raises(KeyError, match="available:.*throttle-storm"):
            get_profile("nope")
        with pytest.raises(KeyError, match="available:.*expo-jitter"):
            make_policy("nope")

    def test_expected_registry_contents(self):
        assert {"none", "throttle-storm", "failover", "flaky-500s",
                "slow-network", "timeouts", "lossy-queue"} <= set(PROFILES)
        assert {"fixed", "expo-jitter", "retry-budget"} <= set(POLICIES)


class TestDeterminism:
    def test_faulted_run_is_bit_identical_on_rerun(self):
        """Acceptance: run the same faulted benchmark twice and diff —
        every number, counter, and trace line must match."""
        first = run_faulted_taskpool("throttle-storm", "fixed",
                                     tasks=12, workers=3)
        second = run_faulted_taskpool("throttle-storm", "fixed",
                                      tasks=12, workers=3)
        assert first == second
        assert first["trace"]  # and the runs were actually faulted

    def test_seed_changes_the_storm(self):
        a = run_faulted_taskpool("throttle-storm", "fixed",
                                 tasks=12, workers=3, seed=31)
        b = run_faulted_taskpool("throttle-storm", "fixed",
                                 tasks=12, workers=3, seed=32)
        assert a["trace"] != b["trace"]


class TestPaperFidelity:
    def test_healthy_harness_matches_plain_paper_run(self):
        """Acceptance: with no faults and the default fixed retry, the
        chaos harness (empty plan, supervisor, split web/worker apps) is
        time-identical to the paper's plain bag-of-tasks run."""
        from repro.compute import Fabric
        from repro.framework import TaskPoolApp, TaskPoolConfig
        from repro.sim import SimStorageAccount
        from repro.simkit import Environment

        def plain_run(tasks=24, workers=4, work_s=0.5, seed=31):
            env = Environment()
            account = SimStorageAccount(env, seed=seed)

            def handler(ctx, payload):
                yield ctx.sleep(work_s)
                return payload

            app = TaskPoolApp(
                TaskPoolConfig(name="chaos", visibility_timeout=60.0,
                               idle_poll_interval=0.5), handler)
            fabric = Fabric(env, account)
            payloads = [f"t{i}".encode() for i in range(tasks)]
            fabric.deploy(app.web_role_body(payloads, poll_interval=0.5),
                          instances=1, name="web")
            fabric.deploy(app.worker_role_body(), instances=workers,
                          name="workers")
            fabric.run_all()
            return env.now, len(app.results)

        harness = run_faulted_taskpool("none", "fixed")
        plain_time, plain_results = plain_run()
        assert harness["completion_time"] == plain_time
        assert harness["results_collected"] == plain_results == 24
        assert harness["retries"] == 0
        assert harness["faults_injected"] == {}
        assert harness["trace"] == []
        assert harness["availability"] == {"queue": 1.0}


class TestHarnessAccounting:
    def test_throttle_storm_reports_retries_and_availability(self):
        result = run_faulted_taskpool("throttle-storm", "fixed",
                                      tasks=12, workers=3)
        assert result["completed"]
        assert result["retries"] > 0
        assert result["retry_amplification"] > 1.0
        assert 0.0 < result["availability"]["queue"] < 1.0
        assert result["faults_injected"].get("throttle", 0) > 0
        assert result["total_backoff"] > 0.0

    def test_giveup_policy_recycles_workers(self):
        # A retry budget that runs dry surfaces errors; contained crashes
        # plus the supervisor plus queue redelivery still finish the job.
        result = run_faulted_taskpool("throttle-storm", "retry-budget")
        assert result["completed"]
        assert result["giveups"] > 0
        assert result["results_collected"] == result["tasks"]

    def test_lossy_queue_duplicates_can_mask_losses(self):
        result = run_faulted_taskpool("lossy-queue", "fixed")
        injected = result["faults_injected"]
        assert injected.get("message_loss", 0) > 0 or \
            injected.get("duplicate_delivery", 0) > 0
        # At-least-once semantics: the run may still complete because
        # duplicate deliveries re-execute tasks whose puts were dropped.
        assert result["results_collected"] <= result["tasks"] \
            + injected.get("duplicate_delivery", 0)
