"""Tests for FaultSpec / FaultEvent validation and matching."""

import pytest

from repro.faults import FaultEvent, FaultKind, FaultSpec


class TestValidation:
    def test_kind_must_be_enum(self):
        with pytest.raises(TypeError):
            FaultSpec(kind="outage")

    @pytest.mark.parametrize("kwargs", [
        dict(duration=0.0),
        dict(duration=-1.0),
        dict(start=-0.5),
        dict(probability=-0.1),
        dict(probability=1.5),
        dict(latency_factor=0.0),
        dict(timeout_after=0.0),
        dict(failover_delay=0.0),
    ])
    def test_bad_numbers_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.OUTAGE, **kwargs)

    @pytest.mark.parametrize("kind", [
        FaultKind.MESSAGE_LOSS, FaultKind.DUPLICATE_DELIVERY,
    ])
    def test_queue_only_kinds(self, kind):
        with pytest.raises(ValueError):
            FaultSpec(kind=kind, service="blob")
        # queue or wildcard is fine
        FaultSpec(kind=kind, service="queue")
        FaultSpec(kind=kind)

    def test_frozen(self):
        spec = FaultSpec(kind=FaultKind.THROTTLE)
        with pytest.raises(AttributeError):
            spec.start = 5.0


class TestWindow:
    def test_active_half_open_window(self):
        spec = FaultSpec(kind=FaultKind.THROTTLE, start=2.0, duration=3.0)
        assert not spec.active(1.999)
        assert spec.active(2.0)
        assert spec.active(4.999)
        assert not spec.active(5.0)  # end-exclusive

    def test_default_window_is_forever(self):
        spec = FaultSpec(kind=FaultKind.LATENCY)
        assert spec.active(0.0) and spec.active(1e12)

    def test_crash_window_ends_at_failover(self):
        spec = FaultSpec(kind=FaultKind.PARTITION_CRASH, start=4.0,
                         duration=999.0, failover_delay=15.0)
        assert spec.end == 19.0  # failover_delay governs, not duration


class TestMatching:
    def test_wildcards(self):
        spec = FaultSpec(kind=FaultKind.THROTTLE)
        assert spec.matches("queue", "q1")
        assert spec.matches("blob", "container/x")

    def test_service_scoped(self):
        spec = FaultSpec(kind=FaultKind.THROTTLE, service="queue")
        assert spec.matches("queue", "anything")
        assert not spec.matches("table", "anything")

    def test_partition_scoped(self):
        spec = FaultSpec(kind=FaultKind.OUTAGE, service="queue",
                         partition="q1")
        assert spec.matches("queue", "q1")
        assert not spec.matches("queue", "q2")


class TestEvent:
    def test_as_tuple_is_plain_and_diffable(self):
        event = FaultEvent(1.5, FaultKind.TIMEOUT, "queue", "q1")
        assert event.as_tuple() == (1.5, "timeout", "queue", "q1")
