"""Tests for the queue-based barrier (paper Algorithm 2)."""

import pytest

from repro.framework import QueueBarrier
from repro.sim import SimStorageAccount
from repro.simkit import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def account(env):
    return SimStorageAccount(env, seed=5)


def launch_workers(env, account, n, body):
    procs = []
    for wid in range(n):
        qc = account.queue_client()
        barrier = QueueBarrier(qc, "bar-queue", n, env=env)
        procs.append(env.process(body(env, barrier, wid)))
    return procs


class TestBarrier:
    def test_no_worker_crosses_early(self, env, account):
        events = []

        def body(env, barrier, wid):
            yield from barrier.ensure_queue()
            yield env.timeout(wid * 2.0)  # staggered arrivals
            events.append(("arrive", wid, env.now))
            yield from barrier.wait()
            events.append(("cross", wid, env.now))

        launch_workers(env, account, 4, body)
        env.run()
        last_arrival = max(t for k, _, t in events if k == "arrive")
        first_cross = min(t for k, _, t in events if k == "cross")
        assert first_cross >= last_arrival

    def test_multiple_phases(self, env, account):
        phase_log = []

        def body(env, barrier, wid):
            yield from barrier.ensure_queue()
            for phase in range(3):
                yield env.timeout(0.5 * (wid + 1))
                yield from barrier.wait()
                phase_log.append((phase, wid, env.now))

        launch_workers(env, account, 3, body)
        env.run()
        # For each phase, all crossings happen before any next-phase arrival
        # completes its barrier.
        for phase in range(2):
            this_phase = [t for p, _, t in phase_log if p == phase]
            next_phase = [t for p, _, t in phase_log if p == phase + 1]
            assert max(this_phase) <= min(next_phase)

    def test_sync_count_advances(self, env, account):
        def body(env, barrier, wid):
            yield from barrier.ensure_queue()
            yield from barrier.wait()
            yield from barrier.wait()
            return barrier.sync_count

        procs = launch_workers(env, account, 2, body)
        env.run()
        assert [p.value for p in procs] == [2, 2]

    def test_explicit_sync_count(self, env, account):
        def body(env, barrier, wid):
            yield from barrier.ensure_queue()
            yield from barrier.wait(1)
            yield from barrier.wait(2)
            return barrier.sync_count

        procs = launch_workers(env, account, 2, body)
        env.run()
        assert all(p.value == 2 for p in procs)

    def test_stale_sync_count_rejected(self, env, account):
        def body(env, barrier, wid):
            yield from barrier.ensure_queue()
            yield from barrier.wait(1)
            try:
                yield from barrier.wait(1)
            except ValueError:
                return "rejected"

        procs = launch_workers(env, account, 1, body)
        env.run()
        assert procs[0].value == "rejected"

    def test_single_worker_fast_path(self, env, account):
        def body(env, barrier, wid):
            yield from barrier.ensure_queue()
            yield from barrier.wait()
            return env.now

        procs = launch_workers(env, account, 1, body)
        env.run()
        # One worker: first count poll already satisfies the barrier.
        assert procs[0].value < 1.0

    def test_time_in_barrier_accumulates(self, env, account):
        def body(env, barrier, wid):
            yield from barrier.ensure_queue()
            yield env.timeout(wid * 3.0)
            yield from barrier.wait()
            return barrier.time_in_barrier

        procs = launch_workers(env, account, 3, body)
        env.run()
        times = [p.value for p in procs]
        # The earliest arriver waited the longest.
        assert times[0] > times[-1]

    def test_messages_survive_barrier_queue(self, env, account):
        """Barrier messages are never deleted (the paper's core trick)."""
        def body(env, barrier, wid):
            yield from barrier.ensure_queue()
            yield from barrier.wait()
            yield from barrier.wait()

        launch_workers(env, account, 2, body)
        env.run()
        q = account.state.queues.get_queue("bar-queue")
        assert q.approximate_message_count() == 4  # 2 workers x 2 phases

    def test_workers_validation(self, account):
        with pytest.raises(ValueError):
            QueueBarrier(account.queue_client(), "bar-queue", 0)


class TestBarrierProperty:
    def test_random_arrival_patterns(self):
        """Hypothesis-style sweep: random stagger patterns never let any
        worker cross phase k before every worker arrived at phase k."""
        import numpy as np
        for seed in range(5):
            rng = np.random.default_rng(seed)
            env = Environment()
            account = SimStorageAccount(env, seed=seed)
            n = int(rng.integers(2, 6))
            phases = int(rng.integers(1, 4))
            staggers = rng.uniform(0, 3, size=(n, phases))
            events = []

            def body(env, account, wid):
                qc = account.queue_client()
                b = QueueBarrier(qc, "bar-queue", n, env=env)
                yield from b.ensure_queue()
                for phase in range(phases):
                    yield env.timeout(float(staggers[wid][phase]))
                    events.append(("arrive", phase, wid, env.now))
                    yield from b.wait()
                    events.append(("cross", phase, wid, env.now))

            for w in range(n):
                env.process(body(env, account, w))
            env.run()
            for phase in range(phases):
                arrivals = [t for k, p, _, t in events
                            if k == "arrive" and p == phase]
                crossings = [t for k, p, _, t in events
                             if k == "cross" and p == phase]
                assert len(arrivals) == len(crossings) == n
                assert min(crossings) >= max(arrivals), (seed, phase)
