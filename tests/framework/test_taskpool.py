"""Tests for the generic bag-of-tasks framework (paper Section III)."""

import json

import pytest

from repro.compute import Fabric, RoleStatus
from repro.framework import TaskPoolApp, TaskPoolConfig
from repro.sim import SimStorageAccount
from repro.simkit import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def account(env):
    return SimStorageAccount(env, seed=9)


def square_handler(ctx, payload):
    n = int(payload.decode())
    yield ctx.sleep(0.01)
    return str(n * n).encode()


class TestTaskPool:
    def test_all_tasks_processed(self, env, account):
        fabric = Fabric(env, account)
        app = TaskPoolApp(TaskPoolConfig(name="sq"), square_handler)
        tasks = [str(i).encode() for i in range(12)]
        fabric.deploy(app.web_role_body(tasks), instances=1, name="web")
        fabric.deploy(app.worker_role_body(), instances=3, name="workers")
        results = fabric.run_all()
        assert sorted(int(r.payload) for r in app.results) == \
            sorted(i * i for i in range(12))
        assert sum(results["workers"]) == 12
        assert app.tasks_submitted == 12

    def test_progress_reported(self, env, account):
        fabric = Fabric(env, account)
        app = TaskPoolApp(TaskPoolConfig(name="sq"), square_handler)
        fabric.deploy(app.web_role_body([b"1", b"2"]), instances=1, name="web")
        fabric.deploy(app.worker_role_body(), instances=1, name="workers")
        fabric.run_all()
        counts = [c for _, c in app.progress]
        assert counts[-1] >= 2
        assert counts == sorted(counts)  # progress is monotone

    def test_multiple_task_queues(self, env, account):
        fabric = Fabric(env, account)
        app = TaskPoolApp(TaskPoolConfig(name="sq", task_queues=3),
                          square_handler)
        tasks = [str(i).encode() for i in range(9)]
        fabric.deploy(app.web_role_body(tasks), instances=1, name="web")
        fabric.deploy(app.worker_role_body(), instances=3, name="workers")
        fabric.run_all()
        assert len(app.results) == 9

    def test_workers_exit_on_stop_signal(self, env, account):
        fabric = Fabric(env, account)
        app = TaskPoolApp(TaskPoolConfig(name="sq"), square_handler)
        fabric.deploy(app.web_role_body([b"1"]), instances=1, name="web")
        workers = fabric.deploy(app.worker_role_body(), instances=4,
                                name="workers")
        fabric.run_all()
        assert all(s is RoleStatus.COMPLETED for s in workers.statuses())

    def test_no_result_collection(self, env, account):
        side_effects = []

        def handler(ctx, payload):
            side_effects.append(payload)
            yield ctx.sleep(0)
            return None

        fabric = Fabric(env, account)
        app = TaskPoolApp(TaskPoolConfig(name="fx", collect_results=False),
                          handler)
        fabric.deploy(app.web_role_body([b"a", b"b"]), instances=1, name="web")
        fabric.deploy(app.worker_role_body(), instances=2, name="workers")
        fabric.run_all()
        assert sorted(side_effects) == [b"a", b"b"]
        assert app.results == []

    def test_fault_tolerance_crashed_worker(self, env, account):
        """A worker that crashes mid-task never deletes its message; the
        message reappears after the visibility timeout and another worker
        finishes the job (the paper's "in-built fault tolerance")."""
        fabric = Fabric(env, account)
        config = TaskPoolConfig(name="ft", visibility_timeout=20.0,
                                idle_poll_interval=0.5)

        def slow_handler(ctx, payload):
            yield ctx.sleep(5.0)
            return payload.upper()

        app = TaskPoolApp(config, slow_handler)
        tasks = [b"a", b"b", b"c", b"d"]
        fabric.deploy(app.web_role_body(tasks, poll_interval=0.5),
                      instances=1, name="web")
        workers = fabric.deploy(app.worker_role_body(), instances=2,
                                name="workers")
        fabric.start_all()

        def chaos(env):
            # Let worker 0 grab a task, then kill it mid-processing.
            yield env.timeout(2.0)
            workers.fail_instance(0, cause="vm recycled")

        env.process(chaos(env))
        env.run()
        # Every task completed despite the crash (the victim's task was
        # re-delivered); results may contain a duplicate only if the victim
        # had already reported, which it had not.
        payloads = sorted(r.payload for r in app.results)
        assert payloads == [b"A", b"B", b"C", b"D"]
        assert workers.instances[0].status is RoleStatus.FAILED

    def test_task_order_not_guaranteed_with_jitter(self, env):
        """With the non-FIFO queue model, completion order can differ from
        submission order — the hazard the paper's framework designs around."""
        account = SimStorageAccount(env, seed=1, fifo_jitter_seed=3)
        fabric = Fabric(env, account)

        def echo(ctx, payload):
            yield ctx.sleep(0.001)
            return payload

        app = TaskPoolApp(TaskPoolConfig(name="ord"), echo)
        tasks = [str(i).encode() for i in range(10)]
        fabric.deploy(app.web_role_body(tasks), instances=1, name="web")
        fabric.deploy(app.worker_role_body(), instances=1, name="workers")
        fabric.run_all()
        assert sorted(r.payload for r in app.results) == sorted(tasks)


class TestTaskPoolConfig:
    def test_queue_names(self):
        c = TaskPoolConfig(name="myapp", task_queues=2)
        assert c.task_queue_name(0) == "myapp-tasks-0"
        assert c.task_queue_name(1) == "myapp-tasks-1"
        assert c.termination_queue_name == "myapp-termination"
        assert c.results_queue_name == "myapp-results"
        assert c.stop_queue_name == "myapp-stop"
