"""Regression tests: poison-message handling under worker restarts.

A payload whose *handler crashes the worker* is the pathological case of
queue-based fault tolerance: redelivery brings it right back, so without a
dequeue-count cutoff the fleet crash-loops forever.  With
``max_dequeue_count`` set, the framework parks such tasks on the
dead-letter queue; with a :class:`~repro.compute.Supervisor` recycling
crashed workers, the run still terminates and completes every healthy
task.
"""

import pytest

from repro.compute import Fabric, RoleStatus, Supervisor
from repro.framework import TaskPoolApp, TaskPoolConfig
from repro.sim import SimStorageAccount
from repro.simkit import Environment

POISON = (b"BAD-3", b"BAD-7")
GOOD = [f"ok-{i}".encode() for i in range(8)]


def crashing_handler(ctx, payload):
    if payload.startswith(b"BAD"):
        raise RuntimeError(f"poison payload {payload!r}")
    yield ctx.sleep(0.2)
    return payload.upper()


def run_poisoned(tasks, *, max_dequeue_count=2, workers=2):
    env = Environment()
    account = SimStorageAccount(env, seed=17)
    config = TaskPoolConfig(name="pz", visibility_timeout=2.0,
                            idle_poll_interval=0.2,
                            max_dequeue_count=max_dequeue_count)
    app = TaskPoolApp(config, crashing_handler)
    fabric = Fabric(env, account)
    fabric.deploy(app.web_role_body(tasks, poll_interval=0.2),
                  instances=1, name="web")
    worker_pool = fabric.deploy(app.worker_role_body(), instances=workers,
                                name="workers", contain_crashes=True)
    supervisor = Supervisor(worker_pool, recycle_delay=1.0).start()
    fabric.start_all()
    env.run()
    return env, account, app, config, worker_pool, supervisor


class TestPoisonUnderRestarts:
    def test_run_terminates_and_dead_letters_exactly_the_poison(self):
        tasks = GOOD[:4] + [POISON[0]] + GOOD[4:] + [POISON[1]]
        env, account, app, config, workers, supervisor = run_poisoned(tasks)

        # The run terminated (env.run drained) with every healthy task
        # completed exactly once, despite the crash-looping payloads.
        assert sorted(r.payload for r in app.results) == \
            sorted(p.upper() for p in GOOD)

        # The dead-letter queue holds exactly the poisoned payloads.
        poison_queue = account.state.queues.get_queue(
            config.poison_queue_name)
        parked = sorted(m.content.to_bytes()
                        for m in poison_queue.peek_messages(10))
        assert parked == sorted(POISON)

        # Each poison payload crashed a worker on every delivery below the
        # cutoff; the supervisor recycled them all.
        assert supervisor.restart_count >= len(POISON)
        assert all(s is RoleStatus.COMPLETED for s in workers.statuses())

        # Nothing is left on the task queues.
        task_queue = account.state.queues.get_queue(
            config.task_queue_name(0))
        assert task_queue.approximate_message_count() == 0

    def test_dequeue_cutoff_bounds_the_crash_count(self):
        tasks = [POISON[0]] + GOOD[:3]
        env, account, app, config, workers, supervisor = run_poisoned(
            tasks, max_dequeue_count=3)
        # Cutoff 3: the payload is delivered (and crashes a worker) 3
        # times, then delivery 4 is parked without processing.
        crash_restarts = supervisor.restart_count
        assert crash_restarts >= 3
        poison_queue = account.state.queues.get_queue(
            config.poison_queue_name)
        assert poison_queue.approximate_message_count() == 1

    def test_healthy_run_parks_nothing(self):
        env, account, app, config, workers, supervisor = run_poisoned(
            list(GOOD))
        assert sorted(r.payload for r in app.results) == \
            sorted(p.upper() for p in GOOD)
        poison_queue = account.state.queues.get_queue(
            config.poison_queue_name)
        assert poison_queue.approximate_message_count() == 0
        assert supervisor.restart_count == 0

    def test_poisoned_tasks_count_toward_termination(self):
        # The web role's progress reaches len(tasks) only because parked
        # tasks report "poisoned" on the termination queue.
        tasks = [POISON[0], POISON[1]] + GOOD[:2]
        env, account, app, config, workers, supervisor = run_poisoned(tasks)
        assert app.progress[-1][1] >= len(tasks)
