"""Tests for the threaded task pool over the emulator."""

import time

import pytest

from repro.emulator import EmulatorAccount
from repro.framework import TaskPoolConfig, ThreadedTaskPool


@pytest.fixture
def account():
    return EmulatorAccount()


class TestThreadedTaskPool:
    def test_processes_all_tasks(self, account):
        pool = ThreadedTaskPool(
            account, TaskPoolConfig(name="thr", idle_poll_interval=0.01),
            handler=lambda payload: payload.upper())
        tasks = [f"task-{i}".encode() for i in range(20)]
        results = pool.run(tasks, workers=4, poll_interval=0.01)
        assert sorted(r.payload for r in results) == \
            sorted(t.upper() for t in tasks)
        assert sum(pool.processed_per_worker) == 20

    def test_multiple_queues(self, account):
        pool = ThreadedTaskPool(
            account, TaskPoolConfig(name="thr", task_queues=3,
                                    idle_poll_interval=0.01),
            handler=lambda payload: payload)
        results = pool.run([b"a", b"b", b"c", b"d"], workers=2,
                           poll_interval=0.01)
        assert len(results) == 4

    def test_side_effect_only(self, account):
        seen = []
        pool = ThreadedTaskPool(
            account, TaskPoolConfig(name="thr", collect_results=False,
                                    idle_poll_interval=0.01),
            handler=lambda payload: seen.append(payload))
        results = pool.run([b"x", b"y"], workers=2, poll_interval=0.01)
        assert results == []
        assert sorted(seen) == [b"x", b"y"]

    def test_slow_task_redelivered_then_dead_lettered(self, account):
        """A task that outlives its visibility timeout re-delivers until
        the dequeue cutoff parks it on the dead-letter queue; good tasks
        complete normally."""

        def slow_on_bad(payload):
            if payload == b"BAD":
                time.sleep(0.3)   # outlives the 0.2 s visibility timeout
                return None       # never reports a result for BAD
            return payload

        pool = ThreadedTaskPool(
            account, TaskPoolConfig(name="thr2", visibility_timeout=0.2,
                                    idle_poll_interval=0.01,
                                    max_dequeue_count=2),
            handler=slow_on_bad)
        results = pool.run([b"ok-1", b"BAD", b"ok-2"], workers=2,
                           poll_interval=0.01)
        payloads = sorted(r.payload for r in results)
        assert b"ok-1" in payloads and b"ok-2" in payloads

    def test_single_worker(self, account):
        pool = ThreadedTaskPool(
            account, TaskPoolConfig(name="thr", idle_poll_interval=0.01),
            handler=lambda p: p)
        assert len(pool.run([b"only"], workers=1, poll_interval=0.01)) == 1

    def test_workers_validation(self, account):
        pool = ThreadedTaskPool(account, TaskPoolConfig(name="thr"),
                                handler=lambda p: p)
        with pytest.raises(ValueError):
            pool.run([b"x"], workers=0)
