"""End-to-end tests for the geo chaos and elasticity campaigns."""

import json

import pytest

from repro.geo import run_elasticity, run_geo_chaos


class TestGeoCampaign:
    def test_region_outage_conforms(self):
        verdict = run_geo_chaos("region-outage", seed=7)
        assert verdict.passed, verdict.violations
        assert verdict.workload == "geo"
        # The outage actually bit: reads fell back to the secondary.
        assert verdict.counts["secondary_reads"] > 0
        assert verdict.counts["lost_records"] == 0
        assert verdict.geo["promoted"] is False

    def test_replication_stall_conforms(self):
        verdict = run_geo_chaos("replication-stall", seed=7)
        assert verdict.passed, verdict.violations
        # The stall stretched apply times but the allowance covers it.
        assert verdict.geo["staleness_allowance"] > verdict.geo["lag_s"]

    def test_planned_failover_loses_nothing(self):
        verdict = run_geo_chaos("geo-failover", seed=7, failover="planned")
        assert verdict.passed, verdict.violations
        assert verdict.geo["promoted"] is True
        assert verdict.counts["lost_records"] == 0

    def test_forced_failover_bounds_loss_at_the_watermark(self):
        verdict = run_geo_chaos("geo-failover", seed=7)  # profile: forced
        assert verdict.passed, verdict.violations
        assert verdict.geo["promoted"] is True
        assert verdict.geo["failover"] == "forced"
        # The stall froze the watermark, so promotion stranded a real
        # suffix — and every loss was exempted as lawful bounded loss.
        assert verdict.counts["lost_records"] > 0
        assert verdict.geo["exempted_records"] > 0

    def test_splice_self_test_is_detected(self):
        verdict = run_geo_chaos("region-outage", seed=7, splice=True)
        assert not verdict.passed
        assert verdict.counts["spliced"] == 1
        assert any("geo-splice" in v.message for v in verdict.violations)

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            run_geo_chaos("no-such-profile", seed=0)

    def test_unknown_failover_mode_raises(self):
        with pytest.raises(ValueError, match="unknown failover mode"):
            run_geo_chaos("region-outage", seed=0, failover="sideways")

    def test_same_seed_verdicts_are_byte_identical(self):
        a = run_geo_chaos("geo-failover", seed=11)
        b = run_geo_chaos("geo-failover", seed=11)
        assert a.to_json() == b.to_json()

    def test_different_seeds_shift_the_schedule(self):
        a = run_geo_chaos("region-outage", seed=7)
        b = run_geo_chaos("region-outage", seed=8)
        assert a.schedules != b.schedules

    def test_verdict_json_round_trips(self):
        verdict = run_geo_chaos("region-outage", seed=7)
        doc = json.loads(verdict.to_json())
        assert doc["workload"] == "geo"
        assert doc["passed"] is True
        assert doc["geo"]["account"] == "azurebench"
        assert doc["counts"]["probes"] > 0


class TestElasticityCampaign:
    def test_scales_out_during_region_outage(self):
        verdict = run_elasticity("region-outage", seed=7)
        assert verdict.passed, verdict.violations
        assert verdict.workload == "elasticity"
        assert verdict.counts["scale_outs"] >= 1
        assert verdict.counts["peak_workers"] > 2
        assert verdict.counts["results_collected"] == verdict.counts["tasks"]

    def test_same_seed_verdicts_are_byte_identical(self):
        a = run_elasticity("region-outage", seed=7)
        b = run_elasticity("region-outage", seed=7)
        assert a.to_json() == b.to_json()

    def test_spot_eviction_profile_survives_crashes(self):
        verdict = run_elasticity("spot-eviction", seed=7)
        assert verdict.passed, verdict.violations
