"""CLI wiring for the geo workloads: routing, exit codes, artifacts.

Harness functions are monkeypatched with canned verdicts so the wiring
is tested in milliseconds; the campaigns themselves are covered by
``test_campaign.py``.
"""

import json

import repro.geo as geo
from repro.chaos import ChaosRunError
from repro.chaos.invariants import Violation
from repro.chaos.verdict import ChaosVerdict
from repro.cli import build_parser, main


def canned_verdict(workload="geo", passed=True):
    verdict = ChaosVerdict(workload=workload, profile="region-outage",
                           seed=7, runs=[f"{workload}:region-outage@3"],
                           counts={"lost_records": 0})
    if not passed:
        verdict.violations.append(
            Violation("geo-replication", "record 3 shipped twice"))
    return verdict


class TestParser:
    def test_chaos_workload_is_optional(self):
        args = build_parser().parse_args(
            ["chaos", "--profile", "region-outage"])
        assert args.figure is None

    def test_chaos_geo_flags(self):
        args = build_parser().parse_args(
            ["chaos", "geo", "--profile", "geo-failover",
             "--failover", "forced", "--lag", "3.5"])
        assert args.failover == "forced" and args.lag == 3.5

    def test_geo_subcommand_defaults(self):
        args = build_parser().parse_args(["geo"])
        assert args.profile == "region-outage"
        assert args.failover is None and args.lag == 2.0
        assert not args.elasticity and not args.self_test_splice


class TestChaosGeoRouting:
    def test_geo_profile_implies_geo_workload(self, monkeypatch):
        seen = {}

        def fake(profile, seed, **kwargs):
            seen.update(kwargs, profile=profile, seed=seed)
            return canned_verdict()

        monkeypatch.setattr(geo, "run_geo_chaos", fake)
        assert main(["chaos", "--profile", "region-outage",
                     "--seed", "7"]) == 0
        assert seen["profile"] == "region-outage" and seen["seed"] == 7

    def test_spot_eviction_implies_elasticity(self, monkeypatch):
        seen = {}

        def fake(profile, seed, **kwargs):
            seen["profile"] = profile
            return canned_verdict("elasticity")

        monkeypatch.setattr(geo, "run_elasticity", fake)
        assert main(["chaos", "--profile", "spot-eviction"]) == 0
        assert seen["profile"] == "spot-eviction"

    def test_no_workload_and_no_geo_profile_exits_two(self, capsys):
        assert main(["chaos", "--profile", "queue-storm"]) == 2
        assert "WORKLOAD is required" in capsys.readouterr().err

    def test_seed_matrix_runs_serially_per_seed(self, monkeypatch,
                                                tmp_path, capsys):
        seeds_run = []

        def fake(profile, seed, **kwargs):
            seeds_run.append(seed)
            return canned_verdict()

        monkeypatch.setattr(geo, "run_geo_chaos", fake)
        out = str(tmp_path / "verdict.json")
        assert main(["chaos", "--profile", "region-outage",
                     "--seeds", "7,11", "--out", out]) == 0
        assert seeds_run == [7, 11]
        for seed in (7, 11):
            with open(f"{out}.seed{seed}") as f:
                assert json.loads(f.read())["seed"] == 7  # canned verdict
        assert "seed matrix: 2/2 passed" in capsys.readouterr().err

    def test_any_failing_seed_exits_one(self, monkeypatch):
        verdicts = iter([canned_verdict(), canned_verdict(passed=False)])
        monkeypatch.setattr(geo, "run_geo_chaos",
                            lambda *a, **k: next(verdicts))
        assert main(["chaos", "--profile", "region-outage",
                     "--seeds", "7,11"]) == 1

    def test_failover_and_lag_reach_the_harness(self, monkeypatch):
        seen = {}

        def fake(profile, seed, **kwargs):
            seen.update(kwargs)
            return canned_verdict()

        monkeypatch.setattr(geo, "run_geo_chaos", fake)
        assert main(["chaos", "geo", "--profile", "geo-failover",
                     "--failover", "planned", "--lag", "1.5"]) == 0
        assert seen["failover"] == "planned" and seen["lag_s"] == 1.5

    def test_crash_emits_partial_verdict_then_exits_one(
            self, monkeypatch, tmp_path, capsys):
        verdict = canned_verdict()
        verdict.violations.append(
            Violation("harness", "geo:region-outage: run crashed before "
                      "checks completed: RuntimeError: disk full"))

        def fake(profile, seed, **kwargs):
            raise ChaosRunError("geo:region-outage crashed", verdict)

        monkeypatch.setattr(geo, "run_geo_chaos", fake)
        out = str(tmp_path / "partial.json")
        assert main(["chaos", "--profile", "region-outage",
                     "--out", out]) == 1
        captured = capsys.readouterr()
        with open(out) as f:
            doc = json.loads(f.read())
        assert doc["passed"] is False
        assert any("run crashed" in v["message"] for v in doc["violations"])
        assert "error: geo:region-outage crashed" in captured.err


class TestGeoSubcommand:
    def test_routes_to_geo_campaign(self, monkeypatch, capsys):
        seen = {}

        def fake(profile, seed, **kwargs):
            seen.update(kwargs, profile=profile)
            return canned_verdict()

        monkeypatch.setattr(geo, "run_geo_chaos", fake)
        assert main(["geo", "--profile", "geo-failover",
                     "--failover", "forced"]) == 0
        assert seen["profile"] == "geo-failover"
        assert seen["failover"] == "forced"
        assert json.loads(capsys.readouterr().out)["passed"] is True

    def test_elasticity_flag_routes_to_elasticity(self, monkeypatch):
        seen = {}

        def fake(profile, seed, **kwargs):
            seen.update(kwargs, profile=profile)
            return canned_verdict("elasticity")

        monkeypatch.setattr(geo, "run_elasticity", fake)
        assert main(["geo", "--elasticity", "--tasks", "12"]) == 0
        assert seen["tasks"] == 12

    def test_unknown_profile_exits_two(self, capsys):
        assert main(["geo", "--profile", "no-such"]) == 2
        assert "unknown fault profile" in capsys.readouterr().err

    def test_failing_verdict_exits_one(self, monkeypatch):
        monkeypatch.setattr(geo, "run_geo_chaos",
                            lambda *a, **k: canned_verdict(passed=False))
        assert main(["geo"]) == 1

    def test_crash_emits_partial_verdict(self, monkeypatch, capsys):
        def fake(profile, seed, **kwargs):
            raise ChaosRunError("crashed", canned_verdict(passed=False))

        monkeypatch.setattr(geo, "run_geo_chaos", fake)
        assert main(["geo"]) == 1
        assert json.loads(capsys.readouterr().out)["passed"] is False
