"""Unit and property tests for the geo-replication ledger algebra.

The hypothesis properties mirror the queue-conservation suite
(``tests/chaos/test_ledger.py``): the ledger is a commutative monoid
under ``merge`` (so per-phase sub-ledgers fold in any order),
conforming replication histories never produce false violations, and a
spliced-away ship event is *always* detected by the prefix/durability
laws.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.ledger import GeoLedger, geo_ledger_from_events

LAG = 2.0


# -- history generators --------------------------------------------------------

@st.composite
def conforming_events(draw, min_records=0, min_shipped=0):
    """Geo ledger events of a conforming run.

    Acks arrive in seq order at strictly increasing times; a prefix of
    them ships in order, each within the lag; an optional promotion
    freezes the Last Sync Time at the shipped frontier; probes read a
    monotone counter that is never newer than the primary nor older
    than the watermark floor.
    """
    n = draw(st.integers(max(min_records, min_shipped), 12))
    events = []
    ack_times = []
    t = 0.0
    for seq in range(n):
        t += draw(st.floats(0.1, 2.0, allow_nan=False))
        ack_times.append(t)
        events.append(("ack", seq, t))
    shipped = draw(st.integers(min_shipped, n))
    apply_t = 0.0
    for seq in range(shipped):
        # In-order apply, at or after the ack, within the lag.
        apply_t = max(apply_t,
                      ack_times[seq] + draw(st.floats(0.0, LAG,
                                                      allow_nan=False)))
        events.append(("ship", seq, ack_times[seq], apply_t))
    promoted = draw(st.booleans())
    if promoted:
        # Strict durability: every ack *before* the watermark shipped,
        # so the watermark may sit anywhere up to the first lost ack.
        lst = ack_times[shipped - 1] if shipped else 0.0
        events.append(("promote", t + 1.0, lst))
    secondary = 0
    probe_t = 0.0
    for _ in range(draw(st.integers(0, 4))):
        probe_t += draw(st.floats(0.1, 1.0, allow_nan=False))
        secondary += draw(st.integers(0, 3))
        primary = secondary + draw(st.integers(0, 3))
        floor = max(0, secondary - draw(st.integers(0, secondary)))
        events.append(("probe", probe_t, primary, floor, secondary))
    return events


# -- the monoid ----------------------------------------------------------------

@given(conforming_events(), conforming_events(), conforming_events())
@settings(max_examples=60)
def test_merge_is_an_associative_commutative_monoid(ea, eb, ec):
    a, b, c = (geo_ledger_from_events(e) for e in (ea, eb, ec))
    assert a.merge(GeoLedger.empty()) == a
    assert GeoLedger.empty().merge(a) == a
    assert a.merge(b) == b.merge(a)
    assert a.merge(b).merge(c) == a.merge(b.merge(c))


@given(conforming_events(), st.integers(0, 2 ** 32))
@settings(max_examples=60)
def test_folding_partitions_equals_folding_whole(events, seed):
    """Any partition of the event stream merges back to the same ledger."""
    import random

    rng = random.Random(seed)
    chunks, i = [], 0
    while i < len(events):
        size = rng.randint(1, 4)
        chunks.append(events[i:i + size])
        i += size
    rng.shuffle(chunks)
    folded = GeoLedger.empty()
    for chunk in chunks:
        folded = folded.merge(geo_ledger_from_events(chunk))
    assert folded == geo_ledger_from_events(events)


def test_observe_is_single_event_fold():
    ledger = GeoLedger.empty().observe(("ack", 0, 1.0))
    ledger = ledger.observe(("ship", 0, 1.0, 2.0))
    ledger = ledger.observe(("promote", 5.0, 1.5))
    assert ledger == geo_ledger_from_events([
        ("ack", 0, 1.0), ("ship", 0, 1.0, 2.0), ("promote", 5.0, 1.5)])


# -- no false positives --------------------------------------------------------

@given(conforming_events())
@settings(max_examples=100)
def test_conforming_histories_have_no_violations(events):
    assert geo_ledger_from_events(events).violations(max_lag=LAG) == []


@given(conforming_events())
@settings(max_examples=60)
def test_no_lag_bound_is_always_lenient(events):
    """Dropping the lag law can only remove violations, never add."""
    assert geo_ledger_from_events(events).violations() == []


# -- guaranteed detection ------------------------------------------------------

@given(conforming_events(min_shipped=2), st.randoms())
@settings(max_examples=100)
def test_spliced_ship_is_always_detected(events, rng):
    """Erase one non-frontier ship: the prefix law must flag the gap."""
    ships = sorted(e[1] for e in events if e[0] == "ship")
    victim = rng.choice(ships[:-1])  # keep the frontier so a gap opens
    spliced = [e for e in events if not (e[0] == "ship" and e[1] == victim)]
    violations = geo_ledger_from_events(spliced).violations(max_lag=LAG)
    assert any("gap in the log prefix" in v or "lost by failover" in v
               for v in violations), violations


def test_phantom_ship_detected():
    events = [("ship", 3, 1.0, 2.0)]
    assert any("phantom ship" in v
               for v in geo_ledger_from_events(events).violations())


def test_duplicate_ship_detected():
    events = [("ack", 0, 1.0), ("ship", 0, 1.0, 2.0), ("ship", 0, 1.0, 2.5)]
    assert any("duplicate application" in v
               for v in geo_ledger_from_events(events).violations())


def test_ack_time_mismatch_detected():
    events = [("ack", 0, 1.0), ("ship", 0, 1.5, 2.0)]
    assert any("was acknowledged at" in v
               for v in geo_ledger_from_events(events).violations())


def test_time_travel_detected():
    events = [("ack", 0, 3.0), ("ship", 0, 3.0, 2.0)]
    assert any("time travel" in v
               for v in geo_ledger_from_events(events).violations())


def test_lag_bound_enforced_only_when_given():
    events = [("ack", 0, 1.0), ("ship", 0, 1.0, 9.0)]
    ledger = geo_ledger_from_events(events)
    assert ledger.violations() == []
    assert any("staleness allowance" in v
               for v in ledger.violations(max_lag=LAG))


def test_out_of_order_replay_detected():
    events = [("ack", 0, 1.0), ("ack", 1, 2.0),
              ("ship", 0, 1.0, 5.0), ("ship", 1, 2.0, 4.0)]
    assert any("out-of-order replay" in v
               for v in geo_ledger_from_events(events).violations())


def test_double_promotion_detected():
    events = [("promote", 5.0, 1.0), ("promote", 6.0, 2.0)]
    assert any("at most once" in v
               for v in geo_ledger_from_events(events).violations())


def test_durability_breach_detected():
    """An ack strictly before the final LST that never shipped is loss
    the watermark promised could not happen."""
    events = [("ack", 0, 1.0), ("promote", 5.0, 2.0)]
    assert any("lost by failover" in v
               for v in geo_ledger_from_events(events).violations())


def test_bounded_loss_is_not_a_violation():
    """Acks at or after the watermark are the lawful forced-failover
    casualty list."""
    events = [("ack", 0, 1.0), ("ship", 0, 1.0, 1.5),
              ("ack", 1, 3.0), ("promote", 5.0, 2.0)]
    assert geo_ledger_from_events(events).violations() == []


def test_probe_newer_than_primary_detected():
    events = [("probe", 1.0, 3, 0, 4)]
    assert any("newer than the primary" in v
               for v in geo_ledger_from_events(events).violations())


def test_probe_staler_than_floor_detected():
    events = [("probe", 1.0, 5, 3, 2)]
    assert any("older than the Last-Sync-Time floor" in v
               for v in geo_ledger_from_events(events).violations())


def test_probe_regression_detected():
    events = [("probe", 1.0, 5, 0, 4), ("probe", 2.0, 5, 0, 3)]
    assert any("went backwards" in v
               for v in geo_ledger_from_events(events).violations())


def test_unknown_event_kind_raises():
    with pytest.raises(ValueError, match="unknown geo ledger event"):
        geo_ledger_from_events([("teleport", 1, 2.0)])


def test_final_last_sync_time():
    assert GeoLedger.empty().final_last_sync_time() is None
    ledger = geo_ledger_from_events([("promote", 5.0, 3.25)])
    assert ledger.final_last_sync_time() == 3.25
