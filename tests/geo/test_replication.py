"""Unit tests for geo-replication: log shipping, RA-GRS routing, failover."""

import pytest

from repro.faults.spec import FaultKind, FaultSpec
from repro.geo import GeoAccount
from repro.simkit import Environment
from repro.storage.errors import (
    RegionDownError,
    SecondaryReadOnlyError,
)


@pytest.fixture
def env():
    return Environment()


def run(env, gen):
    # The replicator polls forever, so run *until the body finishes*
    # (a bare env.run() would never return on a geo account).
    p = env.process(gen)
    env.run(until=p)
    return p.value


def seed_queue(env, geo, n=3, queue="geoq"):
    qc = geo.queue_client()

    def body():
        yield from qc.create_queue(queue)
        for i in range(n):
            yield from qc.put_message(queue, f"payload-{i}".encode())

    return run(env, body())


class TestLogShipping:
    def test_mutations_land_on_the_log_in_ack_order(self, env):
        geo = GeoAccount(env, lag_s=2.0)
        seed_queue(env, geo)
        assert [r.seq for r in geo.log] == list(range(len(geo.log)))
        assert [r.method for r in geo.log] == [
            "create_queue"] + ["put_message"] * 3
        times = [r.time for r in geo.log]
        assert times == sorted(times)

    def test_replay_is_bit_exact(self, env):
        """Shipped messages carry the *same* ids, payloads, and insertion
        times as the primary's — counter-based ids plus the pinned
        replay clock make the secondary byte-identical at the LST."""
        geo = GeoAccount(env, lag_s=1.0)
        seed_queue(env, geo)
        env.run(until=env.now + 10.0)

        def snapshot(account):
            messages = account.state.queues.queues["geoq"]._messages
            return [(m.message_id, m.content.to_bytes(), m.insertion_time)
                    for m in messages]

        primary = snapshot(geo.primary)
        assert len(primary) == 3
        assert snapshot(geo.secondary) == primary

    def test_last_sync_time_advances_past_drained_backlog(self, env):
        geo = GeoAccount(env, lag_s=1.0)
        seed_queue(env, geo)
        ack_times = [r.time for r in geo.log]
        env.run(until=env.now + 10.0)
        assert geo.replicator.backlog == 0
        assert geo.last_sync_time > max(ack_times)
        assert len(geo.replicator.ship_events) == len(geo.log)
        assert geo.replicator.apply_errors == []

    def test_stall_freezes_last_sync_time_and_defers_ships(self, env):
        geo = GeoAccount(env, lag_s=0.5)
        stall = FaultSpec(FaultKind.REPLICATION_STALL, start=0.0,
                          duration=20.0)
        geo.replicator.set_stalls([stall])
        seed_queue(env, geo)
        env.run(until=10.0)
        # Mid-stall: nothing shipped, the watermark is frozen while the
        # primary keeps acknowledging — the growing loss bound.
        assert geo.replicator.ship_events == []
        assert geo.last_sync_time < min(r.time for r in geo.log)
        env.run(until=30.0)
        # Past the stall the backlog drains; applies land after the
        # window, not inside it.
        assert len(geo.replicator.ship_events) == len(geo.log)
        assert all(apply_t >= 20.0
                   for (_, _, apply_t) in geo.replicator.ship_events)


class TestRaGrsRouting:
    def test_secondary_endpoint_rejects_writes_until_promoted(self, env):
        geo = GeoAccount(env, lag_s=1.0)
        seed_queue(env, geo)
        sqc = geo.secondary_queue_client()

        def body():
            yield from sqc.put_message("geoq", b"direct")

        with pytest.raises(SecondaryReadOnlyError):
            run(env, body())
        assert geo.controller.stats["secondary_write_rejections"] == 1

    def test_reads_fall_back_to_secondary_during_outage(self, env):
        geo = GeoAccount(env, lag_s=1.0)
        seed_queue(env, geo)
        env.run(until=env.now + 10.0)  # let the backlog ship
        geo.controller.install_outages([FaultSpec(
            FaultKind.REGION_OUTAGE, region="primary",
            start=env.now, duration=100.0)])
        qc = geo.queue_client()

        def body():
            count = yield from qc.get_message_count("geoq")
            head = yield from qc.peek_message("geoq")
            return count, head

        count, head = run(env, body())
        assert count == 3
        assert head is not None
        assert geo.controller.stats["secondary_reads"] == 2

    def test_get_message_never_falls_back(self, env):
        """Get consumes visibility: the real secondary endpoint only
        allowed Peek, so an outage surfaces to the retry loop."""
        geo = GeoAccount(env, lag_s=1.0)
        seed_queue(env, geo)
        env.run(until=env.now + 10.0)
        geo.controller.install_outages([FaultSpec(
            FaultKind.REGION_OUTAGE, region="primary",
            start=env.now, duration=100.0)])
        qc = geo.queue_client()

        def body():
            yield from qc.get_message("geoq")

        with pytest.raises(RegionDownError):
            run(env, body())

    def test_region_down_error_is_retryable(self):
        from repro.storage.errors import ServerBusyError
        assert issubclass(RegionDownError, ServerBusyError)


class TestFailover:
    def test_planned_failover_drains_then_promotes_with_zero_loss(self, env):
        geo = GeoAccount(env, lag_s=2.0)
        seed_queue(env, geo, n=5)
        env.process(geo.failover_process("planned", delay_s=1.0))
        env.run(until=60.0)
        assert geo.controller.promoted
        assert geo.controller.lost_records == ()
        assert len(geo.replicator.ship_events) == len(geo.log)

    def test_forced_failover_loses_exactly_the_unshipped_suffix(self, env):
        geo = GeoAccount(env, lag_s=30.0)  # nothing ships before the cut
        seed_queue(env, geo, n=4)
        env.process(geo.failover_process("forced", delay_s=0.5))
        env.run(until=20.0)
        assert geo.controller.promoted
        lost = geo.controller.lost_records
        assert len(lost) == len(geo.log)  # whole log stranded
        lst = geo.controller.final_last_sync_time
        # The durability contract: nothing acked strictly before the
        # final Last Sync Time may be lost.
        assert all(r.time >= lst for r in lost)

    def test_promoted_secondary_accepts_writes(self, env):
        geo = GeoAccount(env, lag_s=1.0)
        seed_queue(env, geo)
        env.run(until=env.now + 10.0)
        env.process(geo.failover_process("forced", delay_s=0.5))
        env.run(until=env.now + 5.0)
        assert geo.controller.promoted
        qc = geo.queue_client()

        def body():
            msg = yield from qc.put_message("geoq", b"after")
            got = yield from qc.get_message("geoq")
            return msg, got

        msg, got = run(env, body())
        assert msg is not None and got is not None
        # The promoted stamp is the account endpoint now.
        assert geo.state is geo.secondary.state

    def test_primary_rejected_after_promotion(self, env):
        geo = GeoAccount(env, lag_s=1.0)
        seed_queue(env, geo)
        env.run(until=env.now + 10.0)
        env.process(geo.failover_process("forced", delay_s=0.5))
        env.run(until=env.now + 5.0)
        pqc = geo.primary.queue_client()

        def body():
            yield from pqc.put_message("geoq", b"stale-endpoint")

        with pytest.raises(RegionDownError, match="decommissioned"):
            run(env, body())

    def test_failover_rejects_unknown_mode(self, env):
        geo = GeoAccount(env, lag_s=1.0)
        with pytest.raises(ValueError, match="unknown failover mode"):
            run(env, geo.failover_process("sideways"))


class TestDeterminism:
    def test_same_seed_same_log_and_ships(self):
        def one_run():
            env = Environment()
            geo = GeoAccount(env, seed=13, lag_s=1.0)
            seed_queue(env, geo)
            env.run(until=30.0)
            return ([(r.seq, r.time, r.method) for r in geo.log],
                    geo.replicator.ship_events, geo.last_sync_time)

        assert one_run() == one_run()

    def test_geo_account_draws_no_extra_randomness(self):
        """A geo run's primary acks exactly match a single-region run:
        the replicator and the secondary draw no RNG of their own."""
        from repro.sim import SimStorageAccount

        def ack_times(make_account):
            env = Environment()
            account = make_account(env)
            qc = account.queue_client()
            times = []

            def body():
                yield from qc.create_queue("geoq")
                for i in range(4):
                    yield from qc.put_message("geoq", b"x")
                    times.append(env.now)

            p = env.process(body())
            env.run(until=p)
            return times

        single = ack_times(lambda env: SimStorageAccount(env, seed=5))
        geo = ack_times(lambda env: GeoAccount(env, seed=5, lag_s=1.0))
        assert single == geo
