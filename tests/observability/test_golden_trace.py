"""Golden-trace regression tests.

A fixed-seed mini queue benchmark must produce a byte-stable span stream:
the digest over the ordered span tuples is pinned, so any change to op
ordering, the cost model, or the span schema shows up as a failing test
(update the constant deliberately when the change is intended).
"""

import pytest

from repro.core import (
    RunConfig,
    SeparateQueueBenchConfig,
    run_bench,
    separate_queue_bench_body,
)
from repro.storage import KB

#: Digest of the mini run below; re-pin on *intentional* schema/model changes.
GOLDEN_DIGEST = "d2743af9d2a9b6d02d53517aabbd795acd5226a87e662bc3a1eb90e501ef6b15"

MINI = SeparateQueueBenchConfig(total_messages=8, message_sizes=(4 * KB,))


def run_mini(*, trace: bool, workers: int = 2,
             config: SeparateQueueBenchConfig = MINI):
    run_config = RunConfig(workers=workers, seed=2012, label="golden",
                           trace=trace)
    return run_bench(lambda: separate_queue_bench_body(config), run_config)


def test_mini_run_produces_spans():
    result = run_mini(trace=True)
    tracer = result.trace
    assert tracer is not None
    spans = tracer.spans
    assert spans, "traced run recorded no spans"
    # Every span is attributed to a worker role and ordered by span id.
    assert all(s.worker.startswith("azurebench#") for s in spans)
    assert [s.span_id for s in spans] == list(range(len(spans)))
    ops = {s.operation for s in spans}
    assert {"put_message", "peek_message", "get_message"} <= ops


def test_digest_stable_across_runs():
    first = run_mini(trace=True).trace
    second = run_mini(trace=True).trace
    assert len(first.spans) == len(second.spans)
    assert first.digest() == second.digest()


def test_untraced_run_attaches_no_tracer():
    assert run_mini(trace=False).trace is None


def test_tracing_does_not_perturb_results():
    """The determinism contract: tracing on/off gives identical figures."""
    traced = run_mini(trace=True)
    untraced = run_mini(trace=False)
    assert traced.phase_names() == untraced.phase_names()
    for name in traced.phase_names():
        assert traced.phase(name) == untraced.phase(name)


def test_golden_digest_pinned():
    digest = run_mini(trace=True).trace.digest()
    assert digest == GOLDEN_DIGEST, (
        f"span stream changed: {digest}\n"
        f"If this change is intended (schema, cost model, or op ordering), "
        f"re-pin GOLDEN_DIGEST."
    )


@pytest.mark.slow
def test_golden_digest_scales_with_workers():
    """Worker count changes the stream (more spans) but stays deterministic."""
    cfg = SeparateQueueBenchConfig(total_messages=32,
                                   message_sizes=(4 * KB, 16 * KB))
    a = run_mini(trace=True, workers=4, config=cfg).trace
    b = run_mini(trace=True, workers=4, config=cfg).trace
    assert a.digest() == b.digest()
    assert len(a.spans) > len(run_mini(trace=True).trace.spans)
