"""Property tests for the mergeable histograms and the metrics rollups.

The histogram merge laws are what make per-worker / per-run histograms
safe to combine in any order (the ``repro trace`` exporter merges a whole
sweep); the ingress/egress invariant is what makes the Storage Analytics
rollups trustworthy as a byte-accounting source.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability import DEFAULT_GROWTH, Histogram, HistogramSet
from repro.storage.analytics import MetricsAggregator, RequestRecord

latencies = st.lists(
    st.floats(min_value=0.0, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    max_size=50,
)


def build(values, growth=DEFAULT_GROWTH):
    hist = Histogram(growth)
    for value in values:
        hist.observe(value)
    return hist


@given(latencies, latencies, latencies)
def test_merge_is_associative(a, b, c):
    ha, hb, hc = build(a), build(b), build(c)
    assert ha.merge(hb).merge(hc) == ha.merge(hb.merge(hc))


@given(latencies, latencies)
def test_merge_is_commutative(a, b):
    assert build(a).merge(build(b)) == build(b).merge(build(a))


@given(latencies, latencies)
def test_merge_counts_and_extremes(a, b):
    merged = build(a).merge(build(b))
    assert merged.count == len(a) + len(b)
    observed = a + b
    if observed:
        assert merged.min == min(observed)
        assert merged.max == max(observed)
    else:
        assert merged.min is None and merged.max is None


@given(latencies.filter(lambda v: len(v) > 0),
       st.floats(min_value=0.01, max_value=100.0))
def test_percentiles_bounded_by_observed_extremes(values, q):
    hist = build(values)
    p = hist.percentile(q)
    assert min(values) <= p <= max(values)


@given(latencies.filter(lambda v: len(v) > 0))
def test_percentiles_monotone_in_q(values):
    hist = build(values)
    assert hist.p50 <= hist.p90 <= hist.p99


def test_merge_rejects_growth_mismatch():
    with pytest.raises(ValueError):
        Histogram(2.0).merge(Histogram(4.0))


def test_observe_rejects_negative():
    with pytest.raises(ValueError):
        Histogram().observe(-0.5)


@given(st.lists(st.tuples(latencies, latencies), max_size=5))
def test_histogram_set_merge_matches_per_key_merge(pairs):
    left, right = HistogramSet(), HistogramSet()
    for i, (a, b) in enumerate(pairs):
        for v in a:
            left.observe("svc", f"op{i}", v)
        for v in b:
            right.observe("svc", f"op{i}", v)
    merged = left.merge(right)
    for i, (a, b) in enumerate(pairs):
        hist = merged.get("svc", f"op{i}")
        if not a and not b:
            assert hist is None or hist.count == 0
        else:
            assert hist is not None
            assert hist == build(a).merge(build(b))


# -- Storage Analytics byte accounting ----------------------------------------

requests = st.lists(
    st.tuples(
        st.sampled_from(["blob", "queue", "table"]),
        st.sampled_from(["put", "get"]),
        st.integers(min_value=0, max_value=1_000_000),   # nbytes
        st.booleans(),                                   # is_write
        st.floats(min_value=0.0, max_value=100_000.0,    # time
                  allow_nan=False, allow_infinity=False),
    ),
    max_size=60,
)


@settings(deadline=None)
@given(requests)
def test_hourly_ingress_egress_equals_payload_sums(reqs):
    agg = MetricsAggregator()
    for service, op, nbytes, is_write, time in reqs:
        agg.observe(RequestRecord(
            time=time, service=service, operation=op, partition="p",
            nbytes=nbytes, end_to_end_latency=0.0, server_latency=0.0,
            status_code=201 if is_write else 200, is_write=is_write,
        ))
    for hour in agg.hours():
        for service in agg.services():
            cell = agg.cell(hour, service)
            if cell is None:
                continue
            expect_in = sum(
                n for s, _, n, w, t in reqs
                if s == service and w and int(t // agg.hour_seconds) == hour)
            expect_out = sum(
                n for s, _, n, w, t in reqs
                if s == service and not w
                and int(t // agg.hour_seconds) == hour)
            assert cell.total_ingress == expect_in
            assert cell.total_egress == expect_out
            assert cell.total_ingress + cell.total_egress == cell.total_bytes
    # and the all-hours service totals agree with a direct sum
    for service in agg.services():
        totals = agg.service_totals(service)
        assert totals.total_ingress == sum(
            n for s, _, n, w, _ in reqs if s == service and w)
        assert totals.total_egress == sum(
            n for s, _, n, w, _ in reqs if s == service and not w)
