"""Reconcile the span stream against the benchmark's own bookkeeping.

The queue benchmark counts logical operations, payload bytes, and retry
back-offs through :class:`PhaseRecorder`; the tracer counts the same run
from the other side of the pipeline.  Aggregating spans per phase must
reproduce the recorder totals *exactly* — any drift means one of the two
instrumentation layers is lying.

The Get phase times Get+Delete as one logical op (the paper: "the Get
Message operation also includes deletion"), so ``delete_message`` spans
are excluded from the op/byte rollup.
"""

import pytest

from repro.compute import Deployment
from repro.core.metrics import PhaseRecorder, set_phase_hook
from repro.core.queue_bench import (
    SeparateQueueBenchConfig,
    separate_queue_bench_body,
)
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.observability import Tracer, phase_totals, sim_worker_resolver
from repro.sim import SimStorageAccount
from repro.simkit import Environment
from repro.storage import KB

#: Get+Delete is one timed logical op; delete spans are not extra ops.
GET_EXCLUDES = frozenset({"delete_message"})


def run_traced_queue_bench(*, workers=2, plan=None,
                           total_messages=8,
                           message_sizes=(4 * KB, 16 * KB)):
    env = Environment()
    account = SimStorageAccount(env, seed=2012)
    if plan is not None:
        account.cluster.set_fault_plan(plan)
    tracer = Tracer(worker_resolver=sim_worker_resolver(env))
    tracer.install(account)
    set_phase_hook(tracer.on_phase)
    try:
        cfg = SeparateQueueBenchConfig(total_messages=total_messages,
                                       message_sizes=message_sizes)
        deployment = Deployment(env, account,
                                separate_queue_bench_body(cfg),
                                instances=workers, name="azurebench")
        recorders = deployment.run()
    finally:
        set_phase_hook(None)
    return tracer, recorders


def recorder_totals(recorders):
    totals = {}
    for rec in recorders:
        for r in rec.records:
            ops, nbytes, retries = totals.get(r.name, (0, 0, 0))
            totals[r.name] = (ops + r.ops, nbytes + r.nbytes,
                              retries + r.retries)
    return totals


def test_spans_reproduce_phase_recorder_totals():
    tracer, recorders = run_traced_queue_bench()
    assert phase_totals(tracer.spans, ops_exclude=GET_EXCLUDES) == \
        recorder_totals(recorders)


def test_retries_reconcile_under_throttle_faults():
    """Failed spans per phase == the back-offs the recorder counted.

    A full-probability throttle window on worker 0's queue (the barrier
    queue is untouched, so synchronization survives) forces ServerBusy
    rejections; each one is a failed span on the tracer side and one
    ``add_retry`` on the recorder side.
    """
    plan = FaultPlan([FaultSpec(kind=FaultKind.THROTTLE, service="queue",
                                partition="azurebenchqueue0",
                                start=0.2, duration=0.15)])
    tracer, recorders = run_traced_queue_bench(plan=plan)
    expected = recorder_totals(recorders)
    assert sum(r for _, _, r in expected.values()) > 0, \
        "throttle window missed every phase; retest with a wider window"
    assert phase_totals(tracer.spans, ops_exclude=GET_EXCLUDES) == expected
    # failed spans carry the throttle verdict
    failed = [s for s in tracer.spans if not s.ok]
    assert failed
    assert {s.error for s in failed} == {"ServerBusyError"}
    # and the success span following a failure reports the retry count
    assert any(s.ok and s.retries > 0 for s in tracer.spans)


def test_spans_outside_phases_are_skipped():
    tracer, _ = run_traced_queue_bench()
    unattributed = [s for s in tracer.spans if s.phase is None]
    # barrier/setup traffic exists but never lands in a phase rollup
    assert unattributed
    totals = phase_totals(tracer.spans, ops_exclude=GET_EXCLUDES)
    assert None not in totals


# -- PhaseRecorder.record_span edge cases -------------------------------------

def test_record_span_zero_duration():
    env = Environment()
    rec = PhaseRecorder(env, 0)
    record = rec.record_span("comm", 0.0, ops=3, nbytes=12)
    assert record.start == record.end == env.now
    assert record.duration == 0.0
    assert (record.ops, record.nbytes) == (3, 12)


def test_record_span_longer_than_elapsed_time():
    # A duration longer than env.now backdates the start below zero but
    # keeps the duration exact — aggregation only ever reads durations.
    env = Environment()
    rec = PhaseRecorder(env, 0)
    record = rec.record_span("comm", 5.0)
    assert record.end == env.now == 0.0
    assert record.start == -5.0
    assert record.duration == 5.0


def test_record_span_negative_duration_raises():
    rec = PhaseRecorder(Environment(), 0)
    with pytest.raises(ValueError):
        rec.record_span("comm", -1.0)
