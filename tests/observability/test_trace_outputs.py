"""Exporter formats and the ``repro trace`` CLI artifacts."""

import json

import pytest

from repro.bench.figures import BenchScale
from repro.cli import main
from repro.core import RunConfig
from repro.observability import (
    RunManifest,
    Span,
    TraceBuffer,
    chrome_trace,
)
from repro.storage import KB


def make_span(i, *, worker="azurebench#0", phase="put_4096",
              status="ok", error=""):
    return Span(
        trace_id="t", span_id=i, worker=worker, phase=phase,
        backend="sim", service="queue", operation="put_message",
        partition="q0", server="queue-pool/queue-srv-0" if status == "ok"
        else None,
        nbytes=4 * KB, units=1, start=float(i), end=float(i) + 0.25,
        server_latency=0.1, latency_factor=1.0, retries=0,
        status=status, error=error,
    )


# -- JSONL ---------------------------------------------------------------------

def test_jsonl_round_trip(tmp_path):
    buf = TraceBuffer()
    for i in range(3):
        buf.append(make_span(i))
    path = tmp_path / "spans.jsonl"
    buf.write_jsonl(str(path))
    lines = path.read_text().splitlines()
    assert len(lines) == 3
    docs = [json.loads(line) for line in lines]
    assert [d["span_id"] for d in docs] == [0, 1, 2]
    assert all(d["service"] == "queue" and d["nbytes"] == 4 * KB
               for d in docs)
    # keys are sorted, so the export is byte-deterministic
    assert all(list(d) == sorted(d) for d in docs)


def test_buffer_bounded_and_digest_stable():
    buf = TraceBuffer(capacity=2)
    assert buf.append(make_span(0)) is True
    assert buf.append(make_span(1)) is True
    digest_full = buf.digest()
    assert buf.append(make_span(2)) is False
    assert len(buf) == 2 and buf.dropped == 1
    # dropping preserves the already-recorded prefix
    assert buf.digest() == digest_full


# -- Chrome trace events -------------------------------------------------------

def test_chrome_trace_structure():
    buf_a, buf_b = TraceBuffer(), TraceBuffer()
    buf_a.append(make_span(0, worker="azurebench#0"))
    buf_a.append(make_span(1, worker="azurebench#1",
                           status="error", error="ServerBusyError"))
    buf_b.append(make_span(0, worker="azurebench#0"))
    doc = chrome_trace([("fig6@1", buf_a), ("fig6@2", buf_b)])
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    procs = {e["pid"]: e["args"]["name"] for e in events
             if e["ph"] == "M" and e["name"] == "process_name"}
    assert procs == {1: "fig6@1", 2: "fig6@2"}
    threads = {(e["pid"], e["tid"]): e["args"]["name"] for e in events
               if e["ph"] == "M" and e["name"] == "thread_name"}
    assert threads[(1, 1)] == "azurebench#0"
    assert threads[(1, 2)] == "azurebench#1"
    spans = [e for e in events if e["ph"] == "X"]
    assert len(spans) == 3
    first = spans[0]
    # timestamps are microseconds
    assert first["ts"] == 0.0 and first["dur"] == pytest.approx(0.25e6)
    assert first["name"] == "queue.put_message"
    assert first["args"]["phase"] == "put_4096"
    errored = [e for e in spans if e["args"]["status"] == "error"]
    assert len(errored) == 1
    assert errored[0]["args"]["error"] == "ServerBusyError"
    assert "server" not in errored[0]["args"]


# -- Manifest ------------------------------------------------------------------

def test_manifest_round_trip(tmp_path):
    config = RunConfig(seed=42, label="fig6", trace=True)
    manifest = RunManifest.from_config(config, figure="fig6", scale="quick",
                                       workers=(1, 2, 4))
    path = tmp_path / "manifest.json"
    manifest.write(str(path))
    doc = json.loads(path.read_text())
    assert doc["figure"] == "fig6"
    assert doc["scale"] == "quick"
    assert doc["backend"] == "sim"
    assert doc["seed"] == 42
    assert doc["workers"] == [1, 2, 4]
    assert doc["trace"] is True
    assert doc["calibration"] and doc["limits"]
    # byte-determinism: no wall clock, stable key order
    assert manifest.to_json() == RunManifest.from_config(
        config, figure="fig6", scale="quick", workers=(1, 2, 4)).to_json()


# -- CLI -----------------------------------------------------------------------

TINY_SCALE = BenchScale(
    name="tiny",
    worker_counts=(1, 2),
    blob_total_chunks=4,
    blob_repeats=1,
    queue_total_messages=8,
    queue_message_sizes=(4 * KB,),
    shared_total_transactions=4,
    shared_think_times=(1.0,),
    table_entity_count=4,
    table_entity_sizes=(4 * KB,),
    seed=7,
)


def test_cli_trace_writes_artifacts(tmp_path, capsys, monkeypatch):
    monkeypatch.setattr("repro.cli.QUICK_SCALE", TINY_SCALE)
    out = tmp_path / "artifacts"
    assert main(["trace", "fig6", "--out", str(out)]) == 0
    captured = capsys.readouterr().out
    assert "Fig 6a" in captured and "traced 2 runs" in captured

    trace = json.loads((out / "trace.json").read_text())
    pids = {e["args"]["name"] for e in trace["traceEvents"]
            if e.get("ph") == "M" and e["name"] == "process_name"}
    assert pids == {"fig6@1", "fig6@2"}
    assert any(e["ph"] == "X" for e in trace["traceEvents"])

    hists = json.loads((out / "histograms.json").read_text())
    assert set(hists) == {"merged", "runs"}
    assert "queue.put_message" in hists["merged"]
    assert set(hists["runs"]) == {"fig6@1", "fig6@2"}
    merged_count = hists["merged"]["queue.put_message"]["count"]
    assert merged_count == sum(
        run["queue.put_message"]["count"] for run in hists["runs"].values())

    manifest = json.loads((out / "manifest.json").read_text())
    assert manifest["figure"] == "fig6"
    assert manifest["seed"] == 7
    assert manifest["workers"] == [1, 2]
    assert manifest["trace"] is True


def test_cli_trace_rejects_unknown_figure(tmp_path, capsys):
    assert main(["trace", "fig12", "--out", str(tmp_path)]) == 2
    assert "unknown figure" in capsys.readouterr().err


def test_cli_fig_csv_writes_manifest(tmp_path, capsys, monkeypatch):
    monkeypatch.setattr("repro.cli.QUICK_SCALE", TINY_SCALE)
    out = tmp_path / "csv"
    assert main(["fig", "6", "--csv", str(out)]) == 0
    manifest = json.loads((out / "manifest.json").read_text())
    assert manifest["figure"] == "fig6"
    assert manifest["trace"] is False
    assert (out / "fig_6a.csv").exists()
