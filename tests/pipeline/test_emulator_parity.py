"""Emulator parity: faults, throttles, and analytics through the pipeline.

The refactor's payoff — the emulator gains every cross-cutting concern the
simulator had, with no sim-only code paths.  Fault windows fire on the
account's (wall or manual) clock; throttling is opt-in; Storage Analytics
and the resilience summary aggregate identically on both backends.
"""

import pytest

from repro.emulator import EmulatorAccount
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.sim import SimStorageAccount
from repro.simkit import Environment
from repro.storage import ManualClock
from repro.storage.analytics import attach_analytics, resilience_summary
from repro.storage.errors import (
    OperationTimedOutError,
    ServerBusyError,
    TransientServerError,
)


class TestEmulatorFaultPlan:
    def test_outage_window_fires_on_manual_clock(self):
        clock = ManualClock()
        account = EmulatorAccount(clock=clock)
        account.set_fault_plan(FaultPlan([
            FaultSpec(FaultKind.OUTAGE, service="queue",
                      start=10.0, duration=5.0),
        ]))
        queue = account.queue_client()
        queue.create_queue("que")  # t=0: before the window, succeeds
        clock.set(12.0)  # inside the window
        with pytest.raises(ServerBusyError):
            queue.put_message("que", b"x")
        assert account.server_busy_count == 1
        clock.set(20.0)  # window closed: service recovered
        queue.put_message("que", b"x")
        assert len(account.fault_plan.events) == 1

    def test_transient_fault_does_not_bump_busy_count(self):
        clock = ManualClock()
        account = EmulatorAccount(clock=clock)
        account.set_fault_plan(FaultPlan([
            FaultSpec(FaultKind.TRANSIENT_ERROR, service="table"),
        ]))
        table = account.table_client()
        with pytest.raises(TransientServerError):
            table.create_table("Tab")
        assert account.server_busy_count == 0

    def test_timeout_burns_budget_on_the_account_clock(self):
        clock = ManualClock()
        account = EmulatorAccount(clock=clock)
        account.set_fault_plan(FaultPlan([
            FaultSpec(FaultKind.TIMEOUT, service="blob", timeout_after=30.0),
        ]))
        blob = account.blob_client()
        with pytest.raises(OperationTimedOutError):
            blob.create_container("cont")
        # ManualClock.advance consumed the 30 s budget without sleeping
        assert clock.now() == pytest.approx(30.0)
        assert account.fault_plan.counts[FaultKind.TIMEOUT] == 1
        # the doomed request never applied its data-plane change
        assert account.state.blobs.list_containers() == []

    def test_partition_crash_hits_named_partition_only(self):
        clock = ManualClock()
        account = EmulatorAccount(clock=clock)
        account.set_fault_plan(FaultPlan([
            FaultSpec(FaultKind.PARTITION_CRASH, service="queue",
                      partition="hot", start=0.0, failover_delay=5.0),
        ]))
        queue = account.queue_client()
        queue.create_queue("cold")  # different partition: unaffected
        with pytest.raises(ServerBusyError):
            queue.create_queue("hot")
        clock.set(6.0)  # failover window over: the range recovered
        queue.create_queue("hot")

    def test_message_loss_fires_on_emulator(self):
        clock = ManualClock()
        account = EmulatorAccount(clock=clock)
        account.set_fault_plan(FaultPlan([
            FaultSpec(FaultKind.MESSAGE_LOSS, service="queue",
                      partition="que", probability=1.0),
        ]))
        queue = account.queue_client()
        queue.create_queue("que")
        queue.put_message("que", b"doomed")  # acked, silently dropped
        assert queue.get_message_count("que") == 0
        assert account.fault_plan.counts[FaultKind.MESSAGE_LOSS] == 1


class TestEmulatorThrottling:
    def test_targets_not_enforced_by_default(self):
        account = EmulatorAccount(clock=ManualClock())
        queue = account.queue_client()
        queue.create_queue("que")
        for i in range(600):  # > 500 msg/s, all at t=0
            queue.put_message("que", b"x")
        assert account.server_busy_count == 0

    def test_per_queue_target_enforced_when_opted_in(self):
        account = EmulatorAccount(clock=ManualClock(), enforce_targets=True)
        queue = account.queue_client()
        queue.create_queue("que")
        rejected = 0
        for i in range(510):
            try:
                queue.put_message("que", b"x")
            except ServerBusyError:
                rejected += 1
        assert rejected > 0
        assert account.server_busy_count == rejected

    def test_account_transaction_target_enforced(self):
        from repro.storage.limits import LIMITS_2012
        import dataclasses
        tiny = dataclasses.replace(LIMITS_2012,
                                   account_transactions_per_second=10)
        account = EmulatorAccount(clock=ManualClock(), limits=tiny,
                                  enforce_targets=True)
        blob = account.blob_client()
        blob.create_container("cont")
        with pytest.raises(ServerBusyError):
            for i in range(20):
                blob.upload_blob("cont", f"bb{i}", b"x")


class TestAnalyticsParity:
    def _drive_emulator(self):
        account = EmulatorAccount(clock=ManualClock())
        log, metrics = attach_analytics(account)
        account.set_fault_plan(FaultPlan([
            FaultSpec(FaultKind.OUTAGE, service="queue", partition="bad"),
        ]))
        queue = account.queue_client()
        queue.create_queue("que")
        queue.put_message("que", b"payload")
        with pytest.raises(ServerBusyError):
            queue.put_message("bad", b"x")
        return account, log, metrics

    def test_emulator_requests_logged_with_status_codes(self):
        account, log, metrics = self._drive_emulator()
        assert [r.status_code for r in log] == [201, 201, 503]
        failure = list(log)[-1]
        assert failure.error_code == "ServerBusy"
        assert failure.server_latency == 0.0

    def test_resilience_summary_aggregates_both_backends(self):
        # emulator side
        account, _, emu_metrics = self._drive_emulator()
        emu = resilience_summary(emu_metrics, plan=account.fault_plan)
        assert emu.faults_injected == {"outage": 1}
        assert 0.0 < emu.availability["queue"] < 1.0

        # sim side: same workload shape through the DES pipeline
        env = Environment()
        sim_account = SimStorageAccount(env)
        _, sim_metrics = attach_analytics(sim_account.cluster)
        sim_account.cluster.set_fault_plan(FaultPlan([
            FaultSpec(FaultKind.OUTAGE, service="queue", partition="bad"),
        ]))

        def driver():
            queue = sim_account.queue_client()
            yield from queue.create_queue("que")
            yield from queue.put_message("que", b"payload")
            try:
                yield from queue.put_message("bad", b"x")
            except ServerBusyError:
                pass

        env.process(driver())
        env.run()
        sim = resilience_summary(sim_metrics,
                                 plan=sim_account.cluster.fault_plan)
        assert sim.faults_injected == emu.faults_injected
        assert sim.availability == emu.availability

    def test_attach_analytics_accepts_sim_account_directly(self):
        env = Environment()
        account = SimStorageAccount(env)
        log, _ = attach_analytics(account)  # via the .pipeline property

        def driver():
            yield from account.blob_client().create_container("cont")

        env.process(driver())
        env.run()
        assert [r.operation for r in log] == ["create_container"]
        record = next(iter(log))
        assert record.server_latency > 0.0
        assert record.end_to_end_latency > record.server_latency
