"""Randomized cross-backend equivalence through both executors.

One seeded operation sequence — including operations engineered to fail —
is pushed through the DES executor (sim clients inside a simkit process)
and the blocking executor (emulator clients).  Because both derive every
method from the same registry body, the final data-plane state AND the
per-operation error classes must match exactly.
"""

import numpy as np
import pytest

from repro.emulator import EmulatorAccount
from repro.sim import SimStorageAccount
from repro.simkit import Environment
from repro.storage import KB, ManualClock

VIS = 3600  # visibility long enough that sim-time never re-reveals messages


def random_op_sequence(seed, n_ops=150):
    """(method, args, kwargs) tuples over all four services, ~1/3 failing."""
    rng = np.random.default_rng(seed)
    ops = [
        ("blob", "create_container", ("cont",), {}),
        ("blob", "create_page_blob", ("cont", "pb", 64 * KB), {}),
        ("queue", "create_queue", ("que",), {}),
        ("table", "create_table", ("Tab",), {}),
        ("cache", "create_cache", ("hot",), {}),
    ]
    for i in range(n_ops):
        size = int(rng.integers(1, 8)) * 64
        payload = bytes([i % 256]) * size
        kind = int(rng.integers(0, 16))
        if kind == 0:
            ops.append(("blob", "put_block", ("cont", "bb", f"b{i:04d}",
                                              payload), {}))
            ops.append(("blob", "put_block_list",
                        ("cont", "bb", [f"b{i:04d}"]), {"merge": True}))
        elif kind == 1:  # commit a block that was never staged -> error
            ops.append(("blob", "put_block_list",
                        ("cont", "bb", [f"missing{i}"]), {"merge": True}))
        elif kind == 2:
            offset = (i * 512) % (64 * KB - 512)
            ops.append(("blob", "put_page",
                        ("cont", "pb", offset - offset % 512,
                         payload[:512].ljust(512, b"\0")), {}))
        elif kind == 3:  # unaligned page write -> error
            ops.append(("blob", "put_page", ("cont", "pb", 7, payload), {}))
        elif kind == 4:  # download a blob that may not exist yet
            ops.append(("blob", "download_block_blob", ("cont", "bb"), {}))
        elif kind == 5:  # container that was never created -> error
            ops.append(("blob", "upload_blob", ("nope", "bb", payload), {}))
        elif kind == 6:
            ops.append(("queue", "put_message", ("que", payload), {}))
        elif kind == 7:
            ops.append(("queue", "get_message", ("que",),
                        {"visibility_timeout": VIS}))
        elif kind == 8:  # queue that was never created -> error
            ops.append(("queue", "put_message", ("ghost", payload), {}))
        elif kind == 9:  # bogus receipt -> error
            ops.append(("queue", "delete_message",
                        ("que", f"id{i}", "bad-receipt"), {}))
        elif kind == 10:
            ops.append(("table", "insert",
                        ("Tab", "p", f"r{i % 20:04d}", {"Data": payload}),
                        {}))  # duplicates of r#### -> error
        elif kind == 11:
            ops.append(("table", "update",
                        ("Tab", "p", f"r{i % 20:04d}", {"Data": payload}),
                        {}))  # missing rows -> error
        elif kind == 12:
            ops.append(("table", "get", ("Tab", "p", f"r{i % 20:04d}"), {}))
        elif kind == 13:
            ops.append(("table", "query_partition", ("Tab", "p"), {}))
        elif kind == 14:
            ops.append(("cache", "put", ("hot", f"k{i % 10}", payload), {}))
        else:
            ops.append(("cache", "get", ("hot", f"k{i % 10}"), {}))
    return ops


def run_on_sim(ops):
    env = Environment()
    account = SimStorageAccount(env, seed=0)
    outcomes = []

    def driver():
        clients = {kind: getattr(account, f"{kind}_client")()
                   for kind in ("blob", "queue", "table", "cache")}
        for kind, method, args, kwargs in ops:
            try:
                yield from getattr(clients[kind], method)(*args, **kwargs)
            except Exception as exc:
                outcomes.append(type(exc).__name__)
            else:
                outcomes.append(None)

    env.process(driver())
    env.run()
    return account.state, account.cache_state, outcomes


def run_on_emulator(ops):
    account = EmulatorAccount(clock=ManualClock())
    outcomes = []
    clients = {kind: getattr(account, f"{kind}_client")()
               for kind in ("blob", "queue", "table", "cache")}
    for kind, method, args, kwargs in ops:
        try:
            getattr(clients[kind], method)(*args, **kwargs)
        except Exception as exc:
            outcomes.append(type(exc).__name__)
        else:
            outcomes.append(None)
    return account.state, account.cache_state, outcomes


def fingerprint(state, cache_state):
    cont = state.blobs.get_container("cont")
    blobs = {}
    for name in cont.list_blobs():
        b = cont.get_blob(name)
        data = b.download() if hasattr(b, "download") else b.read_all()
        blobs[name] = data.to_bytes()
    queue = state.queues.get_queue("que")
    messages = sorted(m.content.to_bytes() for m in queue._messages)
    table = state.tables.get_table("Tab")
    entities = {
        (e.partition_key, e.row_key): e.properties()["Data"]
        for pk in table.partitions()
        for e in table.query_partition(pk)
    }
    cache = cache_state.get_cache("hot")
    cached = {key: cache._items[key].value.to_bytes()
              for key in sorted(cache._items)}
    return blobs, messages, entities, cached


@pytest.mark.parametrize("seed", [11, 29, 47, 83])
def test_same_state_and_same_errors_on_both_executors(seed):
    ops = random_op_sequence(seed)
    sim_state, sim_cache, sim_outcomes = run_on_sim(ops)
    emu_state, emu_cache, emu_outcomes = run_on_emulator(ops)
    # some ops must actually have failed for this test to mean anything
    assert any(o is not None for o in sim_outcomes)
    assert sim_outcomes == emu_outcomes
    assert fingerprint(sim_state, sim_cache) == fingerprint(emu_state,
                                                            emu_cache)
