"""Randomized cross-backend equivalence through both executors.

One seeded operation sequence — including operations engineered to fail —
is pushed through the DES executor (sim clients inside a simkit process)
and the blocking executor (emulator clients).  Because both derive every
method from the same registry body, the final data-plane state AND the
per-operation error classes must match exactly.
"""

import numpy as np
import pytest

from repro.emulator import EmulatorAccount
from repro.sim import SimStorageAccount
from repro.simkit import Environment
from repro.storage import KB, ManualClock

VIS = 3600  # visibility long enough that sim-time never re-reveals messages


def random_op_sequence(seed, n_ops=150):
    """(method, args, kwargs) tuples over all four services, ~1/3 failing."""
    rng = np.random.default_rng(seed)
    ops = [
        ("blob", "create_container", ("cont",), {}),
        ("blob", "create_page_blob", ("cont", "pb", 64 * KB), {}),
        ("queue", "create_queue", ("que",), {}),
        ("table", "create_table", ("Tab",), {}),
        ("cache", "create_cache", ("hot",), {}),
    ]
    for i in range(n_ops):
        size = int(rng.integers(1, 8)) * 64
        payload = bytes([i % 256]) * size
        kind = int(rng.integers(0, 16))
        if kind == 0:
            ops.append(("blob", "put_block", ("cont", "bb", f"b{i:04d}",
                                              payload), {}))
            ops.append(("blob", "put_block_list",
                        ("cont", "bb", [f"b{i:04d}"]), {"merge": True}))
        elif kind == 1:  # commit a block that was never staged -> error
            ops.append(("blob", "put_block_list",
                        ("cont", "bb", [f"missing{i}"]), {"merge": True}))
        elif kind == 2:
            offset = (i * 512) % (64 * KB - 512)
            ops.append(("blob", "put_page",
                        ("cont", "pb", offset - offset % 512,
                         payload[:512].ljust(512, b"\0")), {}))
        elif kind == 3:  # unaligned page write -> error
            ops.append(("blob", "put_page", ("cont", "pb", 7, payload), {}))
        elif kind == 4:  # download a blob that may not exist yet
            ops.append(("blob", "download_block_blob", ("cont", "bb"), {}))
        elif kind == 5:  # container that was never created -> error
            ops.append(("blob", "upload_blob", ("nope", "bb", payload), {}))
        elif kind == 6:
            ops.append(("queue", "put_message", ("que", payload), {}))
        elif kind == 7:
            ops.append(("queue", "get_message", ("que",),
                        {"visibility_timeout": VIS}))
        elif kind == 8:  # queue that was never created -> error
            ops.append(("queue", "put_message", ("ghost", payload), {}))
        elif kind == 9:  # bogus receipt -> error
            ops.append(("queue", "delete_message",
                        ("que", f"id{i}", "bad-receipt"), {}))
        elif kind == 10:
            ops.append(("table", "insert",
                        ("Tab", "p", f"r{i % 20:04d}", {"Data": payload}),
                        {}))  # duplicates of r#### -> error
        elif kind == 11:
            ops.append(("table", "update",
                        ("Tab", "p", f"r{i % 20:04d}", {"Data": payload}),
                        {}))  # missing rows -> error
        elif kind == 12:
            ops.append(("table", "get", ("Tab", "p", f"r{i % 20:04d}"), {}))
        elif kind == 13:
            ops.append(("table", "query_partition", ("Tab", "p"), {}))
        elif kind == 14:
            ops.append(("cache", "put", ("hot", f"k{i % 10}", payload), {}))
        else:
            ops.append(("cache", "get", ("hot", f"k{i % 10}"), {}))
    return ops


def run_on_sim(ops, instrument=None):
    env = Environment()
    account = SimStorageAccount(env, seed=0)
    if instrument is not None:
        instrument(account)
    outcomes = []

    def driver():
        clients = {kind: getattr(account, f"{kind}_client")()
                   for kind in ("blob", "queue", "table", "cache")}
        for kind, method, args, kwargs in ops:
            try:
                yield from getattr(clients[kind], method)(*args, **kwargs)
            except Exception as exc:
                outcomes.append(type(exc).__name__)
            else:
                outcomes.append(None)

    env.process(driver())
    env.run()
    return account.state, account.cache_state, outcomes


def run_on_emulator(ops, instrument=None):
    account = EmulatorAccount(clock=ManualClock())
    if instrument is not None:
        instrument(account)
    outcomes = []
    clients = {kind: getattr(account, f"{kind}_client")()
               for kind in ("blob", "queue", "table", "cache")}
    for kind, method, args, kwargs in ops:
        try:
            getattr(clients[kind], method)(*args, **kwargs)
        except Exception as exc:
            outcomes.append(type(exc).__name__)
        else:
            outcomes.append(None)
    return account.state, account.cache_state, outcomes


def fingerprint(state, cache_state):
    cont = state.blobs.get_container("cont")
    blobs = {}
    for name in cont.list_blobs():
        b = cont.get_blob(name)
        data = b.download() if hasattr(b, "download") else b.read_all()
        blobs[name] = data.to_bytes()
    queue = state.queues.get_queue("que")
    messages = sorted(m.content.to_bytes() for m in queue._messages)
    table = state.tables.get_table("Tab")
    entities = {
        (e.partition_key, e.row_key): e.properties()["Data"]
        for pk in table.partitions()
        for e in table.query_partition(pk)
    }
    cache = cache_state.get_cache("hot")
    cached = {key: cache._items[key].value.to_bytes()
              for key in sorted(cache._items)}
    return blobs, messages, entities, cached


@pytest.mark.parametrize("seed", [11, 29, 47, 83])
def test_same_state_and_same_errors_on_both_executors(seed):
    ops = random_op_sequence(seed)
    sim_state, sim_cache, sim_outcomes = run_on_sim(ops)
    emu_state, emu_cache, emu_outcomes = run_on_emulator(ops)
    # some ops must actually have failed for this test to mean anything
    assert any(o is not None for o in sim_outcomes)
    assert sim_outcomes == emu_outcomes
    assert fingerprint(sim_state, sim_cache) == fingerprint(emu_state,
                                                            emu_cache)


@pytest.mark.parametrize("seed", [11, 47])
def test_same_span_stream_on_both_executors(seed):
    """Tracing sees the same logical round trips through both executors.

    Timing differs by construction (DES cost model vs manual clock), so
    the comparison covers everything a span records *except* the clock
    fields: operation identity, target, payload size, and verdict.
    """
    from repro.observability import Tracer

    ops = random_op_sequence(seed)
    tracers = {}

    def instrument_as(key):
        def instrument(account):
            tracers[key] = Tracer(trace_id=key).install(account)
        return instrument

    _, _, sim_outcomes = run_on_sim(ops, instrument_as("sim"))
    _, _, emu_outcomes = run_on_emulator(ops, instrument_as("emulator"))
    assert sim_outcomes == emu_outcomes

    def signature(tracer):
        return [(s.service, s.operation, s.partition, s.nbytes,
                 s.status, s.error) for s in tracer.spans]

    sim_sig = signature(tracers["sim"])
    emu_sig = signature(tracers["emulator"])
    assert len(sim_sig) > 0
    assert sim_sig == emu_sig
    # Validation failures (missing container, bad receipt, ...) are raised
    # by prepare/apply and never cross the pipeline — symmetrically on both
    # backends, so the traced stream is all-ok even though outcomes aren't.
    assert {s.status for s in tracers["sim"].spans} == {"ok"}


@pytest.mark.parametrize("seed", [29])
def test_same_error_spans_under_injected_faults(seed):
    """Pipeline-level failures produce identical error spans on both backends."""
    from repro.faults import FaultKind, FaultPlan, FaultSpec
    from repro.observability import Tracer

    ops = random_op_sequence(seed)
    tracers = {}

    def instrument_as(key):
        def instrument(account):
            plan = FaultPlan([FaultSpec(kind=FaultKind.TRANSIENT_ERROR,
                                        service="table", probability=1.0)],
                             seed=3)
            target = account.cluster if hasattr(account, "cluster") else account
            target.set_fault_plan(plan)
            tracers[key] = Tracer(trace_id=key).install(account)
        return instrument

    _, _, sim_outcomes = run_on_sim(ops, instrument_as("sim"))
    _, _, emu_outcomes = run_on_emulator(ops, instrument_as("emulator"))
    assert sim_outcomes == emu_outcomes

    def signature(tracer):
        return [(s.service, s.operation, s.partition, s.nbytes,
                 s.status, s.error, s.error_code) for s in tracer.spans]

    assert signature(tracers["sim"]) == signature(tracers["emulator"])
    statuses = {s.status for s in tracers["sim"].spans}
    assert statuses == {"ok", "error"}
    # Injected transient faults carry their verdict on the error span.
    for tracer in tracers.values():
        error_spans = [s for s in tracer.spans if not s.ok]
        assert error_spans
        assert all(s.fault == "transient_error" for s in error_spans)
        assert all(s.fault == "" for s in tracer.spans if s.ok)


@pytest.mark.parametrize("seed", [11])
def test_data_plane_fault_attribution_in_spans(seed):
    """Injected message loss / duplicate delivery is attributed in Span
    metadata (the fault verdict field), identically on both backends, so
    a history checker can tell injected anomalies from genuine bugs."""
    from repro.faults import FaultKind, FaultPlan, FaultSpec
    from repro.observability import Tracer

    ops = random_op_sequence(seed)
    tracers = {}

    def instrument_as(key):
        def instrument(account):
            # Loss at p=0.5 so some puts still land and the gets have
            # messages to duplicate; the plan's RNG draw sequence is
            # identical on both backends (same op order, same seed).
            plan = FaultPlan([
                FaultSpec(kind=FaultKind.MESSAGE_LOSS, service="queue",
                          partition="que", probability=0.5),
                FaultSpec(kind=FaultKind.DUPLICATE_DELIVERY, service="queue",
                          partition="que", probability=1.0),
            ], seed=5)
            target = account.cluster if hasattr(account, "cluster") else account
            target.set_fault_plan(plan)
            tracers[key] = Tracer(trace_id=key).install(account)
        return instrument

    _, _, sim_outcomes = run_on_sim(ops, instrument_as("sim"))
    _, _, emu_outcomes = run_on_emulator(ops, instrument_as("emulator"))
    assert sim_outcomes == emu_outcomes

    for tracer in tracers.values():
        verdicts = {(s.operation, s.fault) for s in tracer.spans if s.fault}
        # Some acked puts against "que" lost their payload; every get that
        # returned a message left it visible for another consumer.
        assert ("put_message", "message_loss") in verdicts
        assert ("get_message", "duplicate_delivery") in verdicts
        # The verdict never leaks onto unrelated operations.
        for span in tracer.spans:
            if span.fault:
                assert span.service == "queue" and span.partition == "que"
                assert span.status == "ok"
    sim_faults = [(s.operation, s.fault)
                  for s in tracers["sim"].spans if s.fault]
    emu_faults = [(s.operation, s.fault)
                  for s in tracers["emulator"].spans if s.fault]
    assert sim_faults == emu_faults
