"""Unit tests for the interceptor stack itself (repro.pipeline)."""

import pytest

from repro.cluster.ops import OpDescriptor, OpKind, Service
from repro.emulator import EmulatorAccount
from repro.pipeline import (
    AuthInterceptor,
    Interceptor,
    OpContext,
    Pipeline,
    OPERATIONS,
)
from repro.sim import SimStorageAccount
from repro.simkit import Environment
from repro.storage import ManualClock
from repro.storage.errors import AuthenticationFailedError


def _ctx():
    return OpContext(op=OpDescriptor(Service.BLOB, OpKind.CREATE_CONTAINER,
                                     partition="c"))


class Recorder(Interceptor):
    def __init__(self, name, trace):
        self.name = name
        self.trace = trace

    def before(self, ctx):
        self.trace.append(("before", self.name))

    def after(self, ctx):
        self.trace.append(("after", self.name))

    def failed(self, ctx, exc):
        self.trace.append(("failed", self.name, type(exc).__name__))


class TestPipeline:
    def test_before_in_order_after_reversed(self):
        trace = []
        pipe = Pipeline([Recorder("a", trace), Recorder("b", trace)])
        ctx = _ctx()
        pipe.run_before(ctx)
        pipe.run_after(ctx)
        assert trace == [("before", "a"), ("before", "b"),
                         ("after", "b"), ("after", "a")]

    def test_failed_reversed_and_sets_error(self):
        trace = []
        pipe = Pipeline([Recorder("a", trace), Recorder("b", trace)])
        ctx = _ctx()
        exc = ValueError("boom")
        pipe.run_failed(ctx, exc)
        assert ctx.error is exc
        assert trace == [("failed", "b", "ValueError"),
                         ("failed", "a", "ValueError")]

    def test_add_before_named_stage(self):
        trace = []
        a, b, c = Recorder("a", trace), Recorder("b", trace), Recorder("c", trace)
        pipe = Pipeline([a, c])
        pipe.add(b, before="c")
        assert pipe.stages() == ["a", "b", "c"]

    def test_add_before_missing_name_appends(self):
        trace = []
        pipe = Pipeline([Recorder("a", trace)])
        pipe.add(Recorder("z", trace), before="nope")
        assert pipe.stages() == ["a", "z"]

    def test_remove(self):
        trace = []
        a, b = Recorder("a", trace), Recorder("b", trace)
        pipe = Pipeline([a, b])
        pipe.remove(a)
        assert pipe.stages() == ["b"] and len(pipe) == 1


class TestCanonicalStacks:
    def test_sim_stack_order(self):
        account = SimStorageAccount(Environment())
        assert account.pipeline.stages() == ["faults", "throttles"]

    def test_emulator_stack_order(self):
        account = EmulatorAccount(clock=ManualClock())
        assert account.pipeline.stages() == ["faults"]
        throttled = EmulatorAccount(clock=ManualClock(), enforce_targets=True)
        assert throttled.pipeline.stages() == ["faults", "throttles"]

    def test_analytics_inserts_before_faults(self):
        from repro.storage.analytics import attach_analytics
        account = EmulatorAccount(clock=ManualClock(), enforce_targets=True)
        attach_analytics(account)
        assert account.pipeline.stages() == ["analytics", "faults",
                                             "throttles"]

    def test_attach_analytics_rejects_pipelineless_targets(self):
        from repro.storage.analytics import attach_analytics
        with pytest.raises(TypeError):
            attach_analytics(object())


class TestCustomInterceptor:
    """The docs' how-to: one custom observer sees both backends' traffic."""

    def test_custom_interceptor_on_both_backends(self):
        class CountBytes(Interceptor):
            name = "count-bytes"

            def __init__(self):
                self.nbytes = 0

            def after(self, ctx):
                self.nbytes += ctx.op.nbytes

        payload = b"x" * 1000

        env = Environment()
        sim_account = SimStorageAccount(env)
        sim_counter = CountBytes()
        sim_account.pipeline.add(sim_counter, before="faults")

        def driver():
            blob = sim_account.blob_client()
            yield from blob.create_container("cont")
            yield from blob.upload_blob("cont", "bb", payload)

        env.process(driver())
        env.run()

        emu_account = EmulatorAccount(clock=ManualClock())
        emu_counter = CountBytes()
        emu_account.pipeline.add(emu_counter, before="faults")
        emu_blob = emu_account.blob_client()
        emu_blob.create_container("cont")
        emu_blob.upload_blob("cont", "bb", payload)

        assert sim_counter.nbytes == emu_counter.nbytes == len(payload)


class TestAuthInterceptor:
    def test_auth_rejects_on_both_backends(self):
        def deny(ctx):
            raise AuthenticationFailedError("bad key")

        env = Environment()
        sim_account = SimStorageAccount(env)
        sim_account.pipeline.add(AuthInterceptor(deny), before="faults")
        failures = []

        def driver():
            blob = sim_account.blob_client()
            try:
                yield from blob.create_container("cont")
            except AuthenticationFailedError:
                failures.append("sim")

        env.process(driver())
        env.run()

        emu_account = EmulatorAccount(clock=ManualClock())
        emu_account.pipeline.add(AuthInterceptor(deny), before="faults")
        with pytest.raises(AuthenticationFailedError):
            emu_account.blob_client().create_container("cont")

        assert failures == ["sim"]
        # auth fired before the data plane: nothing was created anywhere
        assert sim_account.state.blobs.list_containers() == []
        assert emu_account.state.blobs.list_containers() == []


class TestRegistryDerivation:
    """The tentpole's acceptance check: clients are registry-derived."""

    def test_sim_and_emulator_expose_identical_surfaces(self):
        from repro.emulator.clients import (
            EmulatorBlobClient, EmulatorCacheClient,
            EmulatorQueueClient, EmulatorTableClient,
        )
        from repro.sim.clients import (
            SimBlobClient, SimCacheClient, SimQueueClient, SimTableClient,
        )
        pairs = {
            "blob": (SimBlobClient, EmulatorBlobClient),
            "queue": (SimQueueClient, EmulatorQueueClient),
            "table": (SimTableClient, EmulatorTableClient),
            "cache": (SimCacheClient, EmulatorCacheClient),
        }
        for kind, (sim_cls, emu_cls) in pairs.items():
            registered = set(OPERATIONS[kind])
            assert registered, kind
            for cls in (sim_cls, emu_cls):
                own = {n for n, v in cls.__dict__.items()
                       if callable(v) and not n.startswith("__")}
                assert own == registered, (kind, cls.__name__)

    def test_registry_bodies_carry_docstrings(self):
        from repro.sim.clients import SimQueueClient
        assert "GetMsgCount" in SimQueueClient.get_message_count.__doc__


class BeforeOnly(Interceptor):
    """Overrides only ``before`` — after/failed stay the base no-ops."""

    def __init__(self, trace):
        self.trace = trace

    def before(self, ctx):
        self.trace.append("before-only")


class TestPreboundHooks:
    """Hook stacks are pre-bound at mutation time and skip base no-ops."""

    def test_base_noop_hooks_are_skipped(self):
        trace = []
        pipe = Pipeline([BeforeOnly(trace)])
        assert len(pipe._before_hooks) == 1
        assert pipe._after_hooks == []
        assert pipe._failed_hooks == []

    def test_add_rebinds(self):
        trace = []
        pipe = Pipeline([])
        pipe.run_before(_ctx())
        assert trace == []
        pipe.add(Recorder("late", trace))
        pipe.run_before(_ctx())
        assert trace == [("before", "late")]

    def test_remove_rebinds(self):
        trace = []
        a, b = Recorder("a", trace), Recorder("b", trace)
        pipe = Pipeline([a, b])
        pipe.remove(a)
        pipe.run_after(_ctx())
        assert trace == [("after", "b")]

    def test_add_first_rebinds_in_order(self):
        trace = []
        pipe = Pipeline([Recorder("tail", trace)])
        pipe.add_first(Recorder("head", trace))
        pipe.run_before(_ctx())
        assert trace == [("before", "head"), ("before", "tail")]

    def test_failed_still_sets_error_with_empty_stack(self):
        pipe = Pipeline([BeforeOnly([])])
        ctx = _ctx()
        exc = ValueError("boom")
        pipe.run_failed(ctx, exc)
        assert ctx.error is exc
