"""Tests for CircuitBreaker and Deadline (repro.resilience)."""

import pytest

from repro.resilience import (
    BreakerState,
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
)


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        br = CircuitBreaker(failure_threshold=3, reset_timeout=10.0)
        for t in range(2):
            br.before_attempt(float(t))
            br.record_failure(float(t))
        assert br.state is BreakerState.CLOSED
        br.record_failure(2.0)
        assert br.state is BreakerState.OPEN
        assert br.trips == 1

    def test_open_rejects_without_a_round_trip(self):
        br = CircuitBreaker(failure_threshold=1, reset_timeout=10.0)
        br.record_failure(0.0)
        with pytest.raises(CircuitOpenError) as ei:
            br.before_attempt(5.0)
        assert ei.value.retry_at == 10.0
        assert br.rejections == 1

    def test_half_open_trial_success_closes(self):
        br = CircuitBreaker(failure_threshold=1, reset_timeout=10.0)
        br.record_failure(0.0)
        br.before_attempt(10.0)  # reset elapsed: trial admitted
        assert br.state is BreakerState.HALF_OPEN
        br.record_success(10.5)
        assert br.state is BreakerState.CLOSED
        br.before_attempt(11.0)  # and stays admitting

    def test_half_open_trial_failure_reopens(self):
        br = CircuitBreaker(failure_threshold=5, reset_timeout=10.0)
        for _ in range(5):
            br.record_failure(0.0)
        br.before_attempt(10.0)
        br.record_failure(10.0)  # one failure suffices in HALF_OPEN
        assert br.state is BreakerState.OPEN
        assert br.trips == 2
        with pytest.raises(CircuitOpenError):
            br.before_attempt(19.9)  # new window counted from the re-open

    def test_success_resets_the_failure_streak(self):
        br = CircuitBreaker(failure_threshold=2)
        br.record_failure(0.0)
        br.record_success(1.0)
        br.record_failure(2.0)
        assert br.state is BreakerState.CLOSED  # streak broken: not tripped

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=0.0)


class TestDeadline:
    def test_after_and_remaining(self):
        d = Deadline.after(10.0, 5.0)
        assert d.expires_at == 15.0
        assert d.remaining(12.0) == 3.0
        assert d.remaining(20.0) == 0.0  # never negative

    def test_expired(self):
        d = Deadline(15.0)
        assert not d.expired(14.999)
        assert d.expired(15.0)

    def test_allows_sleep_requires_time_left_afterwards(self):
        d = Deadline(15.0)
        assert d.allows_sleep(10.0, 4.0)
        assert not d.allows_sleep(10.0, 5.0)  # would wake exactly at expiry

    def test_shared_object_propagates_budget(self):
        # The propagation contract: nested layers consume the SAME clock.
        d = Deadline.after(0.0, 10.0)
        assert d.allows_sleep(0.0, 8.0)   # outer layer slept 8 s...
        assert not d.allows_sleep(8.0, 5.0)  # ...inner layer has only 2 s

    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            Deadline.after(0.0, -1.0)
