"""Regression tests for the half-open single-probe gate.

A HALF_OPEN breaker admits exactly one trial attempt; until that probe
reports back, every other caller is rejected.  Without the gate a herd
of workers sharing one breaker would all rush the dependency the
instant the reset window elapses — the stampede the breaker exists to
prevent.
"""

import pytest

from repro.resilience import BreakerState, CircuitBreaker, CircuitOpenError


def tripped_breaker(now=0.0, reset=10.0):
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=reset)
    breaker.before_attempt(now)
    breaker.record_failure(now)
    assert breaker.state is BreakerState.OPEN
    return breaker


def test_open_rejects_until_the_reset_window_elapses():
    breaker = tripped_breaker()
    with pytest.raises(CircuitOpenError) as exc:
        breaker.before_attempt(5.0)
    assert exc.value.retry_at == 10.0
    assert breaker.rejections == 1


def test_half_open_admits_exactly_one_probe():
    breaker = tripped_breaker()
    breaker.before_attempt(11.0)  # the trial probe
    assert breaker.state is BreakerState.HALF_OPEN
    # Concurrent callers while the probe is undecided: rejected, with
    # retry_at "now" (the outcome lands shortly; retry immediately).
    with pytest.raises(CircuitOpenError, match="trial probe in flight") as exc:
        breaker.before_attempt(11.2)
    assert exc.value.retry_at == 11.2
    with pytest.raises(CircuitOpenError):
        breaker.before_attempt(11.4)
    assert breaker.rejections == 2


def test_probe_success_recloses_and_readmits_everyone():
    breaker = tripped_breaker()
    breaker.before_attempt(11.0)
    breaker.record_success(11.5)
    assert breaker.state is BreakerState.CLOSED
    # The herd flows again, no gate.
    breaker.before_attempt(11.6)
    breaker.before_attempt(11.6)
    assert breaker.rejections == 0


def test_probe_failure_reopens_for_another_window():
    breaker = tripped_breaker()
    breaker.before_attempt(11.0)
    breaker.record_failure(11.5)
    assert breaker.state is BreakerState.OPEN
    assert breaker.trips == 2
    with pytest.raises(CircuitOpenError) as exc:
        breaker.before_attempt(12.0)
    assert exc.value.retry_at == 21.5
    # The next window admits a fresh single probe.
    breaker.before_attempt(22.0)
    assert breaker.state is BreakerState.HALF_OPEN
    with pytest.raises(CircuitOpenError, match="trial probe in flight"):
        breaker.before_attempt(22.1)


def test_probe_flag_clears_on_failure_not_just_success():
    """The in-flight flag must not leak across OPEN windows: a failed
    probe re-opens, and the *next* window's probe is admitted."""
    breaker = tripped_breaker()
    breaker.before_attempt(11.0)
    breaker.record_failure(11.0)
    breaker.before_attempt(21.5)  # would raise if the flag leaked
    assert breaker.state is BreakerState.HALF_OPEN
