"""Tests for the retry-policy layer (repro.resilience.policy)."""

import pytest

from repro.resilience import (
    ExponentialJitterBackoff,
    FixedBackoff,
    RetryBudget,
    RetryStats,
)
from repro.storage import ServerBusyError


BUSY = ServerBusyError("busy", retry_after=2.5)


class TestRetryStats:
    def test_defaults(self):
        stats = RetryStats()
        assert stats.logical_ops == 0
        assert stats.amplification == 1.0  # no ops yet -> neutral

    def test_amplification(self):
        stats = RetryStats(attempts=30, retries=10)
        assert stats.logical_ops == 20
        assert stats.amplification == pytest.approx(1.5)


class TestFixedBackoff:
    def test_honours_retry_after_hint(self):
        # The paper-faithful default: sleep exactly what the 503 says.
        assert FixedBackoff().backoff(1, BUSY) == 2.5

    def test_default_hint_when_error_has_none(self):
        assert FixedBackoff().backoff(1, ValueError("x")) == 1.0

    def test_explicit_delay_overrides_hint(self):
        policy = FixedBackoff(0.25)
        assert [policy.backoff(k, BUSY) for k in (1, 5, 50)] == [0.25] * 3

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            FixedBackoff(-1.0)


class TestExponentialJitterBackoff:
    def test_delays_bounded_by_growing_ceiling(self):
        policy = ExponentialJitterBackoff(base=0.5, factor=2.0, cap=8.0,
                                          seed=3)
        for attempt in range(1, 12):
            ceiling = min(8.0, 0.5 * 2.0 ** (attempt - 1))
            delay = policy.backoff(attempt, BUSY)
            assert 0.0 <= delay <= ceiling

    def test_seeded_and_reproducible(self):
        a = ExponentialJitterBackoff(seed=11)
        b = ExponentialJitterBackoff(seed=11)
        assert [a.backoff(k, BUSY) for k in range(1, 9)] == \
            [b.backoff(k, BUSY) for k in range(1, 9)]

    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialJitterBackoff(base=0.0)
        with pytest.raises(ValueError):
            ExponentialJitterBackoff(factor=0.5)
        with pytest.raises(ValueError):
            ExponentialJitterBackoff(base=2.0, cap=1.0)


class TestRetryBudget:
    def test_gives_up_when_exhausted(self):
        policy = RetryBudget(capacity=2, refill_rate=0.0)
        assert policy.backoff(1, BUSY, now=0.0) is not None
        assert policy.backoff(2, BUSY, now=0.0) is not None
        assert policy.backoff(3, BUSY, now=0.0) is None
        assert policy.exhaustions == 1

    def test_tokens_refill_over_sim_time(self):
        policy = RetryBudget(capacity=1, refill_rate=0.5)
        assert policy.backoff(1, BUSY, now=0.0) is not None
        assert policy.backoff(2, BUSY, now=0.0) is None
        # 2 simulated seconds x 0.5/s = 1 token back.
        assert policy.backoff(3, BUSY, now=2.0) is not None

    def test_inner_policy_supplies_the_delay(self):
        policy = RetryBudget(capacity=5, refill_rate=0.0,
                             inner=FixedBackoff(0.125))
        assert policy.backoff(1, BUSY, now=0.0) == 0.125

    def test_default_inner_is_paper_fixed(self):
        assert RetryBudget().backoff(1, BUSY, now=0.0) == 2.5

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryBudget(capacity=0)
        with pytest.raises(ValueError):
            RetryBudget(refill_rate=-1.0)


class TestStatsIdentity:
    def test_each_policy_carries_its_own_stats(self):
        a, b = FixedBackoff(), FixedBackoff()
        a.stats.attempts += 1
        assert b.stats.attempts == 0
        assert a.stats.policy == "fixed"
        assert ExponentialJitterBackoff().stats.policy == "expo-jitter"
        assert RetryBudget().stats.policy == "retry-budget"
