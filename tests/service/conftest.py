"""Shared fixtures: one live SN/DN cluster per test module + raw HTTP.

The ``RawClient`` speaks hand-rolled HTTP/1.1 through ``http.client`` —
no SDK, no repro wire clients — so the conformance suite exercises the
server exactly as an external client would.
"""

import base64
import dataclasses
import http.client
import time

import pytest

from repro.service import TenantConfig, TenantDirectory
from repro.service.cluster import ClusterRunner, ServiceCluster
from repro.service.sharedkey import DEV_ACCOUNT, DEV_KEY, sign_request
from repro.service.wire import _http_date
from repro.storage.limits import LIMITS_2012

#: A second tenant with its own (valid base64) key.
TENANT_B = "contoso"
TENANT_B_KEY = base64.b64encode(b"contoso-secret-key-material-0001").decode()

#: A tenant with targets enforced and a tiny transaction budget, for
#: deterministic ServerBusy responses.
THROTTLED = "throttled"
THROTTLED_KEY = base64.b64encode(b"throttled-secret-key-material-01").decode()
THROTTLED_LIMITS = dataclasses.replace(
    LIMITS_2012, account_transactions_per_second=3)


@pytest.fixture(scope="module")
def cluster():
    tenants = TenantDirectory([
        TenantConfig.development(enforce_targets=False),
        TenantConfig(TENANT_B, TENANT_B_KEY, enforce_targets=False),
        TenantConfig(THROTTLED, THROTTLED_KEY, limits=THROTTLED_LIMITS,
                     enforce_targets=True),
    ])
    cluster = ServiceCluster(nodes=2, dn=2, tenants=tenants)
    with ClusterRunner(cluster):
        yield cluster


class RawClient:
    """Sign-and-send raw HTTP against one service node's listeners."""

    def __init__(self, endpoints, account=DEV_ACCOUNT, key=DEV_KEY):
        self.endpoints = endpoints
        self.account = account
        self.key = key

    def request(self, service, method, path, *, query=None, headers=None,
                body=b"", sign=True, authorization=None):
        """One exchange; ``path`` is below the account prefix."""
        query = dict(query or {})
        headers = dict(headers or {})
        full_path = f"/{self.account}{path}"
        headers.setdefault("x-ms-date", _http_date(time.time()))
        headers.setdefault("x-ms-version", "2012-02-12")
        if authorization is not None:
            headers["Authorization"] = authorization
        elif sign:
            signable = dict(headers)
            signable["Content-Length"] = str(len(body))
            headers["Authorization"] = sign_request(
                self.account, self.key, method, full_path, query,
                signable, table_flavor=(service == "table"))
        target = full_path
        if query:
            target += "?" + "&".join(f"{k}={v}" for k, v in query.items())
        host, port = self.endpoints[service]
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request(method, target, body=body or None, headers=headers)
            resp = conn.getresponse()
            payload = resp.read()
            lower = {k.lower(): v for k, v in resp.getheaders()}
            return resp.status, lower, payload
        finally:
            conn.close()


@pytest.fixture(scope="module")
def raw(cluster):
    return RawClient(cluster.endpoints(0))


@pytest.fixture(scope="module")
def raw_sn1(cluster):
    """Same cluster via the second service node (any SN serves any key)."""
    return RawClient(cluster.endpoints(1))
