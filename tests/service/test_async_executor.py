"""AsyncExecutor drives the same state machines as the emulator path.

``drive_operation`` is shared byte-for-byte between BlockingExecutor
(emulator threads) and AsyncExecutor (data-node event loops); these
tests run the async side against a bare shard — no sockets — including
the injected-TIMEOUT burn path, which must suspend on the event loop
(or advance a ManualClock) *after* the failure verdict is decided.
"""

import asyncio

import pytest

from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.pipeline import OPERATIONS
from repro.service.datanode import _Shard
from repro.storage.clock import ManualClock
from repro.storage.content import BytesContent
from repro.storage.errors import OperationTimedOutError, QueueNotFoundError


def _run(shard, client, op, *args, **kwargs):
    spec = OPERATIONS[client][op]
    return asyncio.run(
        shard.executor.run(spec, shard.op_call, args, kwargs, worker="t"))


@pytest.fixture
def shard():
    return _Shard("testacct", clock=ManualClock())


class TestHappyPath:
    def test_queue_round_trip(self, shard):
        _run(shard, "queue", "create_queue", "jobs")
        _run(shard, "queue", "put_message", "jobs", BytesContent(b"work"))
        msg = _run(shard, "queue", "get_message", "jobs",
                   visibility_timeout=30.0)
        assert msg.content.to_bytes() == b"work"

    def test_storage_errors_propagate(self, shard):
        with pytest.raises(QueueNotFoundError):
            _run(shard, "queue", "put_message", "ghostq",
                 BytesContent(b"x"))

    def test_event_loop_serializes_mutations(self, shard):
        """Many concurrent inserts all land: ops run to completion
        between awaits, so no two mutations interleave."""
        _run(shard, "table", "create_table", "conc")
        spec = OPERATIONS["table"]["insert"]

        async def storm():
            await asyncio.gather(*[
                shard.executor.run(
                    spec, shard.op_call,
                    ("conc", "p", f"r{i}", {"i": i}), {})
                for i in range(25)
            ])

        asyncio.run(storm())
        rows = _run(shard, "table", "query_partition", "conc", "p", None)
        assert len(rows) == 25


class TestInjectedTimeouts:
    def _plan(self):
        return FaultPlan([
            FaultSpec(kind=FaultKind.TIMEOUT, service="queue",
                      start=0.0, duration=1e9, probability=1.0,
                      timeout_after=7.5),
        ], seed=1)

    def test_timeout_burns_budget_on_manual_clock(self, shard):
        _run(shard, "queue", "create_queue", "doomed")
        shard.fault_plan = self._plan()
        before = shard.state.clock.now()
        with pytest.raises(OperationTimedOutError):
            _run(shard, "queue", "put_message", "doomed",
                 BytesContent(b"x"))
        # The doomed request consumed exactly its patience budget.
        assert shard.state.clock.now() - before == pytest.approx(7.5)
        assert shard.fault_plan.counts[FaultKind.TIMEOUT] == 1

    def test_timeout_does_not_apply_the_mutation(self, shard):
        _run(shard, "queue", "create_queue", "doomed")
        shard.fault_plan = self._plan()
        with pytest.raises(OperationTimedOutError):
            _run(shard, "queue", "put_message", "doomed",
                 BytesContent(b"x"))
        shard.fault_plan = None
        count = _run(shard, "queue", "get_message_count", "doomed")
        assert count == 0

    def test_other_services_unaffected(self, shard):
        shard.fault_plan = self._plan()
        _run(shard, "table", "create_table", "fine")
        _run(shard, "table", "insert", "fine", "p", "r", {"v": 1})
        entity = _run(shard, "table", "get", "fine", "p", "r")
        assert entity["v"] == 1
