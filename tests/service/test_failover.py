"""DN failure domain on a live cluster: kills, drains, hedges, 503s.

Every test here stands up its own small replicated cluster with fast
heartbeat timers (a killed data node would poison the shared module
fixture), drives it through the public wire clients, and checks the
failure-domain contract: committed writes survive a crash, membership
detects deaths and rebalances, reads hedge around slow primaries, and
an ownerless shard surfaces 503 + Retry-After that the client honors.
"""

import contextlib
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.service import DEV_KEY, TenantConfig, TenantDirectory
from repro.service.client import (ServiceConnection, WireBlobClient,
                                  WireQueueClient, WireTableClient)
from repro.service.cluster import ClusterRunner, ServiceCluster
from repro.service.membership import FailureDomainConfig, NodeState
from repro.storage.errors import StorageError
from repro.traffic.engine import LoadConfig, _drive as drive

CONTAINER, QUEUE, TABLE, PARTITION = "cont", "failq", "failt", "fd"


def fast_config(replicas=2, seed=11, **overrides):
    """Failure domain with sub-second detection, for test-speed kills."""
    settings = dict(
        replicas=replicas, health_checks=True, heartbeat_interval=0.05,
        suspect_after=1, dead_after=3, heartbeat_timeout=0.3,
        hedge_delay=0.02, retry_after=0.25, seed=seed)
    settings.update(overrides)
    return FailureDomainConfig(**settings)


@contextlib.contextmanager
def replicated_cluster(dn=3, replicas=2, **overrides):
    tenants = TenantDirectory(
        [TenantConfig.development(enforce_targets=False)])
    cluster = ServiceCluster(
        nodes=1, dn=dn, tenants=tenants,
        failure_domain=fast_config(replicas=replicas, **overrides))
    with ClusterRunner(cluster) as runner:
        yield cluster, runner


def make_clients(cluster, *, busy_retries=4):
    conn = ServiceConnection(cluster.endpoints(0), "devstoreaccount1",
                             DEV_KEY, busy_retries=busy_retries)
    return (WireBlobClient(conn), WireQueueClient(conn),
            WireTableClient(conn))


def seed_data(cluster, *, blobs=8, rows=8, messages=5):
    """Create the namespaces and commit a known data set; return it."""
    bc, qc, tc = make_clients(cluster)
    drive(bc.create_container(CONTAINER))
    drive(qc.create_queue(QUEUE))
    drive(tc.create_table(TABLE))
    data = {}
    for i in range(blobs):
        body = f"payload-{i}".encode() * 40
        drive(bc.upload_blob(CONTAINER, f"b-{i}", body))
        data[f"b-{i}"] = body
    for i in range(rows):
        drive(tc.insert(TABLE, PARTITION, f"r-{i}", {"v": f"val-{i}"}))
    for i in range(messages):
        drive(qc.put_message(QUEUE, f"msg-{i}".encode()))
    return data


def to_bytes(content):
    if isinstance(content, (bytes, bytearray, memoryview)):
        return bytes(content)
    return content.to_bytes()


def assert_data_intact(cluster, data, *, rows=8, messages=5):
    bc, qc, tc = make_clients(cluster)
    for name, body in data.items():
        assert to_bytes(drive(bc.download_block_blob(
            CONTAINER, name))) == body, f"blob {name} lost or corrupted"
    for i in range(rows):
        entity = drive(tc.get(TABLE, PARTITION, f"r-{i}"))
        assert entity.get("v") == f"val-{i}"
    drained = set()
    while True:
        msg = drive(qc.get_message(QUEUE, visibility_timeout=3600.0))
        if msg is None:
            break
        drained.add(to_bytes(msg.content))
    # At-least-once: every committed message drains (extras tolerated).
    assert {f"msg-{i}".encode() for i in range(messages)} <= drained


class TestCrashFailover:
    def test_kill_one_dn_keeps_committed_writes_readable(self):
        with replicated_cluster(dn=3, replicas=2) as (cluster, runner):
            data = seed_data(cluster)
            runner.kill_data_node(1)
            assert runner.wait_deaths_detected(1, timeout=10.0)
            assert runner.wait_settled(timeout=15.0)
            membership = cluster.membership
            assert membership.state(1) is NodeState.DEAD
            assert 1 not in membership.ring.nodes
            assert membership.counters["deaths"] == 1
            assert membership.counters["rebalances"] >= 1
            assert_data_intact(cluster, data)

    def test_rebalance_restores_replication_under_double_fault(self):
        """After the first heal re-replicates, a second kill is survivable:
        every shard must be readable from the lone remaining node."""
        with replicated_cluster(dn=3, replicas=2) as (cluster, runner):
            data = seed_data(cluster, messages=0)
            runner.kill_data_node(0)
            assert runner.wait_deaths_detected(1, timeout=10.0)
            assert runner.wait_settled(timeout=15.0)
            assert cluster.membership.counters["shards_migrated"] > 0
            runner.kill_data_node(1)
            assert runner.wait_deaths_detected(2, timeout=10.0)
            assert runner.wait_settled(timeout=15.0)
            assert cluster.membership.ring.nodes == (2,)
            assert_data_intact(cluster, data, messages=0)

    def test_suspect_precedes_death(self):
        with replicated_cluster(dn=2, replicas=2) as (cluster, runner):
            seed_data(cluster, blobs=1, rows=0, messages=0)
            runner.kill_data_node(0)
            assert runner.wait_deaths_detected(1, timeout=10.0)
            counters = cluster.membership.counters
            assert counters["suspects"] >= 1
            assert counters["heartbeats"] >= 1
            assert cluster.membership.live_indices() == [1]

    def test_drain_retires_node_without_a_death(self):
        with replicated_cluster(dn=3, replicas=2) as (cluster, runner):
            data = seed_data(cluster, messages=0)
            runner.drain_data_node(0, timeout=30.0)
            membership = cluster.membership
            assert membership.state(0) is NodeState.DEAD
            assert 0 not in membership.ring.nodes
            # A planned drain is not a crash: no death was ever declared.
            assert membership.counters["deaths"] == 0
            assert_data_intact(cluster, data, messages=0)


class TestNoOwner503:
    def test_ownerless_shard_503_and_client_honors_retry_after(self):
        with replicated_cluster(dn=1, replicas=1) as (cluster, runner):
            bc, _, _ = make_clients(cluster, busy_retries=0)
            drive(bc.create_container(CONTAINER))
            runner.kill_data_node(0)
            assert runner.wait_deaths_detected(1, timeout=10.0)

            with pytest.raises(StorageError) as info:
                drive(bc.upload_blob(CONTAINER, "orphan", b"x"))
            assert info.value.status_code == 503
            assert getattr(info.value, "retry_after", None) == 0.25
            assert cluster.membership.counters["no_owner_503s"] >= 1

            # With a retry budget the client sleeps out each advertised
            # Retry-After before giving up: two retries >= 2 * 0.25 s.
            bc2, _, _ = make_clients(cluster, busy_retries=2)
            started = time.monotonic()
            with pytest.raises(StorageError) as info:
                drive(bc2.download_block_blob(CONTAINER, "orphan"))
            assert info.value.status_code == 503
            assert time.monotonic() - started >= 0.45


class TestHedgedReads:
    def test_hedged_read_beats_a_slow_primary(self):
        # Lazy heartbeats: the stalled node must stay in the ring long
        # enough for the read path (not death detection) to route around
        # it, which is exactly what the hedge is for.
        with replicated_cluster(
                dn=2, replicas=2, heartbeat_interval=0.25,
                heartbeat_timeout=2.0, dead_after=8) as (cluster, runner):
            bc, _, _ = make_clients(cluster)
            drive(bc.create_container(CONTAINER))
            body = b"hot-object" * 64
            drive(bc.upload_blob(CONTAINER, "hot", body))

            membership = cluster.membership
            label = f"devstoreaccount1/blob/{CONTAINER}/hot"
            primary = membership.ring.owners(label)[0]
            runner.set_data_node_slow(primary, 0.8)
            started = time.monotonic()
            got = to_bytes(drive(bc.download_block_blob(CONTAINER, "hot")))
            elapsed = time.monotonic() - started
            runner.set_data_node_slow(primary, 0.0)

            assert got == body
            assert elapsed < 0.6, "read waited out the slow primary"
            assert membership.counters["hedges"] >= 1


class TestWireFidelity:
    """Even rejects decode like the 2012 wire: XML body + error header."""

    def test_unsupported_version_rejected_with_xml_error(self, raw):
        status, headers, body = raw.request(
            "blob", "GET", f"/{CONTAINER}/x",
            headers={"x-ms-version": "2009-09-19"})
        assert status == 400
        assert headers["x-ms-error-code"] == "InvalidHeaderValue"
        assert headers["content-type"] == "application/xml"
        assert b"<Error><Code>InvalidHeaderValue</Code>" in body
        assert b"2012-02-12" in body

    def test_unknown_uri_shape_rejected_with_invalid_uri(self, raw):
        status, headers, body = raw.request(
            "queue", "GET", "/someq/messages",
            query={"numofmessages": "abc"})
        assert status == 400
        assert headers["x-ms-error-code"] == "InvalidUri"
        assert b"<Error><Code>InvalidUri</Code>" in body
        # The table flavor answers the same failure in OData JSON.
        status, headers, body = raw.request(
            "table", "POST", "/Tbl", body=b"not json",
            headers={"Content-Type": "application/json"})
        assert status == 400
        assert headers["x-ms-error-code"] == "InvalidUri"
        assert b'"code": "InvalidUri"' in body


class TestGracefulShutdown:
    @pytest.mark.parametrize("sig", [signal.SIGINT, signal.SIGTERM])
    def test_serve_exits_zero_on_signal(self, sig):
        repo = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(repo, "src")
        proc = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro", "serve",
             "--duration", "60"],
            cwd=repo, env=env, text=True, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE)
        try:
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                line = proc.stdout.readline()
                if not line or "serving" in line:
                    break
            assert proc.poll() is None, "serve died before the signal"
            proc.send_signal(sig)
            _, stderr = proc.communicate(timeout=15.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0
        assert "shutting down" in stderr


class TestLoadKillValidation:
    def test_kill_flags_must_pair(self):
        with pytest.raises(ValueError):
            LoadConfig(backend="service", kill_dn=0)
        with pytest.raises(ValueError):
            LoadConfig(backend="service", kill_at=5.0)

    def test_kill_must_target_an_existing_dn_inside_the_run(self):
        with pytest.raises(ValueError):
            LoadConfig(backend="service", dn=2, kill_dn=2, kill_at=5.0)
        with pytest.raises(ValueError):
            LoadConfig(backend="service", dn=2, kill_dn=0, kill_at=99.0)

    def test_failure_domain_is_service_backend_only(self):
        with pytest.raises(ValueError):
            LoadConfig(backend="sim", replicas=2)
        with pytest.raises(ValueError):
            LoadConfig(backend="sim", kill_dn=0, kill_at=5.0)

    def test_replicas_bounded_by_dn(self):
        with pytest.raises(ValueError):
            LoadConfig(backend="service", dn=2, replicas=3)
        config = LoadConfig(backend="service", dn=3, replicas=2,
                            kill_dn=1, kill_at=5.0)
        described = config.describe()
        assert described["dn"] == 3 and described["replicas"] == 2
        assert described["kill_dn"] == 1 and described["kill_at_s"] == 5.0

    def test_default_describe_omits_failure_domain_keys(self):
        described = LoadConfig(backend="service").describe()
        for key in ("dn", "replicas", "kill_dn", "kill_at_s"):
            assert key not in described
