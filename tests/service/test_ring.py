"""Property suite for the DN placement ring + the routing-equivalence pin.

The ring replaced the service nodes' static ``crc32(label) mod M`` map,
so besides the classic consistent-hashing properties (distinct replica
sets, construction-order independence, minimal movement, rough balance)
this file pins the backward-compatibility claim: with a single data
node the ring routes every label exactly where the old modulo map did.
"""

import zlib
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.membership import FailureDomainConfig, Membership
from repro.service.ring import DEFAULT_VNODES, HashRing

node_ids = st.integers(min_value=0, max_value=31)
node_sets = st.sets(node_ids, min_size=1, max_size=8)
labels = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1, max_size=48)


# -- replica sets -----------------------------------------------------------

@settings(max_examples=200, deadline=None)
@given(nodes=node_sets, label=labels,
       replicas=st.integers(min_value=1, max_value=5))
def test_owners_are_distinct_ring_members(nodes, label, replicas):
    ring = HashRing(nodes, replicas=replicas)
    owners = ring.owners(label)
    assert len(owners) == len(set(owners)) == min(replicas, len(nodes))
    assert all(node in nodes for node in owners)
    assert owners[0] == ring.primary(label)


@settings(max_examples=100, deadline=None)
@given(nodes=node_sets, label=labels)
def test_replica_override_widens_without_reordering(nodes, label):
    ring = HashRing(nodes, replicas=1)
    narrow = ring.owners(label)
    wide = ring.owners(label, replicas=len(nodes))
    assert wide[:1] == narrow
    assert len(wide) == len(nodes)


# -- determinism ------------------------------------------------------------

@settings(max_examples=100, deadline=None)
@given(nodes=st.lists(node_ids, min_size=1, max_size=8, unique=True),
       label=labels)
def test_construction_order_is_irrelevant(nodes, label):
    forward = HashRing(nodes, replicas=2)
    backward = HashRing(reversed(nodes), replicas=2)
    assert forward.owners(label) == backward.owners(label)


@settings(max_examples=50, deadline=None)
@given(nodes=node_sets, label=labels)
def test_add_is_idempotent(nodes, label):
    ring = HashRing(nodes, replicas=2)
    before = ring.owners(label)
    for node in nodes:
        ring.add(node)
    assert ring.owners(label) == before


# -- minimal movement -------------------------------------------------------

@settings(max_examples=100, deadline=None)
@given(nodes=node_sets, newcomer=node_ids, label=labels)
def test_join_moves_keys_only_to_the_newcomer(nodes, newcomer, label):
    ring = HashRing(nodes)
    before = ring.primary(label)
    ring.add(newcomer)
    after = ring.primary(label)
    assert after in (before, newcomer)


@settings(max_examples=100, deadline=None)
@given(nodes=st.sets(node_ids, min_size=2, max_size=8), label=labels)
def test_leave_moves_only_the_leavers_keys(nodes, label):
    ring = HashRing(nodes)
    victim = min(nodes)
    before = ring.primary(label)
    ring.remove(victim)
    if before != victim:
        assert ring.primary(label) == before
    else:
        assert ring.primary(label) in nodes - {victim}


@settings(max_examples=50, deadline=None)
@given(nodes=st.sets(node_ids, min_size=2, max_size=6), label=labels)
def test_survivor_replicas_survive_a_death(nodes, label):
    """Every live replica of a label is still a replica after a death."""
    ring = HashRing(nodes, replicas=2)
    before = ring.owners(label)
    victim = before[0]
    ring.remove(victim)
    after = ring.owners(label)
    for node in before[1:]:
        assert node in after


# -- balance ----------------------------------------------------------------

def test_ownership_is_roughly_balanced():
    ring = HashRing(range(6), vnodes=DEFAULT_VNODES)
    counts = Counter(ring.primary(f"acct/blob/cont/blob-{i}")
                     for i in range(6000))
    assert set(counts) == set(range(6))
    mean = 6000 / 6
    assert max(counts.values()) < 2.0 * mean
    assert min(counts.values()) > mean / 3.0


# -- edges ------------------------------------------------------------------

def test_empty_ring():
    ring = HashRing()
    assert ring.owners("anything") == ()
    with pytest.raises(LookupError):
        ring.primary("anything")


def test_remove_to_empty_then_readd():
    ring = HashRing([3])
    ring.remove(3)
    assert len(ring) == 0 and ring.owners("x") == ()
    ring.add(3)
    assert ring.primary("x") == 3


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        HashRing(vnodes=0)
    with pytest.raises(ValueError):
        HashRing(replicas=0)


# -- the backward-compatibility pin -----------------------------------------

@settings(max_examples=200, deadline=None)
@given(label=labels)
def test_single_node_ring_matches_the_old_modulo_map(label):
    """One DN: ring routing == the pre-ring ``crc32(label) % M`` map."""
    ring = HashRing([0], replicas=1)
    assert ring.owners(label) == (zlib.crc32(label.encode("utf-8")) % 1,)


@settings(max_examples=50, deadline=None)
@given(account=st.sampled_from(["devstoreaccount1", "contoso"]),
       key=labels)
def test_null_failure_domain_membership_routes_like_old_sn(account, key):
    """R=1, health checks off, one DN: Membership is the old router."""
    membership = Membership(FailureDomainConfig(), [object()], [account])
    label = f"{account}/blob/{key}"
    assert membership.owners(label) == (0,)
    assert membership.live_indices() == [0]
