"""ServiceBackend: the figure workloads run end-to-end over HTTP.

These tests boot a real SN/DN cluster per run, so the configs are tiny
and the emulated clock is compressed hard; the point is that a bench
body written for the sim/emulator backends produces a valid
``BenchResult`` when every storage call crosses a socket.
"""

import pytest

from repro.backend import ServiceBackend, get_backend
from repro.core import (
    RunConfig,
    SeparateQueueBenchConfig,
    TableBenchConfig,
    run_bench,
    separate_queue_bench_body,
    table_bench_body,
)
from repro.storage import KB


TINY_TABLE = TableBenchConfig(entity_count=4, entity_sizes=(4 * KB,), seed=3)


class TestConstruction:
    def test_registered_by_name(self):
        backend = get_backend("service")
        assert isinstance(backend, ServiceBackend)
        assert backend.name == "service"

    def test_bad_time_scale(self):
        with pytest.raises(ValueError):
            ServiceBackend(time_scale=0)

    def test_trace_rejected_with_pointer_to_alternatives(self):
        backend = ServiceBackend()
        with pytest.raises(NotImplementedError, match="sim or emulator"):
            backend.run(lambda: (lambda ctx: None),
                        RunConfig(trace=True))


class TestBenchBodiesOverHttp:
    def test_table_bench(self):
        result = run_bench(
            lambda: table_bench_body(TINY_TABLE),
            RunConfig(workers=2,
                      backend=ServiceBackend(time_scale=0.002)),
        )
        assert result.workers == 2
        phases = {r.name for r in result.records}
        assert any(p.startswith("insert_") for p in phases)
        assert any(p.startswith("query_") for p in phases)
        for phase in phases:
            assert len([r for r in result.records if r.name == phase]) == 2

    def test_queue_bench(self):
        cfg = SeparateQueueBenchConfig(
            total_messages=6, message_sizes=(4 * KB,), barrier_poll=0.1,
            seed=5)
        result = run_bench(
            lambda: separate_queue_bench_body(cfg),
            RunConfig(workers=2,
                      backend=ServiceBackend(time_scale=0.002)),
        )
        assert result.workers == 2
        assert result.records

    def test_multi_node_cluster(self):
        """Workers round-robin across two SNs against one namespace."""
        result = run_bench(
            lambda: table_bench_body(TINY_TABLE),
            RunConfig(workers=2,
                      backend=ServiceBackend(time_scale=0.002,
                                             nodes=2, dn=2)),
        )
        assert result.workers == 2
        assert result.records


class TestCliIntegration:
    def test_serve_parser_flags(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["serve", "--nodes", "2", "--dn", "4", "--duration", "1"])
        assert (args.nodes, args.dn) == (2, 4)

    def test_fig_accepts_service_backend(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["fig", "6", "--backend", "service"])
        assert args.backend == "service"

    def test_sndn_parser_flags(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["sndn", "--sn", "1,2", "--dn", "2,4", "--duration", "5"])
        assert args.sn == "1,2"
        assert args.dn == "2,4"
