"""SharedKey signing: canonicalization, verification, tamper detection."""

import pytest

from repro.service.sharedkey import (
    DEV_ACCOUNT,
    DEV_KEY,
    SignatureError,
    compute_signature,
    parse_authorization,
    sign_request,
    string_to_sign,
    verify_request,
)


class TestStringToSign:
    def test_blob_flavor_shape(self):
        s = string_to_sign(
            DEV_ACCOUNT, "PUT", f"/{DEV_ACCOUNT}/cont/blob",
            {"comp": "block", "blockid": "b0"},
            {"x-ms-date": "Wed, 01 Aug 2012 00:00:00 GMT",
             "Content-Length": "42", "x-ms-version": "2012-02-12"})
        lines = s.split("\n")
        assert lines[0] == "PUT"
        # Content-Length occupies its standard slot.
        assert "42" in lines
        # Canonicalized x-ms-* headers, sorted, lower-cased.
        assert "x-ms-date:Wed, 01 Aug 2012 00:00:00 GMT" in lines
        assert "x-ms-version:2012-02-12" in lines
        # Emulator-style canonical resource: account prepended to the
        # account-prefixed URL path, plus sorted query parameters.
        assert f"/{DEV_ACCOUNT}/{DEV_ACCOUNT}/cont/blob" in lines
        assert "blockid:b0" in lines
        assert "comp:block" in lines

    def test_x_ms_date_supersedes_date(self):
        with_both = string_to_sign(
            DEV_ACCOUNT, "GET", "/a/c", {},
            {"date": "old", "x-ms-date": "new"})
        assert "old" not in with_both

    def test_zero_content_length_blanked(self):
        zero = string_to_sign(DEV_ACCOUNT, "GET", "/a/c", {},
                              {"Content-Length": "0"})
        empty = string_to_sign(DEV_ACCOUNT, "GET", "/a/c", {},
                               {"Content-Length": ""})
        assert zero == empty

    def test_table_flavor_is_short_form(self):
        s = string_to_sign(
            DEV_ACCOUNT, "POST", f"/{DEV_ACCOUNT}/Tables",
            {"timeout": "30"},
            {"content-type": "application/json", "x-ms-date": "D"},
            table_flavor=True)
        lines = s.split("\n")
        assert lines == ["POST", "", "application/json", "D",
                         f"/{DEV_ACCOUNT}/{DEV_ACCOUNT}/Tables"]

    def test_table_flavor_appends_only_comp(self):
        s = string_to_sign(DEV_ACCOUNT, "GET", "/a/t",
                           {"comp": "acl", "other": "x"}, {},
                           table_flavor=True)
        assert s.endswith(f"/{DEV_ACCOUNT}/a/t?comp=acl")

    def test_mixed_case_query_keys_canonicalized(self):
        lower = string_to_sign(DEV_ACCOUNT, "GET", "/a/t",
                               {"nextpartitionkey": "p"}, {})
        mixed = string_to_sign(DEV_ACCOUNT, "GET", "/a/t",
                               {"NextPartitionKey": "p"}, {})
        assert lower == mixed
        assert "nextpartitionkey:p" in lower


class TestVerify:
    def _headers(self):
        return {"x-ms-date": "Wed, 01 Aug 2012 00:00:00 GMT"}

    def test_round_trip(self):
        headers = self._headers()
        auth = sign_request(DEV_ACCOUNT, DEV_KEY, "GET",
                            f"/{DEV_ACCOUNT}/c", {}, headers)
        verify_request(DEV_KEY, "GET", f"/{DEV_ACCOUNT}/c", {}, headers,
                       auth)  # does not raise

    def test_tampered_path_rejected(self):
        headers = self._headers()
        auth = sign_request(DEV_ACCOUNT, DEV_KEY, "GET",
                            f"/{DEV_ACCOUNT}/c", {}, headers)
        with pytest.raises(SignatureError):
            verify_request(DEV_KEY, "GET", f"/{DEV_ACCOUNT}/other", {},
                           headers, auth)

    def test_tampered_header_rejected(self):
        headers = self._headers()
        auth = sign_request(DEV_ACCOUNT, DEV_KEY, "GET",
                            f"/{DEV_ACCOUNT}/c", {}, headers)
        headers["x-ms-date"] = "Thu, 02 Aug 2012 00:00:00 GMT"
        with pytest.raises(SignatureError):
            verify_request(DEV_KEY, "GET", f"/{DEV_ACCOUNT}/c", {},
                           headers, auth)

    def test_wrong_key_rejected(self):
        headers = self._headers()
        auth = sign_request(DEV_ACCOUNT, DEV_KEY, "GET",
                            f"/{DEV_ACCOUNT}/c", {}, headers)
        wrong = "QmFkS2V5QmFkS2V5QmFkS2V5QmFkS2V5"
        with pytest.raises(SignatureError):
            verify_request(wrong, "GET", f"/{DEV_ACCOUNT}/c", {}, headers,
                           auth)

    def test_parse_authorization(self):
        account, sig = parse_authorization("SharedKey acct:c2ln")
        assert (account, sig) == ("acct", "c2ln")

    @pytest.mark.parametrize("header", [
        "", "Bearer token", "SharedKey nosig", "SharedKeyLite a:b x",
    ])
    def test_parse_authorization_junk(self, header):
        with pytest.raises(SignatureError):
            parse_authorization(header)

    def test_signature_is_hmac_sha256_of_key(self):
        # Deterministic: same key + string -> same signature.
        assert (compute_signature(DEV_KEY, "abc")
                == compute_signature(DEV_KEY, "abc"))
        assert (compute_signature(DEV_KEY, "abc")
                != compute_signature(DEV_KEY, "abd"))
