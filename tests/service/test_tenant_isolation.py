"""Per-tenant throttles and analytics: one account cannot tax another.

Two accounts share a service node; each has its own interceptor
pipeline, so throttle windows and Storage Analytics are charged per
tenant.  The assertions read the tenants' ``MetricsAggregator`` rollups
(HourlyMetrics ingress/egress/throttles) — the same data the paper's
Storage Analytics figures come from.
"""

import pytest

from tests.service.conftest import (
    RawClient,
    TENANT_B,
    TENANT_B_KEY,
    THROTTLED,
    THROTTLED_KEY,
)
from repro.service.sharedkey import DEV_ACCOUNT


def _blob_totals(cluster, account):
    return cluster.tenants.get(account).metrics.service_totals("blob")


@pytest.fixture(scope="module")
def raw_b(cluster):
    return RawClient(cluster.endpoints(0), account=TENANT_B,
                     key=TENANT_B_KEY)


class TestAnalyticsIsolation:
    def test_ingress_charged_to_the_writing_tenant_only(
            self, cluster, raw, raw_b):
        before_dev = _blob_totals(cluster, DEV_ACCOUNT).total_ingress
        before_b = _blob_totals(cluster, TENANT_B).total_ingress

        raw.request("blob", "PUT", "/isoing", query={"restype": "container"})
        raw.request("blob", "PUT", "/isoing/x", body=b"d" * 1000,
                    headers={"x-ms-blob-type": "BlockBlob"})
        raw_b.request("blob", "PUT", "/isoing", query={"restype": "container"})
        raw_b.request("blob", "PUT", "/isoing/x", body=b"c" * 300,
                      headers={"x-ms-blob-type": "BlockBlob"})

        assert (_blob_totals(cluster, DEV_ACCOUNT).total_ingress
                - before_dev) == 1000
        assert (_blob_totals(cluster, TENANT_B).total_ingress
                - before_b) == 300

    def test_egress_charged_to_the_reading_tenant_only(
            self, cluster, raw, raw_b):
        raw.request("blob", "PUT", "/isoeg", query={"restype": "container"})
        raw.request("blob", "PUT", "/isoeg/x", body=b"e" * 2048,
                    headers={"x-ms-blob-type": "BlockBlob"})
        before_dev = _blob_totals(cluster, DEV_ACCOUNT).total_egress
        before_b = _blob_totals(cluster, TENANT_B).total_egress

        status, _, body = raw.request("blob", "GET", "/isoeg/x")
        assert (status, len(body)) == (200, 2048)

        assert (_blob_totals(cluster, DEV_ACCOUNT).total_egress
                - before_dev) == 2048
        assert _blob_totals(cluster, TENANT_B).total_egress == before_b

    def test_request_logs_are_per_tenant(self, cluster, raw, raw_b):
        dev_len = len(cluster.tenants.get(DEV_ACCOUNT).log.records())
        b_len = len(cluster.tenants.get(TENANT_B).log.records())
        raw.request("queue", "PUT", "/isolog")
        assert len(cluster.tenants.get(DEV_ACCOUNT).log.records()) \
            == dev_len + 1
        assert len(cluster.tenants.get(TENANT_B).log.records()) == b_len


class TestThrottleIsolation:
    def test_storm_throttles_only_the_noisy_tenant(
            self, cluster, raw_b):
        """A 503 storm on one account leaves its neighbour untouched."""
        noisy = RawClient(cluster.endpoints(0), account=THROTTLED,
                          key=THROTTLED_KEY)
        status, _, _ = noisy.request("queue", "PUT", "/stormiso")
        assert status == 201
        raw_b.request("queue", "PUT", "/quietq")

        noisy_tenant = cluster.tenants.get(THROTTLED)
        busy_before = noisy_tenant.server_busy_count

        statuses = []
        for i in range(15):
            # Interleave: every noisy burst is followed by a quiet-tenant
            # request that must keep succeeding mid-storm.
            s, _, _ = noisy.request(
                "queue", "POST", "/stormiso/messages",
                body=(b"<QueueMessage><MessageText>bTE=</MessageText>"
                      b"</QueueMessage>"))
            statuses.append(s)
            qs, _, _ = raw_b.request(
                "queue", "POST", "/quietq/messages",
                body=(b"<QueueMessage><MessageText>bTE=</MessageText>"
                      b"</QueueMessage>"))
            assert qs == 201

        assert 503 in statuses, "tiny budget never tripped"
        assert noisy_tenant.server_busy_count > busy_before
        # The neighbours' pipelines saw no throttle at all.
        for other in (DEV_ACCOUNT, TENANT_B):
            tenant = cluster.tenants.get(other)
            assert tenant.server_busy_count == 0

    def test_throttles_land_in_the_noisy_tenants_analytics(self, cluster):
        noisy = cluster.tenants.get(THROTTLED)
        totals = noisy.metrics.service_totals("queue")
        assert totals.total_throttles > 0
        quiet = cluster.tenants.get(TENANT_B).metrics.service_totals("queue")
        assert quiet.total_throttles == 0

    def test_both_service_nodes_charge_one_window(self, cluster):
        """SN0 and SN1 share the tenant's sliding window: a storm split
        across both nodes still trips the per-account budget."""
        sn0 = RawClient(cluster.endpoints(0), account=THROTTLED,
                        key=THROTTLED_KEY)
        sn1 = RawClient(cluster.endpoints(1), account=THROTTLED,
                        key=THROTTLED_KEY)
        sn0.request("queue", "PUT", "/splitq")
        statuses = []
        for i in range(10):
            client = sn0 if i % 2 == 0 else sn1
            s, _, _ = client.request(
                "queue", "POST", "/splitq/messages",
                body=(b"<QueueMessage><MessageText>bTE=</MessageText>"
                      b"</QueueMessage>"))
            statuses.append(s)
        assert 503 in statuses
