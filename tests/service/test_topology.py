"""The SN/DN topology DES: deterministic, and it scales like a tier.

The model backs the ``repro sndn`` scaling figure, so the tests pin the
properties the figure depends on: bit-identical reruns for one seed,
more data nodes -> more throughput while the DN tier is the bottleneck,
and a coherent result object (completions, latency percentiles).
"""

import pytest

from repro.service.topology import (
    TopologyParams,
    simulate_topology,
    sweep_topology,
)


def _params(**overrides):
    base = dict(clients=8, duration_s=10.0, seed=42)
    base.update(overrides)
    return TopologyParams(**base)


class TestValidation:
    @pytest.mark.parametrize("bad", [
        {"service_nodes": 0},
        {"data_nodes": 0},
        {"clients": 0},
        {"fanout_fraction": 1.5},
        {"fanout_fraction": -0.1},
    ])
    def test_rejects_bad_params(self, bad):
        with pytest.raises(ValueError):
            _params(**bad)


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = simulate_topology(_params())
        b = simulate_topology(_params())
        assert a.completed == b.completed
        assert a.latencies == b.latencies

    def test_different_seed_different_interleaving(self):
        a = simulate_topology(_params(seed=1))
        b = simulate_topology(_params(seed=2))
        assert a.latencies != b.latencies


class TestScaling:
    def test_more_data_nodes_more_throughput(self):
        """With DN service time 5x the SN's, the DN tier bottlenecks:
        doubling it must raise throughput substantially."""
        one = simulate_topology(_params(data_nodes=1))
        four = simulate_topology(_params(data_nodes=4))
        assert four.throughput_rps > one.throughput_rps * 1.5

    def test_result_is_coherent(self):
        r = simulate_topology(_params())
        assert r.completed == len(r.latencies)
        assert r.completed > 0
        assert 0 < r.mean_latency_s <= r.p95_latency_s
        assert r.throughput_rps == pytest.approx(
            r.completed / r.params.duration_s)


class TestSweep:
    def test_grid_shape_and_keys(self):
        results = sweep_topology((1, 2), (1, 2), clients=8, duration_s=5.0,
                                 seed=7)
        assert set(results) == {(1, 1), (1, 2), (2, 1), (2, 2)}
        for (sn, dn), r in results.items():
            assert (r.params.service_nodes, r.params.data_nodes) == (sn, dn)
