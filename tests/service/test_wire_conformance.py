"""Azurite wire-subset conformance, driven by raw HTTP only.

No SDK and no repro wire clients: every request here is hand-built
headers + bodies through ``http.client``, the way an external 2012-era
client (or curl) would talk to ``repro serve``.  Covers the block,
page, queue, and table surfaces plus error-body and status-code
fidelity for 403/412/503.
"""

import base64
import json
import time
import xml.etree.ElementTree as ET

from tests.service.conftest import (
    RawClient,
    THROTTLED,
    THROTTLED_KEY,
)


def _error_code(body: bytes) -> str:
    """The <Error><Code> of an XML error body."""
    return ET.fromstring(body.decode()).findtext("Code")


class TestBlockBlobs:
    def test_put_block_put_blocklist_get(self, raw):
        status, _, _ = raw.request(
            "blob", "PUT", "/blocks", query={"restype": "container"})
        assert status == 201

        for i, chunk in enumerate([b"alpha-", b"beta"]):
            status, _, _ = raw.request(
                "blob", "PUT", "/blocks/doc",
                query={"comp": "block", "blockid": f"b{i}"}, body=chunk)
            assert status == 201

        commit = (b"<?xml version=\"1.0\" encoding=\"utf-8\"?>"
                  b"<BlockList><Latest>b0</Latest><Latest>b1</Latest>"
                  b"</BlockList>")
        status, _, _ = raw.request(
            "blob", "PUT", "/blocks/doc", query={"comp": "blocklist"},
            body=commit)
        assert status == 201

        status, headers, body = raw.request("blob", "GET", "/blocks/doc")
        assert status == 200
        assert body == b"alpha-beta"

        status, headers, _ = raw.request(
            "blob", "GET", "/blocks/doc", query={"comp": "blocklist"})
        assert status == 200
        assert headers["x-ms-block-count"] == "2"

    def test_single_shot_upload_and_list(self, raw):
        raw.request("blob", "PUT", "/single",
                    query={"restype": "container"})
        status, _, _ = raw.request(
            "blob", "PUT", "/single/one.txt", body=b"payload",
            headers={"x-ms-blob-type": "BlockBlob"})
        assert status == 201
        status, _, body = raw.request(
            "blob", "GET", "/single", query={"restype": "container",
                                             "comp": "list"})
        assert status == 200
        names = [el.text for el in
                 ET.fromstring(body.decode()).iter("Name")]
        assert names == ["one.txt"]

    def test_delete_blob(self, raw):
        raw.request("blob", "PUT", "/gone", query={"restype": "container"})
        raw.request("blob", "PUT", "/gone/b", body=b"x",
                    headers={"x-ms-blob-type": "BlockBlob"})
        status, _, _ = raw.request("blob", "DELETE", "/gone/b")
        assert status == 202
        status, _, body = raw.request("blob", "GET", "/gone/b")
        assert status == 404
        assert _error_code(body) == "BlobNotFound"

    def test_missing_container_404(self, raw):
        status, headers, body = raw.request("blob", "GET", "/absent/b")
        assert status == 404
        assert headers["x-ms-error-code"] == "ContainerNotFound"
        assert _error_code(body) == "ContainerNotFound"


class TestPageBlobs:
    def test_put_page_and_range_reads(self, raw):
        raw.request("blob", "PUT", "/pages", query={"restype": "container"})
        status, _, _ = raw.request(
            "blob", "PUT", "/pages/disk",
            headers={"x-ms-blob-type": "PageBlob",
                     "x-ms-blob-content-length": "2048"})
        assert status == 201

        status, _, _ = raw.request(
            "blob", "PUT", "/pages/disk", query={"comp": "page"},
            headers={"x-ms-range": "bytes=512-1023"}, body=b"P" * 512)
        assert status == 201

        status, headers, body = raw.request(
            "blob", "GET", "/pages/disk",
            headers={"x-ms-range": "bytes=512-1023"})
        assert status == 206
        assert body == b"P" * 512
        assert headers["content-range"] == "bytes 512-1023/2048"

        # Unwritten ranges read back as zeros.
        status, _, body = raw.request(
            "blob", "GET", "/pages/disk",
            headers={"x-ms-range": "bytes=0-511"})
        assert status == 206
        assert body == b"\0" * 512

        # Whole-blob download covers the declared size.
        status, _, body = raw.request("blob", "GET", "/pages/disk")
        assert status == 200
        assert len(body) == 2048

    def test_misaligned_page_write_rejected(self, raw):
        raw.request("blob", "PUT", "/pages2",
                    query={"restype": "container"})
        raw.request("blob", "PUT", "/pages2/disk",
                    headers={"x-ms-blob-type": "PageBlob",
                             "x-ms-blob-content-length": "1024"})
        status, _, body = raw.request(
            "blob", "PUT", "/pages2/disk", query={"comp": "page"},
            headers={"x-ms-range": "bytes=3-514"}, body=b"x" * 512)
        assert status == 400
        assert _error_code(body) == "InvalidPageRange"


class TestQueues:
    def _put_message(self, raw, queue, text, **query):
        payload = base64.b64encode(text).decode()
        body = (f"<QueueMessage><MessageText>{payload}</MessageText>"
                f"</QueueMessage>").encode()
        return raw.request("queue", "POST", f"/{queue}/messages",
                           query=query, body=body)

    def test_message_lifecycle_with_visibility(self, raw):
        status, _, _ = raw.request("queue", "PUT", "/conformq")
        assert status == 201

        status, _, body = self._put_message(raw, "conformq", b"job-1")
        assert status == 201
        put_el = ET.fromstring(body.decode()).find("QueueMessage")
        assert put_el.findtext("MessageId")

        # Get with a short visibility timeout: the message disappears...
        status, _, body = raw.request(
            "queue", "GET", "/conformq/messages",
            query={"visibilitytimeout": "0.3"})
        assert status == 200
        got = ET.fromstring(body.decode()).find("QueueMessage")
        assert base64.b64decode(got.findtext("MessageText")) == b"job-1"
        assert got.findtext("DequeueCount") == "1"
        pop_receipt = got.findtext("PopReceipt")
        assert pop_receipt

        status, _, body = raw.request("queue", "GET", "/conformq/messages")
        assert ET.fromstring(body.decode()).find("QueueMessage") is None

        # ...and reappears once the timeout lapses, dequeue count bumped.
        time.sleep(0.4)
        status, _, body = raw.request(
            "queue", "GET", "/conformq/messages",
            query={"visibilitytimeout": "30"})
        got = ET.fromstring(body.decode()).find("QueueMessage")
        assert got is not None
        assert got.findtext("DequeueCount") == "2"

        status, _, _ = raw.request(
            "queue", "DELETE",
            f"/conformq/messages/{got.findtext('MessageId')}",
            query={"popreceipt": got.findtext("PopReceipt")})
        assert status == 204

        status, headers, _ = raw.request(
            "queue", "GET", "/conformq", query={"comp": "metadata"})
        assert status == 200
        assert headers["x-ms-approximate-messages-count"] == "0"

    def test_peek_does_not_take_message(self, raw):
        raw.request("queue", "PUT", "/peekq")
        self._put_message(raw, "peekq", b"peek-me")
        status, _, body = raw.request(
            "queue", "GET", "/peekq/messages", query={"peekonly": "true"})
        assert status == 200
        peeked = ET.fromstring(body.decode()).find("QueueMessage")
        assert base64.b64decode(peeked.findtext("MessageText")) == b"peek-me"
        # Peeked messages carry no pop receipt and stay visible.
        assert peeked.find("PopReceipt") is None
        status, _, body = raw.request(
            "queue", "GET", "/peekq/messages",
            query={"numofmessages": "5"})
        msgs = ET.fromstring(body.decode()).findall("QueueMessage")
        assert len(msgs) == 1

    def test_delete_wrong_pop_receipt_404(self, raw):
        raw.request("queue", "PUT", "/popq")
        self._put_message(raw, "popq", b"m")
        status, _, body = raw.request(
            "queue", "GET", "/popq/messages",
            query={"visibilitytimeout": "30"})
        got = ET.fromstring(body.decode()).find("QueueMessage")
        status, _, body = raw.request(
            "queue", "DELETE",
            f"/popq/messages/{got.findtext('MessageId')}",
            query={"popreceipt": "bogus"})
        assert status == 404
        assert _error_code(body) == "MessageNotFound"


class TestTables:
    TABLE = "conformtbl"

    def _create(self, raw):
        raw.request(
            "table", "POST", "/Tables",
            headers={"Content-Type": "application/json"},
            body=json.dumps({"TableName": self.TABLE}).encode())

    def _entity_path(self, pk, rk):
        return f"/{self.TABLE}(PartitionKey='{pk}',RowKey='{rk}')"

    def test_entity_crud_with_etags(self, raw):
        self._create(raw)
        status, headers, body = raw.request(
            "table", "POST", f"/{self.TABLE}",
            headers={"Content-Type": "application/json"},
            body=json.dumps({"PartitionKey": "p1", "RowKey": "r1",
                             "score": 10}).encode())
        assert status == 201
        etag = headers["etag"]
        assert etag

        status, _, body = raw.request(
            "table", "GET", self._entity_path("p1", "r1"))
        assert status == 200
        doc = json.loads(body)
        assert doc["score"] == 10

        # Conditional update with the current ETag succeeds...
        status, headers, _ = raw.request(
            "table", "PUT", self._entity_path("p1", "r1"),
            headers={"Content-Type": "application/json",
                     "If-Match": etag},
            body=json.dumps({"PartitionKey": "p1", "RowKey": "r1",
                             "score": 11}).encode())
        assert status == 204
        new_etag = headers["etag"]
        assert new_etag != etag

        # ...and the stale ETag is rejected with 412 + odata error JSON.
        status, headers, body = raw.request(
            "table", "PUT", self._entity_path("p1", "r1"),
            headers={"Content-Type": "application/json",
                     "If-Match": etag},
            body=json.dumps({"PartitionKey": "p1", "RowKey": "r1",
                             "score": 12}).encode())
        assert status == 412
        assert headers["x-ms-error-code"] == "UpdateConditionNotSatisfied"
        err = json.loads(body)
        assert (err["odata.error"]["code"]
                == "UpdateConditionNotSatisfied")

        status, _, _ = raw.request(
            "table", "DELETE", self._entity_path("p1", "r1"),
            headers={"If-Match": new_etag})
        assert status == 204
        status, _, _ = raw.request(
            "table", "GET", self._entity_path("p1", "r1"))
        assert status == 404

    def test_merge_preserves_other_properties(self, raw):
        self._create(raw)
        raw.request(
            "table", "POST", f"/{self.TABLE}",
            headers={"Content-Type": "application/json"},
            body=json.dumps({"PartitionKey": "p2", "RowKey": "r1",
                             "a": 1, "b": 2}).encode())
        status, _, _ = raw.request(
            "table", "MERGE", self._entity_path("p2", "r1"),
            headers={"Content-Type": "application/json",
                     "If-Match": "*"},
            body=json.dumps({"PartitionKey": "p2", "RowKey": "r1",
                             "b": 20}).encode())
        assert status == 204
        _, _, body = raw.request(
            "table", "GET", self._entity_path("p2", "r1"))
        doc = json.loads(body)
        assert (doc["a"], doc["b"]) == (1, 20)

    def test_query_returns_inserted_entities(self, raw):
        self._create(raw)
        for i in range(3):
            raw.request(
                "table", "POST", f"/{self.TABLE}",
                headers={"Content-Type": "application/json"},
                body=json.dumps({"PartitionKey": "q", "RowKey": f"r{i}",
                                 "i": i}).encode())
        status, _, body = raw.request(
            "table", "GET", f"/{self.TABLE}()",
            query={"$filter": "PartitionKey%20eq%20'q'"})
        assert status == 200
        rows = json.loads(body)["value"]
        assert [r["RowKey"] for r in rows] == ["r0", "r1", "r2"]


class TestErrorFidelity:
    def test_bad_signature_403(self, raw, cluster):
        bad = RawClient(cluster.endpoints(0),
                        key="QmFkS2V5QmFkS2V5QmFkS2V5QmFkS2V5")
        status, headers, body = bad.request("blob", "PUT", "/nope",
                                            query={"restype": "container"})
        assert status == 403
        assert headers["x-ms-error-code"] == "AuthenticationFailed"
        assert _error_code(body) == "AuthenticationFailed"

    def test_missing_authorization_403(self, raw):
        status, _, body = raw.request("blob", "GET", "/c/b", sign=False)
        assert status == 403
        assert _error_code(body) == "AuthenticationFailed"

    def test_unknown_account_403_not_404(self, cluster):
        ghost = RawClient(cluster.endpoints(0), account="ghost")
        status, _, body = ghost.request("queue", "PUT", "/anyq")
        # Account existence is not revealed: authentication fails.
        assert status == 403
        assert _error_code(body) == "AuthenticationFailed"

    def test_server_busy_503_with_retry_after(self, cluster):
        busy = RawClient(cluster.endpoints(0), account=THROTTLED,
                         key=THROTTLED_KEY)
        status, _, _ = busy.request("queue", "PUT", "/stormq")
        assert status == 201
        saw_busy = None
        for i in range(20):
            status, headers, body = busy.request(
                "queue", "POST", "/stormq/messages",
                body=(b"<QueueMessage><MessageText>bTE=</MessageText>"
                      b"</QueueMessage>"))
            if status == 503:
                saw_busy = (headers, body)
                break
        assert saw_busy is not None, "throttle never tripped"
        headers, body = saw_busy
        assert headers["x-ms-error-code"] == "ServerBusy"
        assert float(headers["retry-after"]) > 0
        assert _error_code(body) == "ServerBusy"

    def test_table_error_body_is_odata_json(self, raw):
        status, headers, body = raw.request(
            "table", "GET", "/absenttbl(PartitionKey='p',RowKey='r')")
        assert status == 404
        err = json.loads(body)["odata.error"]
        assert err["code"] == "TableNotFound"
        assert "message" in err

    def test_second_service_node_serves_same_namespace(self, raw, raw_sn1):
        raw.request("blob", "PUT", "/shared", query={"restype": "container"})
        raw.request("blob", "PUT", "/shared/from-sn0", body=b"via sn0",
                    headers={"x-ms-blob-type": "BlockBlob"})
        status, _, body = raw_sn1.request("blob", "GET", "/shared/from-sn0")
        assert status == 200
        assert body == b"via sn0"
