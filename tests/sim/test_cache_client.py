"""Tests for the simulated caching-service client."""

import pytest

from repro.sim import SimStorageAccount
from repro.simkit import Environment
from repro.storage import KB, MB, random_content


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def account(env):
    return SimStorageAccount(env, seed=21)


def run(env, gen):
    p = env.process(gen)
    env.run()
    return p.value


class TestSimCacheClient:
    def test_roundtrip(self, env, account):
        cache = account.cache_client()

        def body():
            yield from cache.create_cache("hot")
            yield from cache.put("hot", "k", b"value")
            v = yield from cache.get("hot", "k")
            return v.to_bytes()

        assert run(env, body()) == b"value"

    def test_miss_returns_none(self, env, account):
        cache = account.cache_client()

        def body():
            yield from cache.create_cache("hot")
            v = yield from cache.get("hot", "ghost")
            return v

        assert run(env, body()) is None

    def test_remove(self, env, account):
        cache = account.cache_client()

        def body():
            yield from cache.create_cache("hot")
            yield from cache.put("hot", "k", b"v")
            removed = yield from cache.remove("hot", "k")
            again = yield from cache.remove("hot", "k")
            return removed, again

        assert run(env, body()) == (True, False)

    def test_cache_much_faster_than_blob(self, env, account):
        """The point of the service: in-memory reads beat Blob storage."""
        cache = account.cache_client()
        blob = account.blob_client()
        payload = random_content(1 * MB, seed=1)

        def body():
            yield from blob.create_container("cont")
            yield from blob.upload_blob("cont", "obj", payload)
            yield from cache.create_cache("hot", capacity_bytes=4 * MB)
            yield from cache.put("hot", "obj", payload)

            t0 = env.now
            yield from blob.download_block_blob("cont", "obj")
            blob_time = env.now - t0

            t0 = env.now
            yield from cache.get("hot", "obj")
            cache_time = env.now - t0
            return blob_time, cache_time

        blob_time, cache_time = run(env, body())
        assert cache_time < blob_time / 5

    def test_cache_ops_not_throttled_by_account(self, env):
        """Cache traffic must not consume storage-account transactions."""
        from repro.storage import LIMITS_2012
        account = SimStorageAccount(
            env, limits=LIMITS_2012.with_overrides(
                account_transactions_per_second=2),
            seed=1)
        cache = account.cache_client()

        def body():
            yield from cache.create_cache("hot")
            for i in range(50):  # far beyond 2 tx/s
                yield from cache.put("hot", f"k{i}", b"v")
            return account.cluster.server_busy_count

        assert run(env, body()) == 0

    def test_custom_capacity_and_ttl(self, env, account):
        cache = account.cache_client()

        def body():
            c = yield from cache.create_cache(
                "tiny", capacity_bytes=8 * KB, default_ttl=42.0)
            return c.capacity_bytes, c.default_ttl

        assert run(env, body()) == (8 * KB, 42.0)
