"""Integration tests for the simulated storage clients."""

import pytest

from repro.sim import SimStorageAccount, retrying
from repro.simkit import Environment
from repro.storage import (
    MB,
    LIMITS_2012,
    ServerBusyError,
    )
from repro.storage.table import BatchOperation


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def account(env):
    return SimStorageAccount(env, seed=11)


def run(env, gen):
    """Run one client generator to completion, return its value."""
    p = env.process(gen)
    env.run()
    return p.value


class TestSimBlobClient:
    def test_block_blob_roundtrip(self, env, account):
        blob = account.blob_client()

        def body():
            yield from blob.create_container("cont")
            yield from blob.put_block("cont", "bb", "b1", b"hello ")
            yield from blob.put_block("cont", "bb", "b2", b"world")
            yield from blob.put_block_list("cont", "bb", ["b1", "b2"])
            content = yield from blob.download_block_blob("cont", "bb")
            return content.to_bytes()

        assert run(env, body()) == b"hello world"
        assert env.now > 0

    def test_page_blob_roundtrip(self, env, account):
        blob = account.blob_client()

        def body():
            yield from blob.create_container("cont")
            yield from blob.create_page_blob("cont", "pb", 1 * MB)
            yield from blob.put_page("cont", "pb", 512, b"x" * 512)
            content = yield from blob.get_page("cont", "pb", 512, 512)
            return content.to_bytes()

        assert run(env, body()) == b"x" * 512

    def test_get_block_sequentially(self, env, account):
        blob = account.blob_client()

        def body():
            yield from blob.create_container("cont")
            for i in range(3):
                yield from blob.put_block("cont", "bb", f"b{i}", bytes([i]) * 4)
            yield from blob.put_block_list("cont", "bb", [f"b{i}" for i in range(3)])
            out = []
            for i in range(blob.block_count("cont", "bb")):
                c = yield from blob.get_block("cont", "bb", i)
                out.append(c.to_bytes())
            return out

        assert run(env, body()) == [b"\x00" * 4, b"\x01" * 4, b"\x02" * 4]

    def test_download_page_blob_charges_written_only(self, env, account):
        blob = account.blob_client()

        def body():
            yield from blob.create_container("cont")
            yield from blob.create_page_blob("cont", "pb", 64 * MB)
            yield from blob.put_page("cont", "pb", 0, b"y" * 512)
            t0 = env.now
            content = yield from blob.download_page_blob("cont", "pb")
            return env.now - t0, content.size

        elapsed, size = run(env, body())
        assert size == 64 * MB          # reads report the full extent
        assert elapsed < 1.0            # but only 512 written bytes were moved

    def test_delete_blob(self, env, account):
        blob = account.blob_client()

        def body():
            yield from blob.create_container("cont")
            yield from blob.upload_blob("cont", "bb", b"x")
            yield from blob.delete_blob("cont", "bb")

        run(env, body())
        assert account.state.blobs.get_container("cont").list_blobs() == []


class TestSimQueueClient:
    def test_message_lifecycle(self, env, account):
        qc = account.queue_client()

        def body():
            yield from qc.create_queue("tasks")
            yield from qc.put_message("tasks", b"m1")
            peeked = yield from qc.peek_message("tasks")
            got = yield from qc.get_message("tasks", visibility_timeout=60)
            yield from qc.delete_message("tasks", got.message_id, got.pop_receipt)
            count = yield from qc.get_message_count("tasks")
            return peeked.content.to_bytes(), got.content.to_bytes(), count

        peeked, got, count = run(env, body())
        assert peeked == got == b"m1"
        assert count == 0

    def test_concurrent_consumers_get_distinct_messages(self, env, account):
        qc = account.queue_client()
        got = []

        def producer():
            yield from qc.create_queue("tasks")
            for i in range(10):
                yield from qc.put_message("tasks", f"m{i}".encode())

        def consumer():
            yield env.timeout(2)
            for _ in range(5):
                m = yield from qc.get_message("tasks", visibility_timeout=600)
                if m is not None:
                    got.append(m.content.to_bytes())

        env.process(producer())
        env.process(consumer())
        env.process(consumer())
        env.run()
        assert len(got) == 10
        assert len(set(got)) == 10  # no duplicates: invisibility works

    def test_update_message(self, env, account):
        qc = account.queue_client()

        def body():
            yield from qc.create_queue("tasks")
            yield from qc.put_message("tasks", b"old")
            m = yield from qc.get_message("tasks", visibility_timeout=60)
            yield from qc.update_message("tasks", m.message_id, m.pop_receipt,
                                         b"new", visibility_timeout=0)
            m2 = yield from qc.get_message("tasks", visibility_timeout=60)
            return m2.content.to_bytes()

        assert run(env, body()) == b"new"


class TestSimTableClient:
    def test_crud_lifecycle(self, env, account):
        tc = account.table_client()

        def body():
            yield from tc.create_table("Tab")
            yield from tc.insert("Tab", "p", "r", {"V": 1})
            e = yield from tc.get("Tab", "p", "r")
            yield from tc.update("Tab", "p", "r", {"V": 2})
            yield from tc.merge("Tab", "p", "r", {"W": 3})
            e2 = yield from tc.get("Tab", "p", "r")
            yield from tc.delete("Tab", "p", "r")
            return e["V"], e2.properties()

        v, props = run(env, body())
        assert v == 1
        assert props == {"V": 2, "W": 3}

    def test_query_partition(self, env, account):
        tc = account.table_client()

        def body():
            yield from tc.create_table("Tab")
            for i in range(5):
                yield from tc.insert("Tab", "p", f"r{i}", {"V": i})
            rows = yield from tc.query_partition("Tab", "p", "V ge 3")
            return [e["V"] for e in rows]

        assert run(env, body()) == [3, 4]

    def test_batch(self, env, account):
        tc = account.table_client()

        def body():
            yield from tc.create_table("Tab")
            yield from tc.execute_batch("Tab", [
                BatchOperation("insert", "p", "r1", {"V": 1}),
                BatchOperation("insert", "p", "r2", {"V": 2}),
            ])
            e = yield from tc.get("Tab", "p", "r2")
            return e["V"]

        assert run(env, body()) == 2


class TestRetrying:
    def test_retries_on_server_busy(self, env):
        account = SimStorageAccount(
            env, limits=LIMITS_2012.with_overrides(
                partition_entities_per_second=2),
            seed=3)
        tc = account.table_client()
        retry_log = []

        def body():
            yield from tc.create_table("Tab")
            for i in range(6):
                yield from retrying(
                    env, lambda i=i: tc.insert("Tab", "hot", f"r{i}", {}),
                    on_retry=lambda n, e: retry_log.append(n))
            return env.now

        t = run(env, body())
        assert retry_log  # throttle was hit
        assert t > 1.0    # the 1-second back-offs happened
        assert account.state.tables.get_table("Tab").entity_count() == 6

    def test_max_retries_exceeded(self, env):
        account = SimStorageAccount(
            env, limits=LIMITS_2012.with_overrides(
                queue_messages_per_second=1),
            seed=3)
        qc = account.queue_client()

        def hammer():
            yield from qc.create_queue("hot")
            yield from qc.put_message("hot", b"1")
            # The throttle admits 1/s; with zero-length retry gaps capped at
            # max_retries we must eventually give up.
            try:
                for _ in range(10):
                    yield from retrying(
                        env, lambda: qc.put_message("hot", b"x"),
                        max_retries=0)
                return "no error"
            except ServerBusyError:
                return "gave up"

        assert run(env, hammer()) == "gave up"

    def test_returns_result(self, env, account):
        qc = account.queue_client()

        def body():
            yield from qc.create_queue("q-x")
            msg = yield from retrying(env, lambda: qc.put_message("q-x", b"v"))
            return msg.content.to_bytes()

        assert run(env, body()) == b"v"


class TestSimTableUpserts:
    def test_insert_or_replace(self, env, account):
        tc = account.table_client()

        def body():
            yield from tc.create_table("Ups")
            yield from tc.insert_or_replace("Ups", "p", "r", {"A": 1})
            yield from tc.insert_or_replace("Ups", "p", "r", {"B": 2})
            e = yield from tc.get("Ups", "p", "r")
            return e.properties()

        assert run(env, body()) == {"B": 2}

    def test_insert_or_merge(self, env, account):
        tc = account.table_client()

        def body():
            yield from tc.create_table("Ups")
            yield from tc.insert_or_merge("Ups", "p", "r", {"A": 1})
            yield from tc.insert_or_merge("Ups", "p", "r", {"B": 2})
            e = yield from tc.get("Ups", "p", "r")
            return e.properties()

        assert run(env, body()) == {"A": 1, "B": 2}


class TestBatchGet:
    def test_sim_batch_get(self, env, account):
        qc = account.queue_client()

        def body():
            yield from qc.create_queue("batch")
            for i in range(10):
                yield from qc.put_message("batch", f"m{i}".encode())
            t0 = env.now
            got = yield from qc.get_messages("batch", 8,
                                             visibility_timeout=60)
            batch_time = env.now - t0
            return [m.content.to_bytes() for m in got], batch_time

        payloads, batch_time = run(env, body())
        assert payloads == [f"m{i}".encode() for i in range(8)]
        # One round trip, not eight.
        assert batch_time < 8 * 0.03

    def test_sim_batch_get_validation(self, env, account):
        qc = account.queue_client()

        def body():
            yield from qc.create_queue("batch")
            yield from qc.get_messages("batch", 33)

        with pytest.raises(ValueError):
            run(env, body())

    def test_emulator_batch_get(self):
        from repro.emulator import EmulatorAccount
        account = EmulatorAccount()
        qc = account.queue_client()
        qc.create_queue("batch")
        for i in range(5):
            qc.put_message("batch", f"m{i}".encode())
        got = qc.get_messages("batch", 3, visibility_timeout=60)
        assert len(got) == 3
        assert qc.get_message_count("batch") == 5  # invisible, not deleted
        with pytest.raises(ValueError):
            qc.get_messages("batch", 0)
