"""Tests for lease/snapshot operations through both client backends."""

import pytest

from repro.emulator import EmulatorAccount
from repro.sim import SimStorageAccount
from repro.simkit import Environment
from repro.storage import InvalidOperationError, LeaseConflictError, ManualClock


class TestSimLeaseClient:
    @pytest.fixture
    def env(self):
        return Environment()

    @pytest.fixture
    def account(self, env):
        return SimStorageAccount(env, seed=19)

    def run(self, env, gen):
        p = env.process(gen)
        env.run()
        return p.value

    def test_lease_lifecycle(self, env, account):
        blob = account.blob_client()

        def body():
            yield from blob.create_container("cont")
            yield from blob.upload_blob("cont", "locked", b"v1")
            lease = yield from blob.acquire_lease("cont", "locked")
            # Writes without the lease id are rejected by the data plane.
            try:
                yield from blob.upload_blob("cont", "locked", b"intruder")
                stolen = True
            except LeaseConflictError:
                stolen = False
            yield from blob.renew_lease("cont", "locked", lease)
            yield from blob.release_lease("cont", "locked", lease)
            yield from blob.upload_blob("cont", "locked", b"v2")
            content = yield from blob.download_block_blob("cont", "locked")
            return stolen, content.to_bytes()

        stolen, final = self.run(env, body())
        assert not stolen
        assert final == b"v2"

    def test_lease_ops_cost_time(self, env, account):
        blob = account.blob_client()

        def body():
            yield from blob.create_container("cont")
            yield from blob.upload_blob("cont", "locked", b"v")
            t0 = env.now
            lease = yield from blob.acquire_lease("cont", "locked")
            yield from blob.release_lease("cont", "locked", lease)
            return env.now - t0

        assert self.run(env, body()) > 0

    def test_snapshot_roundtrip(self, env, account):
        blob = account.blob_client()

        def body():
            yield from blob.create_container("cont")
            yield from blob.upload_blob("cont", "doc", b"old")
            snap = yield from blob.snapshot_blob("cont", "doc")
            yield from blob.upload_blob("cont", "doc", b"new")
            old = yield from blob.download_snapshot("cont", "doc",
                                                    snap.snapshot_id)
            current = yield from blob.download_block_blob("cont", "doc")
            return old.to_bytes(), current.to_bytes()

        assert self.run(env, body()) == (b"old", b"new")

    def test_delete_with_snapshots_flag(self, env, account):
        blob = account.blob_client()

        def body():
            yield from blob.create_container("cont")
            yield from blob.upload_blob("cont", "doc", b"x")
            yield from blob.snapshot_blob("cont", "doc")
            try:
                yield from blob.delete_blob("cont", "doc")
                return "deleted"
            except InvalidOperationError:
                yield from blob.delete_blob("cont", "doc",
                                            delete_snapshots=True)
                return "needed flag"

        assert self.run(env, body()) == "needed flag"


class TestEmulatorLeaseClient:
    @pytest.fixture
    def account(self):
        return EmulatorAccount(clock=ManualClock())

    def test_lease_lifecycle(self, account):
        blob = account.blob_client()
        blob.create_container("cont")
        blob.upload_blob("cont", "locked", b"v1")
        lease = blob.acquire_lease("cont", "locked")
        with pytest.raises(LeaseConflictError):
            blob.upload_blob("cont", "locked", b"intruder")
        blob.renew_lease("cont", "locked", lease)
        blob.release_lease("cont", "locked", lease)
        blob.upload_blob("cont", "locked", b"v2")

    def test_lease_expiry_via_clock(self, account):
        blob = account.blob_client()
        blob.create_container("cont")
        blob.upload_blob("cont", "locked", b"v")
        blob.acquire_lease("cont", "locked")
        account.state.clock.advance(60)
        blob.upload_blob("cont", "locked", b"after expiry")  # no error

    def test_snapshots(self, account):
        blob = account.blob_client()
        blob.create_container("cont")
        blob.upload_blob("cont", "doc", b"old")
        snap = blob.snapshot_blob("cont", "doc")
        blob.upload_blob("cont", "doc", b"new")
        assert blob.download_snapshot(
            "cont", "doc", snap.snapshot_id).to_bytes() == b"old"
        with pytest.raises(InvalidOperationError):
            blob.delete_blob("cont", "doc")
        blob.delete_blob("cont", "doc", delete_snapshots=True)
