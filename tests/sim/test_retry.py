"""Tests for the retry loop (repro.sim.retry) and its policy hooks."""

import pytest

from repro.resilience import (
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    ExponentialJitterBackoff,
    FixedBackoff,
    RetryBudget,
)
from repro.sim import SimStorageAccount, retrying
from repro.simkit import Environment
from repro.storage import ServerBusyError, TransientServerError


def flaky_op(env, failures, *, exc=None):
    """An op generator factory that fails ``failures`` times, then succeeds."""
    state = {"left": failures}

    def op():
        yield env.timeout(0.1)
        if state["left"] > 0:
            state["left"] -= 1
            raise exc or ServerBusyError("busy", retry_after=1.0)
        return "done"

    return op


def drive(env, gen):
    p = env.process(gen)
    env.run()
    return p


class TestDefaults:
    def test_paper_default_sleeps_retry_after(self):
        env = Environment()
        p = drive(env, retrying(env, flaky_op(env, 3)))
        assert p.value == "done"
        # 4 attempts x 0.1 s op time + 3 x 1.0 s retry_after sleeps.
        assert env.now == pytest.approx(3.4)

    def test_transient_500s_are_retryable(self):
        env = Environment()
        exc = TransientServerError("flaky", retry_after=0.5)
        p = drive(env, retrying(env, flaky_op(env, 2, exc=exc)))
        assert p.value == "done"
        assert env.now == pytest.approx(1.3)

    def test_non_retryable_errors_pass_through(self):
        env = Environment()

        def op():
            yield env.timeout(0.1)
            raise ValueError("not retryable")

        with pytest.raises(ValueError):
            drive(env, retrying(env, op)).value


class TestMaxRetriesAndOnRetry:
    def test_max_retries_bounds_attempts(self):
        env = Environment()
        calls = []

        def op():
            yield env.timeout(0.1)
            calls.append(env.now)
            raise ServerBusyError("busy", retry_after=1.0)

        with pytest.raises(ServerBusyError):
            drive(env, retrying(env, op, max_retries=2)).value
        assert len(calls) == 3  # first try + 2 retries

    def test_on_retry_sees_consistent_attempt_numbers(self):
        """Satellite: ``attempt`` passed to on_retry counts retryable
        failures so far, starting at 1, regardless of policy."""
        for policy in (None, FixedBackoff(0.1),
                       ExponentialJitterBackoff(seed=2)):
            env = Environment()
            seen = []
            drive(env, retrying(env, flaky_op(env, 4),
                                on_retry=lambda a, e: seen.append(
                                    (a, type(e).__name__)),
                                policy=policy))
            assert [a for a, _ in seen] == [1, 2, 3, 4]
            assert {n for _, n in seen} == {"ServerBusyError"}

    def test_on_retry_not_called_on_success_or_giveup(self):
        env = Environment()
        seen = []
        with pytest.raises(ServerBusyError):
            drive(env, retrying(env, flaky_op(env, 5), max_retries=2,
                                on_retry=lambda a, e: seen.append(a))).value
        assert seen == [1, 2]  # the give-up (attempt 3) never slept


class TestPolicies:
    def test_policy_supplies_the_backoff_schedule(self):
        env = Environment()
        drive(env, retrying(env, flaky_op(env, 3),
                            policy=FixedBackoff(0.25)))
        assert env.now == pytest.approx(0.4 + 3 * 0.25)

    def test_policy_stats_accumulate(self):
        env = Environment()
        policy = FixedBackoff(0.25)
        drive(env, retrying(env, flaky_op(env, 3), policy=policy))
        drive(env, retrying(env, flaky_op(env, 0), policy=policy))
        assert policy.stats.attempts == 5
        assert policy.stats.retries == 3
        assert policy.stats.successes == 2
        assert policy.stats.giveups == 0
        assert policy.stats.total_backoff == pytest.approx(0.75)

    def test_budget_exhaustion_reraises(self):
        env = Environment()
        policy = RetryBudget(capacity=2, refill_rate=0.0)
        with pytest.raises(ServerBusyError):
            drive(env, retrying(env, flaky_op(env, 10),
                                policy=policy)).value
        assert policy.stats.giveups == 1
        assert policy.exhaustions == 1


class TestDeadline:
    def test_float_deadline_stops_a_permanent_outage(self):
        """Satellite: a permanently-failing op cannot spin forever when a
        deadline is set — the error surfaces once the budget is gone."""
        env = Environment()

        def always_busy():
            yield env.timeout(0.1)
            raise ServerBusyError("down hard", retry_after=1.0)

        with pytest.raises(ServerBusyError):
            drive(env, retrying(env, always_busy, deadline=5.0)).value
        assert env.now < 6.0  # gave up within the budget (plus one op)

    def test_deadline_object_is_absolute(self):
        env = Environment()

        def body():
            yield env.timeout(3.0)  # deadline partially consumed already
            result = yield from retrying(
                env, flaky_op(env, 50), deadline=Deadline(4.0))
            return result

        with pytest.raises(ServerBusyError):
            drive(env, body()).value
        assert env.now < 5.0

    def test_shared_deadline_propagates_across_calls(self):
        env = Environment()
        deadline = Deadline.after(0.0, 6.0)

        def body():
            # First call eats most of the budget...
            try:
                yield from retrying(env, flaky_op(env, 50),
                                    deadline=deadline)
            except ServerBusyError:
                pass
            first_gave_up = env.now
            # ...so the second call under the SAME deadline dies fast.
            try:
                yield from retrying(env, flaky_op(env, 50),
                                    deadline=deadline)
            except ServerBusyError:
                return first_gave_up, env.now

        p = drive(env, body())
        first, second = p.value
        assert second - first < first  # far less budget the second time

    def test_generous_deadline_does_not_change_success(self):
        env = Environment()
        p = drive(env, retrying(env, flaky_op(env, 2), deadline=100.0))
        assert p.value == "done"
        assert env.now == pytest.approx(2.3)


class TestBreaker:
    def test_breaker_fails_fast_while_open(self):
        env = Environment()
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=30.0)

        def body():
            # The threshold is reached mid-loop, so the loop itself is cut
            # short by the breaker before its max_retries are spent.
            try:
                yield from retrying(env, flaky_op(env, 10), max_retries=2,
                                    breaker=breaker)
            except CircuitOpenError:
                pass
            # Subsequent calls are rejected locally, without touching the
            # fabric (or sleeping).
            before = env.now
            try:
                yield from retrying(env, flaky_op(env, 0), breaker=breaker)
            except CircuitOpenError:
                assert env.now == before
                return "rejected"

        assert drive(env, body()).value == "rejected"
        assert breaker.trips == 1
        assert breaker.rejections == 2

    def test_breaker_recloses_after_reset(self):
        env = Environment()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0)

        def body():
            try:
                yield from retrying(env, flaky_op(env, 10), max_retries=0,
                                    breaker=breaker)
            except ServerBusyError:
                pass
            yield env.timeout(5.0)  # reset window elapses
            result = yield from retrying(env, flaky_op(env, 0),
                                         breaker=breaker)
            return result

        assert drive(env, body()).value == "done"
        from repro.resilience import BreakerState
        assert breaker.state is BreakerState.CLOSED


class TestAgainstRealFabric:
    def test_policy_rides_through_injected_outage(self):
        from repro.cluster import Service
        env = Environment()
        account = SimStorageAccount(env, seed=1)
        account.cluster.inject_outage(Service.QUEUE, start=0.5, duration=4.0)
        qc = account.queue_client()
        policy = ExponentialJitterBackoff(seed=4)

        def body():
            yield from qc.create_queue("vital")
            yield env.timeout(1.0)
            yield from retrying(env, lambda: qc.put_message("vital", b"x"),
                                policy=policy)
            return env.now

        p = drive(env, body())
        assert p.value >= 4.5  # landed only after the outage lifted
        assert policy.stats.retries > 0
