"""Unit tests for the simkit environment/event loop."""

import pytest

from repro.simkit import EmptySchedule, Environment


@pytest.fixture
def env():
    return Environment()


class TestClock:
    def test_starts_at_zero(self, env):
        assert env.now == 0.0

    def test_initial_time(self):
        assert Environment(initial_time=100).now == 100.0

    def test_peek_empty(self, env):
        assert env.peek() == float("inf")

    def test_peek_next_event(self, env):
        env.timeout(7)
        env.timeout(3)
        assert env.peek() == 3

    def test_step_empty_raises(self, env):
        with pytest.raises(EmptySchedule):
            env.step()


class TestRun:
    def test_run_until_empty(self, env):
        env.timeout(5)
        env.run()
        assert env.now == 5

    def test_run_until_time_sets_clock_exactly(self, env):
        env.timeout(10)
        env.run(until=4)
        assert env.now == 4

    def test_run_until_time_processes_due_events(self, env):
        fired = []
        t = env.timeout(3)
        t.callbacks.append(lambda e: fired.append(env.now))
        env.run(until=5)
        assert fired == [3]

    def test_run_until_past_time_rejected(self, env):
        env.run(until=10)
        with pytest.raises(ValueError):
            env.run(until=5)

    def test_run_until_event_returns_value(self, env):
        t = env.timeout(2, value="v")
        assert env.run(until=t) == "v"
        assert env.now == 2

    def test_run_until_processed_event_returns_immediately(self, env):
        t = env.timeout(1, value="v")
        env.run()
        assert env.run(until=t) == "v"

    def test_run_until_failed_event_raises(self, env):
        e = env.event()

        def failer(env):
            yield env.timeout(1)
            e.fail(ValueError("x"))

        env.process(failer(env))
        with pytest.raises(ValueError):
            env.run(until=e)

    def test_run_until_unreachable_event_raises(self, env):
        e = env.event()  # never triggered
        env.timeout(1)
        with pytest.raises(RuntimeError, match="not triggered"):
            env.run(until=e)

    def test_run_resumes_after_horizon(self, env):
        env.timeout(10)
        env.run(until=5)
        env.run()
        assert env.now == 10

    def test_run_until_now_is_noop(self, env):
        env.run(until=0)
        assert env.now == 0


class TestDeterminism:
    def test_identical_runs_identical_traces(self):
        def trace_run(seed_order):
            env = Environment()
            log = []

            def worker(env, i):
                for _ in range(3):
                    yield env.timeout(0.5 + (i % 3) * 0.25)
                    log.append((env.now, i))

            for i in seed_order:
                env.process(worker(env, i))
            env.run()
            return log

        order = list(range(8))
        assert trace_run(order) == trace_run(order)

    def test_priority_ordering_urgent_first(self, env):
        from repro.simkit import NORMAL, URGENT
        order = []
        a = env.event()
        a.callbacks.append(lambda e: order.append("normal"))
        b = env.event()
        b.callbacks.append(lambda e: order.append("urgent"))
        # Schedule both at the same time, different priorities.
        a._ok, a._value = True, None
        env.schedule(a, priority=NORMAL)
        b._ok, b._value = True, None
        env.schedule(b, priority=URGENT)
        env.run()
        assert order == ["urgent", "normal"]


class TestRunUntilEdgeCases:
    def test_until_triggered_unprocessed_event(self, env):
        """run(until=e) where e is triggered but its callbacks not yet run."""
        e = env.event()
        e.succeed("v")
        assert not e.processed
        assert env.run(until=e) == "v"
        assert e.processed

    def test_until_event_processes_same_time_events(self, env):
        order = []
        t1 = env.timeout(1)
        t1.callbacks.append(lambda _e: order.append("t1"))
        t2 = env.timeout(1)
        t2.callbacks.append(lambda _e: order.append("t2"))
        env.run(until=t1)
        # t1 fired; t2 (same timestamp, later insertion) not yet.
        assert order == ["t1"]
        env.run()
        assert order == ["t1", "t2"]

    def test_nested_run_via_condition_values(self, env):
        t1, t2, t3 = env.timeout(1, "a"), env.timeout(2, "b"), env.timeout(3, "c")
        first = env.run(until=t1 | t2)
        assert list(first.values()) == ["a"]
        rest = env.run(until=t2 & t3)
        assert set(rest.values()) == {"b", "c"}

    def test_tracer_exception_propagates(self, env):
        def bad_tracer(t, e):
            raise RuntimeError("tracer bug")

        env.tracer = bad_tracer
        env.timeout(1)
        with pytest.raises(RuntimeError, match="tracer bug"):
            env.run()


class TestScheduleGuards:
    """The kernel refuses to rewind the clock (fast paths included)."""

    def test_schedule_in_the_past_rejected(self, env):
        env.timeout(5)
        env.run()
        e = env.event()
        e._ok, e._value = True, None
        with pytest.raises(ValueError, match="before now"):
            env.schedule(e, delay=-2)

    def test_schedule_error_names_the_time(self, env):
        env.timeout(10)
        env.run()
        e = env.event()
        e._ok, e._value = True, None
        with pytest.raises(ValueError, match=r"t=7.*3.*before now.*10"):
            env.schedule(e, delay=-3)

    def test_timeout_negative_delay_rejected(self, env):
        with pytest.raises(ValueError, match="negative delay"):
            env.timeout(-1)

    def test_schedule_at_now_allowed(self, env):
        e = env.event()
        e._ok, e._value = True, None
        env.schedule(e, delay=0)
        env.run()
        assert e.processed


class TestKernelFastPaths:
    """The inlined run() loops must behave exactly like step()-by-step."""

    def test_events_processed_counts_match_step_loop(self):
        def build():
            env = Environment()

            def worker(env):
                for _ in range(5):
                    yield env.timeout(1)

            for _ in range(3):
                env.process(worker(env))
            return env

        fast = build()
        fast.run()

        from repro.simkit import EmptySchedule
        stepped = build()
        try:
            while True:
                stepped.step()
        except EmptySchedule:
            pass
        assert fast.events_processed == stepped.events_processed
        assert fast.now == stepped.now

    def test_events_processed_counted_with_tracer(self, env):
        seen = []
        env.tracer = lambda t, e: seen.append(t)
        env.timeout(1)
        env.timeout(2)
        env.run()
        assert env.events_processed == 2
        assert seen == [1, 2]

    def test_until_event_counter_flushed_on_failure(self, env):
        e = env.event()

        def failer(env):
            yield env.timeout(1)
            e.fail(ValueError("x"))

        env.process(failer(env))
        with pytest.raises(ValueError):
            env.run(until=e)
        assert env.events_processed >= 1

    def test_timeout_fast_path_fields(self, env):
        t = env.timeout(3, value="payload")
        assert t.env is env and t.callbacks == []
        assert t._ok and not t._defused
        assert t._delay == 3
        env.run(until=t)
        assert env.now == 3

    def test_failed_event_still_raises_from_fast_loop(self, env):
        e = env.event()
        e.fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            env.run()
