"""Unit tests for simkit events and conditions."""

import pytest

from repro.simkit import (
    AllOf,
    AnyOf,
    Environment,
)


@pytest.fixture
def env():
    return Environment()


class TestEvent:
    def test_starts_untriggered(self, env):
        e = env.event()
        assert not e.triggered
        assert not e.processed

    def test_value_unavailable_before_trigger(self, env):
        e = env.event()
        with pytest.raises(AttributeError):
            _ = e.value
        with pytest.raises(AttributeError):
            _ = e.ok

    def test_succeed_sets_value(self, env):
        e = env.event()
        e.succeed(42)
        assert e.triggered and e.ok and e.value == 42

    def test_succeed_twice_raises(self, env):
        e = env.event()
        e.succeed()
        with pytest.raises(RuntimeError):
            e.succeed()

    def test_fail_then_succeed_raises(self, env):
        e = env.event()
        e.fail(ValueError("boom"))
        e.defused = True
        with pytest.raises(RuntimeError):
            e.succeed()

    def test_fail_requires_exception(self, env):
        e = env.event()
        with pytest.raises(TypeError):
            e.fail("not an exception")

    def test_fail_value_is_exception(self, env):
        e = env.event()
        exc = ValueError("boom")
        e.fail(exc)
        e.defused = True
        assert e.value is exc and not e.ok
        env.run()

    def test_callbacks_run_on_processing(self, env):
        e = env.event()
        seen = []
        e.callbacks.append(lambda evt: seen.append(evt.value))
        e.succeed("x")
        env.run()
        assert seen == ["x"]
        assert e.processed

    def test_unhandled_failure_propagates_from_run(self, env):
        e = env.event()
        e.fail(RuntimeError("unhandled"))
        with pytest.raises(RuntimeError, match="unhandled"):
            env.run()

    def test_defused_failure_does_not_propagate(self, env):
        e = env.event()
        e.fail(RuntimeError("handled"))
        e.defused = True
        env.run()  # no raise


class TestTimeout:
    def test_fires_at_delay(self, env):
        t = env.timeout(5, value="done")
        env.run()
        assert env.now == 5 and t.value == "done"

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_zero_delay_fires_now(self, env):
        env.timeout(0)
        env.run()
        assert env.now == 0

    def test_delay_property(self, env):
        assert env.timeout(3.5).delay == 3.5

    def test_ordering_of_simultaneous_timeouts(self, env):
        order = []
        for i in range(5):
            t = env.timeout(1, value=i)
            t.callbacks.append(lambda e: order.append(e.value))
        env.run()
        assert order == [0, 1, 2, 3, 4]  # FIFO among equal times


class TestConditions:
    def test_all_of_waits_for_all(self, env):
        t1, t2 = env.timeout(1, "a"), env.timeout(3, "b")
        result = env.run(until=AllOf(env, [t1, t2]))
        assert env.now == 3
        assert list(result.values()) == ["a", "b"]

    def test_any_of_fires_on_first(self, env):
        t1, t2 = env.timeout(1, "a"), env.timeout(3, "b")
        result = env.run(until=AnyOf(env, [t1, t2]))
        assert env.now == 1
        assert list(result.values()) == ["a"]

    def test_empty_all_of_fires_immediately(self, env):
        result = env.run(until=AllOf(env, []))
        assert len(result) == 0

    def test_empty_any_of_fires_immediately(self, env):
        result = env.run(until=AnyOf(env, []))
        assert len(result) == 0

    def test_operator_and(self, env):
        t1, t2 = env.timeout(1), env.timeout(2)
        env.run(until=t1 & t2)
        assert env.now == 2

    def test_operator_or(self, env):
        t1, t2 = env.timeout(1), env.timeout(2)
        env.run(until=t1 | t2)
        assert env.now == 1

    def test_nested_condition_value_flattens(self, env):
        t1, t2, t3 = env.timeout(1, "a"), env.timeout(2, "b"), env.timeout(3, "c")
        result = env.run(until=(t1 & t2) & t3)
        assert set(result.values()) == {"a", "b", "c"}

    def test_condition_with_pretriggered_events(self, env):
        t1 = env.timeout(1, "a")
        env.run(until=t1)
        cond = AllOf(env, [t1, env.timeout(1, "b")])
        result = env.run(until=cond)
        assert list(result.values()) == ["a", "b"]

    def test_condition_fails_if_member_fails(self, env):
        e = env.event()
        t = env.timeout(10)
        cond = AllOf(env, [e, t])

        def failer(env):
            yield env.timeout(1)
            e.fail(ValueError("member failed"))

        env.process(failer(env))
        with pytest.raises(ValueError, match="member failed"):
            env.run(until=cond)

    def test_mixed_environments_rejected(self, env):
        other = Environment()
        with pytest.raises(ValueError):
            AllOf(env, [env.timeout(1), other.timeout(1)])

    def test_condition_value_mapping_interface(self, env):
        t1, t2 = env.timeout(1, "a"), env.timeout(2, "b")
        result = env.run(until=AllOf(env, [t1, t2]))
        assert t1 in result and result[t1] == "a"
        assert dict(result.items())[t2] == "b"
        assert result.todict() == {t1: "a", t2: "b"}
        assert result == {t1: "a", t2: "b"}
        with pytest.raises(KeyError):
            _ = result[env.event()]
