"""Unit tests for simkit measurement helpers."""

import math

import pytest

from repro.simkit import Environment, Tally, TimeSeries, UtilizationMonitor


class TestTally:
    def test_empty_tally(self):
        t = Tally("x")
        assert t.count == 0
        with pytest.raises(ValueError):
            _ = t.mean
        with pytest.raises(ValueError):
            _ = t.min
        with pytest.raises(ValueError):
            _ = t.max

    def test_basic_stats(self):
        t = Tally()
        t.extend([1.0, 2.0, 3.0, 4.0])
        assert t.count == 4
        assert t.mean == pytest.approx(2.5)
        assert t.total == pytest.approx(10.0)
        assert t.min == 1.0 and t.max == 4.0
        assert t.variance == pytest.approx(5.0 / 3.0)
        assert t.stdev == pytest.approx(math.sqrt(5.0 / 3.0))

    def test_single_sample_variance_zero(self):
        t = Tally()
        t.record(5.0)
        assert t.variance == 0.0

    def test_welford_matches_numpy(self):
        import numpy as np
        rng = np.random.default_rng(1)
        data = rng.normal(100, 15, size=1000)
        t = Tally()
        t.extend(data)
        assert t.mean == pytest.approx(float(np.mean(data)))
        assert t.variance == pytest.approx(float(np.var(data, ddof=1)))

    def test_summary_keys(self):
        t = Tally()
        t.record(1.0)
        assert set(t.summary()) == {"count", "total", "mean", "stdev", "min", "max"}


class TestTimeSeries:
    def test_record_and_last(self):
        s = TimeSeries("s")
        s.record(0, 1.0)
        s.record(5, 2.0)
        assert len(s) == 2
        assert s.last() == (5, 2.0)

    def test_empty_raises(self):
        s = TimeSeries("s")
        with pytest.raises(ValueError):
            s.last()
        with pytest.raises(ValueError):
            s.time_weighted_mean()

    def test_time_weighted_mean(self):
        s = TimeSeries()
        s.record(0, 10.0)   # 10 for [0, 4)
        s.record(4, 20.0)   # 20 for [4, 8)
        assert s.time_weighted_mean(until=8) == pytest.approx(15.0)

    def test_time_weighted_mean_zero_span(self):
        s = TimeSeries()
        s.record(3, 42.0)
        assert s.time_weighted_mean(until=3) == 42.0


class TestUtilizationMonitor:
    def test_busy_accounting(self):
        env = Environment()
        mon = UtilizationMonitor(env)

        def proc(env):
            mon.mark_busy()
            yield env.timeout(4)
            mon.mark_idle()
            yield env.timeout(6)

        env.process(proc(env))
        env.run()
        assert mon.busy_time == pytest.approx(4.0)
        assert mon.utilization == pytest.approx(0.4)

    def test_still_busy_counts_to_now(self):
        env = Environment()
        mon = UtilizationMonitor(env)

        def proc(env):
            mon.mark_busy()
            yield env.timeout(5)

        env.process(proc(env))
        env.run()
        assert mon.busy_time == pytest.approx(5.0)
        assert mon.utilization == pytest.approx(1.0)

    def test_double_mark_busy_is_idempotent(self):
        env = Environment()
        mon = UtilizationMonitor(env)
        mon.mark_busy()
        mon.mark_busy()
        mon.mark_idle()
        mon.mark_idle()
        assert mon.busy_time == 0.0

    def test_zero_elapsed_utilization(self):
        env = Environment()
        mon = UtilizationMonitor(env)
        assert mon.utilization == 0.0
