"""Unit tests for simkit processes: lifecycle, interrupts, failures."""

import pytest

from repro.simkit import Environment, Interrupt


@pytest.fixture
def env():
    return Environment()


class TestProcessLifecycle:
    def test_return_value(self, env):
        def proc(env):
            yield env.timeout(1)
            return "result"

        p = env.process(proc(env))
        env.run()
        assert p.value == "result"
        assert not p.is_alive

    def test_implicit_none_return(self, env):
        def proc(env):
            yield env.timeout(1)

        p = env.process(proc(env))
        env.run()
        assert p.value is None

    def test_process_is_event(self, env):
        def child(env):
            yield env.timeout(2)
            return 7

        def parent(env):
            value = yield env.process(child(env))
            return value * 2

        p = env.process(parent(env))
        env.run()
        assert p.value == 14 and env.now == 2

    def test_non_generator_rejected(self, env):
        with pytest.raises(ValueError):
            env.process(lambda: None)

    def test_yield_non_event_fails_process(self, env):
        def proc(env):
            yield 42

        p = env.process(proc(env))
        with pytest.raises(RuntimeError, match="expected an Event"):
            env.run()
        assert not p.is_alive and not p.ok

    def test_exception_propagates_if_unwaited(self, env):
        def proc(env):
            yield env.timeout(1)
            raise ValueError("inner")

        env.process(proc(env))
        with pytest.raises(ValueError, match="inner"):
            env.run()

    def test_exception_delivered_to_waiter(self, env):
        def failing(env):
            yield env.timeout(1)
            raise ValueError("inner")

        def waiter(env):
            try:
                yield env.process(failing(env))
            except ValueError as exc:
                return f"caught {exc}"

        p = env.process(waiter(env))
        env.run()
        assert p.value == "caught inner"

    def test_immediate_completion(self, env):
        def proc(env):
            return "instant"
            yield  # pragma: no cover

        p = env.process(proc(env))
        env.run()
        assert p.value == "instant" and env.now == 0

    def test_name_defaults_and_override(self, env):
        def named_body(env):
            yield env.timeout(1)

        p1 = env.process(named_body(env))
        p2 = env.process(named_body(env), name="custom")
        assert p1.name == "process" or p1.name  # generator name fallback
        assert p2.name == "custom"
        env.run()

    def test_active_process_tracking(self, env):
        seen = []

        def proc(env):
            seen.append(env.active_process)
            yield env.timeout(1)

        p = env.process(proc(env))
        env.run()
        assert seen == [p]
        assert env.active_process is None


class TestInterrupts:
    def test_interrupt_delivers_cause(self, env):
        def victim(env):
            try:
                yield env.timeout(100)
            except Interrupt as i:
                return ("interrupted", i.cause)

        def attacker(env, target):
            yield env.timeout(5)
            target.interrupt("reason")

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run(until=v)
        assert env.now == 5
        assert v.value == ("interrupted", "reason")
        # The orphaned timeout still fires later; it just resumes nobody.
        env.run()
        assert env.now == 100

    def test_interrupted_process_can_continue(self, env):
        def victim(env):
            try:
                yield env.timeout(100)
            except Interrupt:
                pass
            yield env.timeout(3)
            return env.now

        def attacker(env, target):
            yield env.timeout(5)
            target.interrupt()

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        assert v.value == 8

    def test_uncaught_interrupt_fails_process(self, env):
        def victim(env):
            yield env.timeout(100)

        def attacker(env, target):
            yield env.timeout(1)
            target.interrupt("boom")

        v = env.process(victim(env))
        env.process(attacker(env, v))
        # An uncaught interrupt fails the process like any other exception,
        # and with no waiter the failure propagates out of run().
        with pytest.raises(Interrupt):
            env.run()
        assert not v.is_alive and not v.ok

    def test_uncaught_interrupt_delivered_to_waiter(self, env):
        def victim(env):
            yield env.timeout(100)

        def attacker(env, target):
            yield env.timeout(1)
            target.interrupt("boom")

        def waiter(env, target):
            try:
                yield target
            except Interrupt as i:
                return ("waiter saw", i.cause)

        v = env.process(victim(env))
        env.process(attacker(env, v))
        w = env.process(waiter(env, v))
        env.run()
        assert w.value == ("waiter saw", "boom")

    def test_cannot_interrupt_dead_process(self, env):
        def quick(env):
            yield env.timeout(1)

        p = env.process(quick(env))
        env.run()
        with pytest.raises(RuntimeError):
            p.interrupt()

    def test_cannot_interrupt_self(self, env):
        def proc(env):
            env.active_process.interrupt()
            yield env.timeout(1)

        env.process(proc(env))
        with pytest.raises(RuntimeError, match="not allowed to interrupt itself"):
            env.run()

    def test_interrupt_unsubscribes_from_target(self, env):
        """After an interrupt, the old target firing must not resume twice."""
        log = []

        def victim(env):
            t = env.timeout(10, "late")
            try:
                value = yield t
                log.append(("normal", value))
            except Interrupt:
                log.append(("interrupted", env.now))
            yield env.timeout(20)
            log.append(("end", env.now))

        def attacker(env, target):
            yield env.timeout(1)
            target.interrupt()

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        assert log == [("interrupted", 1), ("end", 21)]

    def test_interrupt_repr_and_cause(self, env):
        i = Interrupt("why")
        assert i.cause == "why"
        assert "why" in str(i)
