"""Property-based tests (hypothesis) on the simkit kernel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkit import Container, Environment, Resource, Store


@given(delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_timeouts_fire_in_time_order(delays):
    env = Environment()
    fired = []
    for d in delays:
        t = env.timeout(d)
        t.callbacks.append(lambda e, d=d: fired.append(env.now))
    env.run()
    assert fired == sorted(fired)
    assert env.now == max(delays)


@given(delays=st.lists(st.floats(0.01, 10.0), min_size=1, max_size=20),
       capacity=st.integers(1, 5))
@settings(max_examples=50, deadline=None)
def test_resource_never_overcommitted(delays, capacity):
    env = Environment()
    res = Resource(env, capacity=capacity)
    max_seen = [0]

    def user(env, hold):
        with res.request() as req:
            yield req
            max_seen[0] = max(max_seen[0], res.count)
            yield env.timeout(hold)

    for hold in delays:
        env.process(user(env, hold))
    env.run()
    assert max_seen[0] <= capacity
    assert res.count == 0          # everything released
    assert len(res.queue) == 0


@given(holds=st.lists(st.floats(0.01, 5.0), min_size=2, max_size=15))
@settings(max_examples=50, deadline=None)
def test_resource_grants_fifo(holds):
    env = Environment()
    res = Resource(env, capacity=1)
    grant_order = []

    def user(env, idx, hold):
        # All requests issued at t=0 in index order.
        with res.request() as req:
            yield req
            grant_order.append(idx)
            yield env.timeout(hold)

    for i, hold in enumerate(holds):
        env.process(user(env, i, hold))
    env.run()
    assert grant_order == list(range(len(holds)))


@given(items=st.lists(st.integers(), min_size=1, max_size=40),
       capacity=st.integers(1, 10))
@settings(max_examples=50, deadline=None)
def test_store_conserves_items(items, capacity):
    env = Environment()
    store = Store(env, capacity=capacity)
    received = []

    def producer(env):
        for item in items:
            yield store.put(item)

    def consumer(env):
        for _ in items:
            got = yield store.get()
            received.append(got)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == items       # FIFO and lossless
    assert store.items == []


@given(amounts=st.lists(st.floats(0.1, 50.0), min_size=1, max_size=20),
       capacity=st.floats(50.0, 500.0))
@settings(max_examples=50, deadline=None)
def test_container_level_bounded(amounts, capacity):
    env = Environment()
    c = Container(env, capacity=capacity)
    levels = []

    def producer(env):
        for a in amounts:
            amt = min(a, capacity)
            yield c.put(amt)
            levels.append(c.level)
            yield env.timeout(0.1)

    def consumer(env):
        for a in amounts:
            amt = min(a, capacity)
            yield c.get(amt)
            levels.append(c.level)
            yield env.timeout(0.1)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert all(0 <= lv <= capacity + 1e-9 for lv in levels)
    assert c.level == pytest.approx(0.0, abs=1e-9)


@given(seed_graph=st.lists(
    st.tuples(st.floats(0.0, 5.0), st.integers(0, 4)),
    min_size=1, max_size=25))
@settings(max_examples=40, deadline=None)
def test_random_process_graphs_are_deterministic(seed_graph):
    """The same process graph produces the identical trace twice."""

    def run_once():
        env = Environment()
        trace = []

        def worker(env, wid, delay, fanout):
            yield env.timeout(delay)
            trace.append(("tick", wid, env.now))
            children = []
            for c in range(fanout % 3):
                children.append(env.process(child(env, wid, c)))
            for ch in children:
                value = yield ch
                trace.append(("joined", wid, value, env.now))

        def child(env, parent, idx):
            yield env.timeout(0.25 * (idx + 1))
            return (parent, idx)

        for wid, (delay, fanout) in enumerate(seed_graph):
            env.process(worker(env, wid, delay, fanout))
        env.run()
        return trace

    assert run_once() == run_once()
