"""Unit tests for simkit resources: Resource, Container, Store."""

import pytest

from repro.simkit import (
    Container,
    Environment,
    FilterStore,
    PriorityResource,
    Resource,
    Store,
)


@pytest.fixture
def env():
    return Environment()


class TestResource:
    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_grant_within_capacity(self, env):
        res = Resource(env, capacity=2)
        log = []

        def user(env, i):
            with res.request() as req:
                yield req
                log.append((env.now, i, "in"))
                yield env.timeout(1)

        for i in range(2):
            env.process(user(env, i))
        env.run()
        assert [t for t, _, _ in log] == [0, 0]

    def test_queueing_beyond_capacity(self, env):
        res = Resource(env, capacity=1)
        entries = []

        def user(env, i):
            with res.request() as req:
                yield req
                entries.append((env.now, i))
                yield env.timeout(2)

        for i in range(3):
            env.process(user(env, i))
        env.run()
        assert entries == [(0, 0), (2, 1), (4, 2)]  # FIFO

    def test_count_and_queue_len(self, env):
        res = Resource(env, capacity=1)
        states = []

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(5)

        def observer(env):
            yield env.timeout(1)
            states.append((res.count, len(res.queue)))

        env.process(holder(env))
        env.process(holder(env))
        env.process(observer(env))
        env.run()
        assert states == [(1, 1)]

    def test_explicit_release(self, env):
        res = Resource(env, capacity=1)

        def user(env):
            req = res.request()
            yield req
            yield env.timeout(1)
            res.release(req)
            return env.now

        p = env.process(user(env))
        p2 = env.process(user(env))
        env.run()
        assert p.value == 1 and p2.value == 2

    def test_cancel_queued_request(self, env):
        res = Resource(env, capacity=1)
        got = []

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(10)

        def impatient(env):
            req = res.request()
            result = yield req | env.timeout(1)
            if req not in result:
                res.release(req)  # withdraw from the queue
                return "gave up"
            return "got it"

        def patient(env):
            yield env.timeout(2)
            with res.request() as req:
                yield req
                got.append(env.now)

        env.process(holder(env))
        p = env.process(impatient(env))
        env.process(patient(env))
        env.run()
        assert p.value == "gave up"
        assert got == [10]  # patient got it right when holder released

    def test_double_release_is_noop(self, env):
        res = Resource(env, capacity=1)

        def user(env):
            req = res.request()
            yield req
            res.release(req)
            res.release(req)  # no error

        env.process(user(env))
        env.run()
        assert res.count == 0


class TestPriorityResource:
    def test_priority_order(self, env):
        res = PriorityResource(env, capacity=1)
        order = []

        def user(env, name, prio, delay):
            yield env.timeout(delay)
            with res.request(priority=prio) as req:
                yield req
                order.append(name)
                yield env.timeout(10)

        env.process(user(env, "first", 5, 0))     # holds the resource
        env.process(user(env, "low", 5, 1))
        env.process(user(env, "high", 0, 2))      # arrives later, jumps queue
        env.run()
        assert order == ["first", "high", "low"]

    def test_fifo_within_priority(self, env):
        res = PriorityResource(env, capacity=1)
        order = []

        def user(env, name, delay):
            yield env.timeout(delay)
            with res.request(priority=1) as req:
                yield req
                order.append(name)
                yield env.timeout(10)

        env.process(user(env, "a", 0))
        env.process(user(env, "b", 1))
        env.process(user(env, "c", 2))
        env.run()
        assert order == ["a", "b", "c"]


class TestContainer:
    def test_validation(self, env):
        with pytest.raises(ValueError):
            Container(env, capacity=0)
        with pytest.raises(ValueError):
            Container(env, capacity=10, init=11)

    def test_put_get(self, env):
        c = Container(env, capacity=10, init=5)

        def proc(env):
            yield c.get(3)
            yield c.put(6)
            return c.level

        p = env.process(proc(env))
        env.run()
        assert p.value == 8

    def test_get_blocks_until_available(self, env):
        c = Container(env, init=0)
        times = []

        def getter(env):
            yield c.get(5)
            times.append(env.now)

        def putter(env):
            yield env.timeout(3)
            yield c.put(5)

        env.process(getter(env))
        env.process(putter(env))
        env.run()
        assert times == [3]

    def test_put_blocks_at_capacity(self, env):
        c = Container(env, capacity=5, init=5)
        times = []

        def putter(env):
            yield c.put(2)
            times.append(env.now)

        def getter(env):
            yield env.timeout(4)
            yield c.get(3)

        env.process(putter(env))
        env.process(getter(env))
        env.run()
        assert times == [4]

    def test_nonpositive_amounts_rejected(self, env):
        c = Container(env)
        with pytest.raises(ValueError):
            c.put(0)
        with pytest.raises(ValueError):
            c.get(-1)


class TestStore:
    def test_fifo_order(self, env):
        s = Store(env)
        out = []

        def producer(env):
            for i in range(3):
                yield s.put(i)

        def consumer(env):
            for _ in range(3):
                item = yield s.get()
                out.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert out == [0, 1, 2]

    def test_get_blocks_on_empty(self, env):
        s = Store(env)
        times = []

        def consumer(env):
            item = yield s.get()
            times.append((env.now, item))

        def producer(env):
            yield env.timeout(2)
            yield s.put("x")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert times == [(2, "x")]

    def test_put_blocks_at_capacity(self, env):
        s = Store(env, capacity=1)
        done = []

        def producer(env):
            yield s.put(1)
            yield s.put(2)
            done.append(env.now)

        def consumer(env):
            yield env.timeout(5)
            yield s.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert done == [5]

    def test_filter_store(self, env):
        s = FilterStore(env)
        out = []

        def producer(env):
            for i in range(5):
                yield s.put(i)

        def even_consumer(env):
            for _ in range(2):
                item = yield s.get(lambda x: x % 2 == 0)
                out.append(item)

        env.process(producer(env))
        env.process(even_consumer(env))
        env.run()
        assert out == [0, 2]
        assert s.items == [1, 3, 4]

    def test_blocked_filter_get_does_not_block_others(self, env):
        s = FilterStore(env)
        out = []

        def wants_99(env):
            item = yield s.get(lambda x: x == 99)
            out.append(("99", item, env.now))

        def wants_any(env):
            item = yield s.get()
            out.append(("any", item, env.now))

        def producer(env):
            yield env.timeout(1)
            yield s.put(1)
            yield env.timeout(1)
            yield s.put(99)

        env.process(wants_99(env))
        env.process(wants_any(env))
        env.process(producer(env))
        env.run()
        assert ("any", 1, 1) in out and ("99", 99, 2) in out


class TestPreemptiveResource:
    def test_higher_priority_preempts(self, env):
        from repro.simkit import Interrupt, Preempted, PreemptiveResource
        res = PreemptiveResource(env, capacity=1)
        log = []

        def low(env):
            with res.request(priority=5) as req:
                yield req
                try:
                    yield env.timeout(10)
                except Interrupt as i:
                    assert isinstance(i.cause, Preempted)
                    log.append(("preempted", env.now, i.cause.usage_since))

        def high(env):
            yield env.timeout(2)
            with res.request(priority=0) as req:
                yield req
                log.append(("high", env.now))
                yield env.timeout(1)

        env.process(low(env))
        env.process(high(env))
        env.run()
        assert log == [("preempted", 2, 0), ("high", 2)]

    def test_equal_priority_does_not_preempt(self, env):
        from repro.simkit import PreemptiveResource
        res = PreemptiveResource(env, capacity=1)
        order = []

        def user(env, name, delay):
            yield env.timeout(delay)
            with res.request(priority=1) as req:
                yield req
                order.append((name, env.now))
                yield env.timeout(5)

        env.process(user(env, "first", 0))
        env.process(user(env, "second", 1))
        env.run()
        assert order == [("first", 0), ("second", 5)]

    def test_preempt_false_waits(self, env):
        from repro.simkit import PreemptiveResource
        res = PreemptiveResource(env, capacity=1)
        order = []

        def low(env):
            with res.request(priority=5) as req:
                yield req
                yield env.timeout(10)
                order.append(("low done", env.now))

        def polite_high(env):
            yield env.timeout(1)
            with res.request(priority=0, preempt=False) as req:
                yield req
                order.append(("high in", env.now))

        env.process(low(env))
        env.process(polite_high(env))
        env.run()
        assert order == [("low done", 10), ("high in", 10)]
