"""Heap vs calendar scheduler equivalence (property-based).

The calendar queue is only a valid drop-in for the binary heap if every
observable — event pop order, clock values, events_processed, error
messages — is identical.  These tests drive both schedulers through the
same randomized programs (timeouts, schedule-at-now ties, resource
cancellations, interrupts) and assert the traces match exactly.
"""

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkit import (
    EmptySchedule,
    Environment,
    Interrupt,
    Process,
    Resource,
    Timeout,
)

SCHEDULERS = ("heap", "calendar")

#: Deliberate repeats so many events collide on the same instant — the
#: regime where a bucketed calendar queue could plausibly reorder.
DELAYS = (0.0, 0.0, 0.25, 0.5, 1.0, 1.0, 2.5)


def _label(event):
    """A scheduler-independent identity for a traced event."""
    if isinstance(event, Process):
        return ("proc", event.name)
    if isinstance(event, Timeout):
        return ("timeout", event._value)
    value = getattr(event, "_value", None)
    if isinstance(value, Interrupt):
        return ("interrupt", value.cause)
    if isinstance(value, (int, float, str, tuple, type(None))):
        return (type(event).__name__, value)
    return (type(event).__name__, None)


def _run_program(scheduler, program, interrupt_mask):
    """Run one randomized program; return its full observable trace.

    Each client walks its steps: optionally fire an event at *now*
    (schedule-at-now tie), optionally request-then-release a contended
    resource (exercises grant and cancel paths), then sleep.  The
    interrupter throws :class:`Interrupt` into masked clients mid-run.
    """
    env = Environment(scheduler=scheduler)
    res = Resource(env, capacity=1)
    trace = []
    env.tracer = lambda t, ev: trace.append((t, _label(ev)))

    def client(cid, steps):
        try:
            for sid, (delay, fire_now, touch_res) in enumerate(steps):
                if fire_now:
                    ev = env.event()
                    ev.succeed(("now", cid, sid))
                if touch_res:
                    req = res.request()
                    res.release(req)
                yield env.timeout(delay, value=(cid, sid))
        except Interrupt:
            pass

    procs = [env.process(client(cid, steps), name=f"client-{cid}")
             for cid, steps in enumerate(program)]

    def interrupter():
        for cid, proc in enumerate(procs):
            if interrupt_mask & (1 << cid):
                yield env.timeout(0.5)
                if proc.is_alive:
                    proc.interrupt(("stop", cid))

    env.process(interrupter(), name="interrupter")
    env.run()
    return trace, env.now, env.events_processed


_STEP = st.tuples(st.sampled_from(DELAYS), st.booleans(), st.booleans())
_PROGRAM = st.lists(st.lists(_STEP, min_size=1, max_size=6),
                    min_size=1, max_size=6)


class TestPopOrderEquivalence:
    @given(program=_PROGRAM, interrupt_mask=st.integers(0, 63))
    @settings(max_examples=60, deadline=None)
    def test_traces_identical(self, program, interrupt_mask):
        heap = _run_program("heap", program, interrupt_mask)
        calendar = _run_program("calendar", program, interrupt_mask)
        assert heap == calendar

    @given(delays=st.lists(st.sampled_from(DELAYS), min_size=1,
                           max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_step_and_peek_parity(self, delays):
        out = {}
        for scheduler in SCHEDULERS:
            env = Environment(scheduler=scheduler)
            for i, delay in enumerate(delays):
                env.timeout(delay, value=i)
            seq = []
            while env.peek() != float("inf"):
                horizon = env.peek()
                env.step()
                seq.append((horizon, env.now))
            with pytest.raises(EmptySchedule):
                env.step()
            out[scheduler] = (seq, env.now, env.events_processed)
        assert out["heap"] == out["calendar"]

    @given(until=st.sampled_from((0.0, 0.5, 1.0, 1.75, 3.0)),
           delays=st.lists(st.sampled_from(DELAYS), min_size=1,
                           max_size=15))
    @settings(max_examples=40, deadline=None)
    def test_run_until_time_parity(self, until, delays):
        out = {}
        for scheduler in SCHEDULERS:
            env = Environment(scheduler=scheduler)
            trace = []
            env.tracer = lambda t, ev: trace.append((t, _label(ev)))
            for i, delay in enumerate(delays):
                env.timeout(delay, value=i)
            env.run(until=until)
            out[scheduler] = (trace, env.now, env.events_processed)
        assert out["heap"] == out["calendar"]
        assert out["heap"][1] == until


class TestErrorParity:
    def _messages(self, trigger):
        """The ``ValueError`` str each scheduler raises for ``trigger``.

        Object reprs embed memory addresses, which differ run to run, so
        they are normalized out before the parity comparison.
        """
        messages = {}
        for scheduler in SCHEDULERS:
            env = Environment(scheduler=scheduler)
            env.timeout(1.0)
            env.run()
            with pytest.raises(ValueError) as excinfo:
                trigger(env)
            messages[scheduler] = re.sub(r"0x[0-9a-f]+", "0xADDR",
                                         str(excinfo.value))
        return messages

    def test_rewind_schedule_message_parity(self):
        messages = self._messages(
            lambda env: env.schedule(env.event(), delay=-0.5))
        assert messages["heap"] == messages["calendar"]
        assert "before now" in messages["heap"]

    def test_negative_timeout_message_parity(self):
        messages = self._messages(lambda env: env.timeout(-1.0))
        assert messages["heap"] == messages["calendar"]

    def test_run_until_past_message_parity(self):
        messages = self._messages(lambda env: env.run(until=0.25))
        assert messages["heap"] == messages["calendar"]

    def test_calendar_rejects_exotic_priorities(self):
        heap_env = Environment(scheduler="heap")
        heap_env.schedule(heap_env.event(), priority=5)  # heap: anything
        cal_env = Environment(scheduler="calendar")
        with pytest.raises(ValueError, match="priority"):
            cal_env.schedule(cal_env.event(), priority=5)
