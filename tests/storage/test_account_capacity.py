"""Tests for storage-account capacity enforcement (the 100 TB limit)."""

import pytest

from repro.storage import (
    AccountCapacityExceededError,
    LIMITS_2012,
    ManualClock,
    StorageAccountState,
    SyntheticContent,
)


@pytest.fixture
def tiny_account():
    """An account with a 1 KB capacity so the limit is easy to hit."""
    limits = LIMITS_2012.with_overrides(account_capacity_bytes=1024)
    return StorageAccountState("tinyacct", ManualClock(), limits)


class TestCapacityEnforcement:
    def test_blob_over_capacity_rejected(self, tiny_account):
        c = tiny_account.blobs.create_container("cont")
        b = c.create_block_blob("big")
        b.put_block("b1", SyntheticContent(2048, seed=0))
        with pytest.raises(AccountCapacityExceededError):
            b.put_block_list(["b1"])
        # The failed commit must not corrupt usage accounting.
        assert tiny_account.bytes_used == 0
        assert tiny_account.recompute_usage() == 0

    def test_fill_then_free_then_fill(self, tiny_account):
        c = tiny_account.blobs.create_container("cont")
        b = c.create_block_blob("exact")
        b.upload(SyntheticContent(1024, seed=0))
        assert tiny_account.bytes_used == 1024
        # Full: even one queue byte is too much.
        q = tiny_account.queues.create_queue("que")
        with pytest.raises(AccountCapacityExceededError):
            q.put_message(b"x")
        # Free the blob, then the queue write fits.
        c.delete_blob("exact")
        q.put_message(b"x")
        assert tiny_account.bytes_used == 1

    def test_queue_capacity(self, tiny_account):
        q = tiny_account.queues.create_queue("que")
        q.put_message(b"x" * 1000)
        with pytest.raises(AccountCapacityExceededError):
            q.put_message(b"y" * 100)
        assert q.approximate_message_count() == 1

    def test_table_capacity(self, tiny_account):
        t = tiny_account.tables.create_table("Tab")
        with pytest.raises(AccountCapacityExceededError):
            t.insert("p", "r", {"Data": b"z" * 1500})
        assert t.entity_count() == 0
        assert tiny_account.recompute_usage() == tiny_account.bytes_used

    def test_update_that_shrinks_always_allowed(self, tiny_account):
        t = tiny_account.tables.create_table("Tab")
        t.insert("p", "r", {"Data": b"z" * 900})
        # Replacing with something smaller works even when nearly full.
        t.update("p", "r", {"Data": b"z" * 10})
        assert tiny_account.bytes_used < 200

    def test_usage_never_negative(self, tiny_account):
        q = tiny_account.queues.create_queue("que")
        m = q.put_message(b"abc")
        q.get_message(visibility_timeout=10)
        # Deleting via clear after partial ops keeps usage at >= 0.
        q.clear()
        assert tiny_account.bytes_used == 0
