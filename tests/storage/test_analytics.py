"""Tests for Storage Analytics (request logs + hourly metrics)."""

import pytest

from repro.sim import SimStorageAccount, retrying
from repro.simkit import Environment
from repro.storage import LIMITS_2012
from repro.storage.analytics import (
    HourlyMetrics,
    MetricsAggregator,
    RequestLog,
    RequestRecord,
    attach_analytics,
)


def rec(time=0.0, service="queue", operation="put_message", nbytes=100,
        e2e=0.03, server=0.01, status=201, error=""):
    return RequestRecord(time, service, operation, "p", nbytes, e2e,
                         server, status, error)


class TestRequestLog:
    def test_append_and_len(self):
        log = RequestLog()
        log.append(rec())
        log.append(rec(status=503, error="ServerBusy"))
        assert len(log) == 2

    def test_filters(self):
        log = RequestLog()
        log.append(rec(time=10, service="blob"))
        log.append(rec(time=20, service="queue"))
        log.append(rec(time=30, service="queue", operation="get_message"))
        assert len(log.records(service="queue")) == 2
        assert len(log.records(operation="get_message")) == 1
        assert len(log.records(since=15, until=25)) == 1

    def test_error_rate(self):
        log = RequestLog()
        log.append(rec())
        log.append(rec(status=503))
        assert log.error_rate() == 0.5
        assert log.error_rate(service="blob") == 0.0

    def test_retention_capacity(self):
        log = RequestLog(capacity=3)
        for i in range(5):
            log.append(rec(time=i))
        assert len(log) == 3
        assert log.dropped == 2
        assert [r.time for r in log] == [2, 3, 4]

    def test_record_flags(self):
        assert rec(status=200).ok
        assert not rec(status=503).ok
        assert rec(status=503).throttled
        assert not rec(status=404).throttled


class TestMetricsAggregator:
    def test_hourly_cells(self):
        agg = MetricsAggregator()
        agg.observe(rec(time=100))            # hour 0
        agg.observe(rec(time=3700))           # hour 1
        assert agg.hours() == [0, 1]
        assert agg.cell(0, "queue").total_requests == 1
        assert agg.cell(0, "queue", "put_message").total_requests == 1
        assert agg.cell(2, "queue") is None

    def test_availability_and_latency(self):
        agg = MetricsAggregator()
        agg.observe(rec(e2e=0.02))
        agg.observe(rec(e2e=0.04, status=503))
        cell = agg.cell(0, "queue")
        assert cell.availability == 0.5
        assert cell.average_latency == pytest.approx(0.03)
        assert cell.total_throttles == 1

    def test_service_totals(self):
        agg = MetricsAggregator()
        for t in (0, 3700, 7300):
            agg.observe(rec(time=t, nbytes=10))
        totals = agg.service_totals("queue")
        assert totals.total_requests == 3
        assert totals.total_bytes == 30

    def test_validation(self):
        with pytest.raises(ValueError):
            MetricsAggregator(hour_seconds=0)

    def test_empty_cell_defaults(self):
        cell = HourlyMetrics(0, "blob", "*")
        assert cell.availability == 1.0
        assert cell.average_latency == 0.0


class TestAttachAnalytics:
    def test_instruments_cluster(self):
        env = Environment()
        account = SimStorageAccount(env, seed=4)
        log, metrics = attach_analytics(account.cluster)
        qc = account.queue_client()

        def body():
            yield from qc.create_queue("obs")
            for i in range(10):
                yield from qc.put_message("obs", b"x" * 100)
            m = yield from qc.get_message("obs", visibility_timeout=60)
            yield from qc.delete_message("obs", m.message_id, m.pop_receipt)

        env.process(body())
        env.run()
        assert len(log) == 13  # create + 10 puts + get + delete
        puts = log.records(operation="put_message")
        assert len(puts) == 10
        assert all(p.ok and p.nbytes == 100 for p in puts)
        assert all(p.end_to_end_latency > p.server_latency > 0 for p in puts)
        cell = metrics.cell(0, "queue", "put_message")
        assert cell.total_requests == 10
        assert cell.total_bytes == 1000

    def test_throttles_are_logged(self):
        env = Environment()
        account = SimStorageAccount(
            env, limits=LIMITS_2012.with_overrides(
                queue_messages_per_second=3),
            seed=4)
        log, metrics = attach_analytics(account.cluster)
        qc = account.queue_client()

        def body():
            yield from qc.create_queue("hot")
            for i in range(6):
                yield from retrying(env, lambda: qc.put_message("hot", b"x"))

        env.process(body())
        env.run()
        throttled = [r for r in log if r.throttled]
        assert throttled, "expected ServerBusy log lines"
        assert all(r.error_code == "ServerBusy" for r in throttled)
        cell = metrics.cell(0, "queue", "put_message")
        assert cell.total_throttles == len(throttled)
        assert cell.availability < 1.0
        # Successful retries still landed all six messages.
        assert sum(1 for r in log
                   if r.operation == "put_message" and r.ok) == 6
