"""Tests for Shared Access Signatures."""

import dataclasses

import pytest

from repro.emulator import EmulatorAccount
from repro.storage import ManualClock
from repro.storage.auth import (
    AccountKey,
    AuthorizedBlobClient,
    SasError,
    generate_sas,
)


@pytest.fixture
def key():
    return AccountKey.generate("testaccount")


@pytest.fixture
def clock():
    return ManualClock(start=1000.0)


@pytest.fixture
def account(clock):
    account = EmulatorAccount("testaccount", clock=clock)
    blob = account.blob_client()
    blob.create_container("docs")
    blob.upload_blob("docs", "report", b"secret contents")
    return account


class TestTokenGeneration:
    def test_roundtrip_authorize(self, key):
        token = generate_sas(key, container="docs", blob="report",
                             permissions="r", start=0, expiry=100)
        token.authorize(key, container="docs", blob="report",
                        permission="r", now=50)

    def test_permission_order_enforced(self, key):
        with pytest.raises(ValueError):
            generate_sas(key, container="docs", permissions="wr",
                         start=0, expiry=1)
        with pytest.raises(ValueError):
            generate_sas(key, container="docs", permissions="x",
                         start=0, expiry=1)
        with pytest.raises(ValueError):
            generate_sas(key, container="docs", permissions="",
                         start=0, expiry=1)

    def test_window_validation(self, key):
        with pytest.raises(ValueError):
            generate_sas(key, container="docs", permissions="r",
                         start=10, expiry=10)

    def test_key_base64_roundtrip(self, key):
        import base64
        assert base64.b64decode(key.base64) == key.secret


class TestAuthorization:
    def make(self, key, **kw):
        args = dict(container="docs", blob="report", permissions="r",
                    start=0, expiry=100)
        args.update(kw)
        return generate_sas(key, **args)

    def test_expired_token(self, key):
        token = self.make(key)
        with pytest.raises(SasError, match="valid"):
            token.authorize(key, container="docs", blob="report",
                            permission="r", now=100)

    def test_not_yet_valid(self, key):
        token = self.make(key, start=50)
        with pytest.raises(SasError):
            token.authorize(key, container="docs", blob="report",
                            permission="r", now=10)

    def test_missing_permission(self, key):
        token = self.make(key, permissions="r")
        with pytest.raises(SasError, match="permission"):
            token.authorize(key, container="docs", blob="report",
                            permission="w", now=10)

    def test_wrong_blob(self, key):
        token = self.make(key)
        with pytest.raises(SasError, match="scoped"):
            token.authorize(key, container="docs", blob="other",
                            permission="r", now=10)

    def test_container_token_covers_blobs(self, key):
        token = self.make(key, blob=None, permissions="rl")
        token.authorize(key, container="docs", blob="anything",
                        permission="r", now=10)
        token.authorize(key, container="docs", blob=None,
                        permission="l", now=10)
        with pytest.raises(SasError):
            token.authorize(key, container="pics", blob="x",
                            permission="r", now=10)

    def test_tampered_permissions_fail(self, key):
        token = self.make(key, permissions="r")
        forged = dataclasses.replace(token, permissions="rwdl")
        with pytest.raises(SasError, match="signature"):
            forged.authorize(key, container="docs", blob="report",
                             permission="w", now=10)

    def test_tampered_expiry_fails(self, key):
        token = self.make(key, expiry=100)
        forged = dataclasses.replace(token, expiry=10_000)
        with pytest.raises(SasError, match="signature"):
            forged.authorize(key, container="docs", blob="report",
                             permission="r", now=500)

    def test_key_rotation_revokes(self, key):
        token = self.make(key)
        rotated = AccountKey.generate("testaccount", name="key1")
        with pytest.raises(SasError, match="signature"):
            token.authorize(rotated, container="docs", blob="report",
                            permission="r", now=10)

    def test_wrong_key_name(self, key):
        token = self.make(key)
        key2 = AccountKey("testaccount", "key2", key.secret)
        with pytest.raises(SasError, match="unknown key"):
            token.authorize(key2, container="docs", blob="report",
                            permission="r", now=10)


class TestAuthorizedBlobClient:
    def test_read_only_client(self, account, key, clock):
        token = generate_sas(key, container="docs", blob="report",
                             permissions="r", start=0, expiry=10_000)
        client = AuthorizedBlobClient(account, token, key)
        assert client.download_block_blob("docs", "report").to_bytes() \
            == b"secret contents"
        with pytest.raises(SasError):
            client.upload_blob("docs", "report", b"overwrite!")
        with pytest.raises(SasError):
            client.delete_blob("docs", "report")

    def test_container_rwdl_client(self, account, key):
        token = generate_sas(key, container="docs", permissions="rwdl",
                             start=0, expiry=10_000)
        client = AuthorizedBlobClient(account, token, key)
        client.put_block("docs", "new", "b1", b"data")
        client.put_block_list("docs", "new", ["b1"])
        assert client.download_block_blob("docs", "new").to_bytes() == b"data"
        assert "new" in client.list_blobs("docs")
        client.delete_blob("docs", "new")

    def test_token_expires_with_clock(self, account, key, clock):
        token = generate_sas(key, container="docs", blob="report",
                             permissions="r", start=0, expiry=clock.now() + 5)
        client = AuthorizedBlobClient(account, token, key)
        client.download_block_blob("docs", "report")  # fine now
        clock.advance(5)
        with pytest.raises(SasError):
            client.download_block_blob("docs", "report")

    def test_scope_does_not_leak_across_containers(self, account, key):
        account.blob_client().create_container("pics")
        account.blob_client().upload_blob("pics", "cat", b"meow")
        token = generate_sas(key, container="docs", permissions="rwdl",
                             start=0, expiry=10_000)
        client = AuthorizedBlobClient(account, token, key)
        with pytest.raises(SasError):
            client.download_block_blob("pics", "cat")
