"""Tests for 2012-era blob leases (exclusive write locks)."""

import pytest

from repro.storage import (
    LeaseConflictError,
    ManualClock,
    StorageAccountState,
)


@pytest.fixture
def clock():
    return ManualClock()


@pytest.fixture
def blob(clock):
    account = StorageAccountState("leaseacct", clock)
    container = account.blobs.create_container("cont")
    b = container.create_block_blob("locked")
    b.put_block("b1", b"data")
    b.put_block_list(["b1"])
    return b


class TestLeaseLifecycle:
    def test_acquire_release(self, blob):
        lease = blob.acquire_lease()
        assert blob.lease_state == "leased"
        blob.release_lease(lease)
        assert blob.lease_state == "available"

    def test_double_acquire_conflicts(self, blob):
        blob.acquire_lease()
        with pytest.raises(LeaseConflictError):
            blob.acquire_lease()

    def test_lease_expires_after_minute(self, blob, clock):
        blob.acquire_lease()
        clock.advance(60)
        assert blob.lease_state == "available"
        blob.acquire_lease()  # re-acquirable

    def test_renew_extends(self, blob, clock):
        lease = blob.acquire_lease()
        clock.advance(50)
        blob.renew_lease(lease)
        clock.advance(50)
        assert blob.lease_state == "leased"

    def test_renew_wrong_id(self, blob):
        blob.acquire_lease()
        with pytest.raises(LeaseConflictError):
            blob.renew_lease("bogus")

    def test_release_wrong_id(self, blob):
        blob.acquire_lease()
        with pytest.raises(LeaseConflictError):
            blob.release_lease("bogus")

    def test_break_lease(self, blob):
        blob.acquire_lease()
        blob.break_lease()
        assert blob.lease_state == "available"
        blob.break_lease()  # idempotent


class TestLeaseEnforcement:
    def test_staging_without_lease_id_rejected(self, blob):
        blob.acquire_lease()
        with pytest.raises(LeaseConflictError):
            blob.put_block("b2", b"more")

    def test_mutators_rejected_while_leased(self, blob):
        blob.acquire_lease()
        with pytest.raises(LeaseConflictError):
            blob.put_block_list(["b1"])
        with pytest.raises(LeaseConflictError):
            blob.upload(b"replacement")

    def test_mutators_allowed_with_lease_id(self, blob):
        lease = blob.acquire_lease()
        blob.put_block("b2", b"more", lease_id=lease)
        blob.put_block_list(["b1", "b2"], lease_id=lease)
        assert blob.download().to_bytes() == b"datamore"

    def test_reads_unaffected_by_lease(self, blob):
        blob.acquire_lease()
        assert blob.download().to_bytes() == b"data"
        assert blob.get_block(0).to_bytes() == b"data"

    def test_writes_allowed_after_expiry(self, blob, clock):
        blob.acquire_lease()
        clock.advance(60)
        blob.upload(b"new owner")  # no lease id needed anymore

    def test_delete_blob_respects_lease(self, clock):
        account = StorageAccountState("leaseacct", clock)
        container = account.blobs.create_container("cont")
        b = container.create_block_blob("locked")
        lease = b.acquire_lease()
        with pytest.raises(LeaseConflictError):
            container.delete_blob("locked")
        container.delete_blob("locked", lease_id=lease)

    def test_page_blob_lease(self, clock):
        account = StorageAccountState("leaseacct", clock)
        container = account.blobs.create_container("cont")
        p = container.create_page_blob("pages", 4096)
        lease = p.acquire_lease()
        with pytest.raises(LeaseConflictError):
            p.put_pages(0, b"x" * 512)
        p.put_pages(0, b"x" * 512, lease_id=lease)
        with pytest.raises(LeaseConflictError):
            p.clear_pages(0, 512)
        p.clear_pages(0, 512, lease_id=lease)


class TestLeaderElection:
    def test_lease_as_leader_lock(self, clock):
        """The classic Azure pattern: whoever holds the lease is leader."""
        account = StorageAccountState("leaseacct", clock)
        container = account.blobs.create_container("cont")
        lock_blob = container.create_block_blob("leader-lock")

        lease_a = lock_blob.acquire_lease()     # A becomes leader
        with pytest.raises(LeaseConflictError):
            lock_blob.acquire_lease()           # B cannot

        clock.advance(59)
        lock_blob.renew_lease(lease_a)          # A heartbeats
        clock.advance(59)
        assert lock_blob.lease_state == "leased"

        clock.advance(1)                        # A dies; lease lapses
        lease_b = lock_blob.acquire_lease()     # B takes over
        assert lease_b != lease_a