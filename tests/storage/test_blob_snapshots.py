"""Tests for blob snapshots (immutable point-in-time copies)."""

import pytest

from repro.storage import (
    BlobNotFoundError,
    BytesContent,
    InvalidOperationError,
    ManualClock,
    StorageAccountState,
)


@pytest.fixture
def clock():
    return ManualClock()


@pytest.fixture
def container(clock):
    account = StorageAccountState("snapacct", clock)
    return account.blobs.create_container("cont")


class TestBlockBlobSnapshots:
    def test_snapshot_preserves_content(self, container, clock):
        b = container.create_block_blob("doc")
        b.upload(b"version 1")
        snap = b.snapshot()
        clock.advance(1)
        b.upload(b"version 2 is longer")
        assert b.download().to_bytes() == b"version 2 is longer"
        assert snap.download().to_bytes() == b"version 1"
        assert snap.size == 9

    def test_snapshot_survives_recommit(self, container):
        b = container.create_block_blob("doc")
        b.put_block("b1", b"AAA")
        b.put_block("b2", b"BBB")
        b.put_block_list(["b1", "b2"])
        snap = b.snapshot()
        b.put_block("b3", b"CCC")
        b.put_block_list(["b3"])
        assert snap.download().to_bytes() == b"AAABBB"
        assert b.download().to_bytes() == b"CCC"

    def test_multiple_snapshots_ordered(self, container, clock):
        b = container.create_block_blob("doc")
        for i in range(3):
            b.upload(f"v{i}".encode())
            b.snapshot()
            clock.advance(1)
        snaps = b.list_snapshots()
        assert len(snaps) == 3
        assert [s.download().to_bytes() for s in snaps] == [b"v0", b"v1", b"v2"]
        assert snaps[0].taken_at < snaps[2].taken_at

    def test_read_range(self, container):
        b = container.create_block_blob("doc")
        b.upload(b"0123456789")
        snap = b.snapshot()
        assert snap.read_range(3, 4).to_bytes() == b"3456"
        with pytest.raises(Exception):
            snap.read_range(8, 5)

    def test_get_and_delete_snapshot(self, container):
        b = container.create_block_blob("doc")
        b.upload(b"x")
        snap = b.snapshot()
        assert b.get_snapshot(snap.snapshot_id) is snap
        b.delete_snapshot(snap.snapshot_id)
        with pytest.raises(BlobNotFoundError):
            b.get_snapshot(snap.snapshot_id)


class TestPageBlobSnapshots:
    def test_snapshot_freezes_pages(self, container):
        p = container.create_page_blob("disk", 2048)
        p.put_pages(0, BytesContent(b"a" * 512))
        snap = p.snapshot()
        p.put_pages(0, BytesContent(b"b" * 512))
        p.put_pages(512, BytesContent(b"c" * 512))
        assert snap.download().to_bytes() == b"a" * 512 + bytes(1536)
        assert p.read(0, 1024).to_bytes() == b"b" * 512 + b"c" * 512

    def test_snapshot_of_sparse_blob(self, container):
        p = container.create_page_blob("disk", 1024)
        snap = p.snapshot()
        assert snap.download().to_bytes() == bytes(1024)


class TestDeleteSemantics:
    def test_delete_requires_flag_with_snapshots(self, container):
        b = container.create_block_blob("doc")
        b.upload(b"x")
        b.snapshot()
        with pytest.raises(InvalidOperationError):
            container.delete_blob("doc")
        container.delete_blob("doc", delete_snapshots=True)
        with pytest.raises(BlobNotFoundError):
            container.get_blob("doc")

    def test_delete_without_snapshots_unaffected(self, container):
        b = container.create_block_blob("doc")
        b.upload(b"x")
        container.delete_blob("doc")  # no flag needed

    def test_usage_accounting_unaffected_by_snapshots(self, container):
        account = container._service._account
        b = container.create_block_blob("doc")
        b.upload(b"x" * 100)
        before = account.bytes_used
        b.snapshot()
        # Documented simplification: snapshots are not charged.
        assert account.bytes_used == before
        assert account.recompute_usage() == account.bytes_used
