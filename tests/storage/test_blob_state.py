"""Unit tests for the blob data plane: block blobs, page blobs, containers."""

import pytest

from repro.storage import (
    BlobNotFoundError,
    BlockNotFoundError,
    BlockTooLargeError,
    BytesContent,
    ContainerNotFoundError,
    InvalidOperationError,
    InvalidPageRangeError,
    MB,
    ManualClock,
    OutOfRangeError,
    PayloadTooLargeError,
    ResourceExistsError,
    StorageAccountState,
    SyntheticContent,
    TooManyBlocksError,
)


@pytest.fixture
def account():
    return StorageAccountState("testaccount", ManualClock())


@pytest.fixture
def container(account):
    return account.blobs.create_container("bench")


class TestContainers:
    def test_create_idempotent(self, account):
        c1 = account.blobs.create_container("abc")
        c2 = account.blobs.create_container("abc")
        assert c1 is c2

    def test_create_fail_on_exist(self, account):
        account.blobs.create_container("abc")
        with pytest.raises(ResourceExistsError):
            account.blobs.create_container("abc", fail_on_exist=True)

    def test_get_missing_raises(self, account):
        with pytest.raises(ContainerNotFoundError):
            account.blobs.get_container("nope")

    def test_delete(self, account):
        account.blobs.create_container("abc")
        account.blobs.delete_container("abc")
        with pytest.raises(ContainerNotFoundError):
            account.blobs.get_container("abc")

    def test_list_with_prefix(self, account):
        for name in ("aaa", "aab", "bbb"):
            account.blobs.create_container(name)
        assert account.blobs.list_containers("aa") == ["aaa", "aab"]
        assert account.blobs.list_containers() == ["aaa", "aab", "bbb"]

    def test_delete_container_releases_usage(self, account):
        c = account.blobs.create_container("abc")
        b = c.create_block_blob("x")
        b.put_block("b1", b"data")
        b.put_block_list(["b1"])
        assert account.bytes_used > 0
        account.blobs.delete_container("abc")
        assert account.bytes_used == 0


class TestBlockBlob:
    def test_two_phase_upload(self, container):
        b = container.create_block_blob("blob")
        b.put_block("b1", b"hello ")
        b.put_block("b2", b"world")
        assert b.size == 0  # nothing committed yet
        b.put_block_list(["b1", "b2"])
        assert b.size == 11
        assert b.download().to_bytes() == b"hello world"

    def test_commit_order_matters(self, container):
        b = container.create_block_blob("blob")
        b.put_block("b1", b"AA")
        b.put_block("b2", b"BB")
        b.put_block_list(["b2", "b1"])
        assert b.download().to_bytes() == b"BBAA"

    def test_restage_replaces_block(self, container):
        b = container.create_block_blob("blob")
        b.put_block("b1", b"old")
        b.put_block("b1", b"new")
        b.put_block_list(["b1"])
        assert b.download().to_bytes() == b"new"

    def test_commit_unknown_block_raises(self, container):
        b = container.create_block_blob("blob")
        with pytest.raises(BlockNotFoundError):
            b.put_block_list(["ghost"])

    def test_recommit_committed_blocks(self, container):
        b = container.create_block_blob("blob")
        b.put_block("b1", b"one")
        b.put_block_list(["b1"])
        b.put_block("b2", b"two")
        b.put_block_list(["b1", "b2"])  # b1 from committed, b2 staged
        assert b.download().to_bytes() == b"onetwo"

    def test_merge_commit_appends(self, container):
        b = container.create_block_blob("blob")
        b.put_block("b1", b"one")
        b.put_block_list(["b1"])
        b.put_block("b2", b"two")
        b.put_block_list(["b2"], merge=True)
        assert b.download().to_bytes() == b"onetwo"
        assert b.block_ids() == ["b1", "b2"]

    def test_merge_commit_keeps_other_staged(self, container):
        b = container.create_block_blob("blob")
        b.put_block("mine", b"A")
        b.put_block("other", b"B")
        b.put_block_list(["mine"], merge=True)
        # "other" stays staged (documented deviation for multi-writer runs).
        b.put_block_list(["other"], merge=True)
        assert b.download().to_bytes() == b"AB"

    def test_block_size_limit(self, container):
        b = container.create_block_blob("blob")
        with pytest.raises(BlockTooLargeError):
            b.put_block("big", SyntheticContent(4 * MB + 1, seed=0))

    def test_empty_block_rejected(self, container):
        b = container.create_block_blob("blob")
        with pytest.raises(InvalidOperationError):
            b.put_block("b", b"")

    def test_block_count_limit(self, container):
        limits = container._service.limits.with_overrides(max_blocks_per_blob=3)
        container._service.limits = limits
        b = container.create_block_blob("blob")
        for i in range(4):
            b.put_block(f"b{i}", b"x")
        with pytest.raises(TooManyBlocksError):
            b.put_block_list([f"b{i}" for i in range(4)])

    def test_invalid_block_id(self, container):
        b = container.create_block_blob("blob")
        with pytest.raises(BlockNotFoundError):
            b.put_block("", b"x")
        with pytest.raises(BlockNotFoundError):
            b.put_block("x" * 65, b"x")

    def test_single_shot_upload(self, container):
        b = container.create_block_blob("blob")
        b.upload(b"payload")
        assert b.download().to_bytes() == b"payload"
        assert b.block_count == 1

    def test_single_shot_size_limit(self, container):
        b = container.create_block_blob("blob")
        with pytest.raises(PayloadTooLargeError):
            b.upload(SyntheticContent(64 * MB + 1, seed=0))

    def test_get_block_by_index_and_id(self, container):
        b = container.create_block_blob("blob")
        b.put_block("b1", b"AA")
        b.put_block("b2", b"BB")
        b.put_block_list(["b1", "b2"])
        assert b.get_block(0).to_bytes() == b"AA"
        assert b.get_block_by_id("b2").to_bytes() == b"BB"
        with pytest.raises(OutOfRangeError):
            b.get_block(2)
        with pytest.raises(BlockNotFoundError):
            b.get_block_by_id("nope")

    def test_read_range(self, container):
        b = container.create_block_blob("blob")
        b.put_block("b1", b"abcd")
        b.put_block("b2", b"efgh")
        b.put_block_list(["b1", "b2"])
        assert b.read_range(2, 4).to_bytes() == b"cdef"
        with pytest.raises(OutOfRangeError):
            b.read_range(6, 4)

    def test_etag_changes_on_commit(self, container):
        b = container.create_block_blob("blob")
        tag0 = b.etag
        b.put_block("b1", b"x")
        assert b.etag == tag0  # staging does not change the etag
        b.put_block_list(["b1"])
        assert b.etag != tag0

    def test_properties_snapshot(self, container):
        b = container.create_block_blob("blob")
        b.upload(b"xyz")
        props = b.properties()
        assert props.blob_type == "BlockBlob"
        assert props.size == 3
        assert props.container == "bench"

    def test_partition_key(self, container):
        b = container.create_block_blob("blob")
        assert b.partition_key() == "bench/blob"


class TestPageBlob:
    def test_creation_validation(self, container):
        with pytest.raises(InvalidPageRangeError):
            container.create_page_blob("p", 100)  # not 512-aligned
        with pytest.raises(InvalidPageRangeError):
            container.create_page_blob("p", 0)
        with pytest.raises(PayloadTooLargeError):
            container.create_page_blob("p", 2 * 1024 * 1024 * MB)

    def test_write_read_roundtrip(self, container):
        p = container.create_page_blob("p", 1 * MB)
        p.put_pages(512, BytesContent(b"a" * 512))
        assert p.read(512, 512).to_bytes() == b"a" * 512

    def test_unwritten_reads_zero(self, container):
        p = container.create_page_blob("p", 1 * MB)
        assert p.read(0, 1024).to_bytes() == bytes(1024)

    def test_unaligned_write_rejected(self, container):
        p = container.create_page_blob("p", 1 * MB)
        with pytest.raises(InvalidPageRangeError):
            p.put_pages(100, BytesContent(b"a" * 512))
        with pytest.raises(InvalidPageRangeError):
            p.put_pages(512, BytesContent(b"a" * 100))

    def test_write_beyond_end_rejected(self, container):
        p = container.create_page_blob("p", 1024)
        with pytest.raises(InvalidPageRangeError):
            p.put_pages(1024, BytesContent(b"a" * 512))

    def test_oversized_write_rejected(self, container):
        p = container.create_page_blob("p", 8 * MB)
        with pytest.raises(InvalidPageRangeError):
            p.put_pages(0, SyntheticContent(4 * MB + 512, seed=0))

    def test_overwrite_splits_ranges(self, container):
        p = container.create_page_blob("p", 1 * MB)
        p.put_pages(0, BytesContent(b"a" * 2048))
        p.put_pages(512, BytesContent(b"b" * 512))
        assert p.read(0, 2048).to_bytes() == \
            b"a" * 512 + b"b" * 512 + b"a" * 1024
        assert p.written_bytes == 2048

    def test_adjacent_writes(self, container):
        p = container.create_page_blob("p", 1 * MB)
        p.put_pages(0, BytesContent(b"x" * 512))
        p.put_pages(512, BytesContent(b"y" * 512))
        assert p.read(0, 1024).to_bytes() == b"x" * 512 + b"y" * 512
        assert p.get_page_ranges() == [(0, 512), (512, 1024)]

    def test_clear_pages(self, container):
        p = container.create_page_blob("p", 1 * MB)
        p.put_pages(0, BytesContent(b"x" * 2048))
        p.clear_pages(512, 1024)
        assert p.read(0, 2048).to_bytes() == \
            b"x" * 512 + bytes(1024) + b"x" * 512
        assert p.written_bytes == 1024

    def test_read_all(self, container):
        p = container.create_page_blob("p", 1024)
        p.put_pages(512, BytesContent(b"z" * 512))
        data = p.read_all().to_bytes()
        assert data == bytes(512) + b"z" * 512
        assert p.size == 1024

    def test_gap_between_ranges(self, container):
        p = container.create_page_blob("p", 1 * MB)
        p.put_pages(0, BytesContent(b"a" * 512))
        p.put_pages(2048, BytesContent(b"b" * 512))
        got = p.read(0, 2560).to_bytes()
        assert got == b"a" * 512 + bytes(1536) + b"b" * 512


class TestContainerBlobOps:
    def test_get_missing_blob(self, container):
        with pytest.raises(BlobNotFoundError):
            container.get_blob("ghost")

    def test_type_mismatch(self, container):
        container.create_block_blob("bb")
        container.create_page_blob("pb", 512)
        with pytest.raises(InvalidOperationError):
            container.get_page_blob("bb")
        with pytest.raises(InvalidOperationError):
            container.get_block_blob("pb")

    def test_overwrite_semantics(self, container):
        b = container.create_block_blob("x")
        b.upload(b"data")
        container.create_block_blob("x")  # overwrite allowed by default
        assert container.get_block_blob("x").size == 0
        with pytest.raises(ResourceExistsError):
            container.create_block_blob("x", overwrite=False)

    def test_delete_blob(self, container, account):
        b = container.create_block_blob("x")
        b.upload(b"1234")
        assert account.bytes_used == 4
        container.delete_blob("x")
        assert account.bytes_used == 0
        with pytest.raises(BlobNotFoundError):
            container.get_blob("x")

    def test_list_blobs(self, container):
        container.create_block_blob("a1")
        container.create_block_blob("a2")
        container.create_page_blob("b1", 512)
        assert container.list_blobs() == ["a1", "a2", "b1"]
        assert container.list_blobs(prefix="a") == ["a1", "a2"]
        assert len(container) == 3
        assert "a1" in container


class TestUsageAccounting:
    def test_block_blob_usage(self, account, container):
        b = container.create_block_blob("x")
        b.put_block("b1", b"a" * 100)
        assert account.bytes_used == 0  # uncommitted not counted
        b.put_block_list(["b1"])
        assert account.bytes_used == 100
        assert account.recompute_usage() == account.bytes_used

    def test_page_blob_overwrite_not_double_counted(self, account, container):
        p = container.create_page_blob("p", 1 * MB)
        p.put_pages(0, BytesContent(b"a" * 1024))
        p.put_pages(512, BytesContent(b"b" * 1024))  # overlaps 512 bytes
        assert account.bytes_used == 1536
        assert account.recompute_usage() == account.bytes_used

    def test_recommit_shrinking_blob(self, account, container):
        b = container.create_block_blob("x")
        b.put_block("b1", b"a" * 100)
        b.put_block("b2", b"b" * 50)
        b.put_block_list(["b1", "b2"])
        assert account.bytes_used == 150
        b.put_block("b3", b"c" * 10)
        b.put_block_list(["b3"])
        assert account.bytes_used == 10
        assert account.recompute_usage() == account.bytes_used


class TestBlobMetadata:
    def test_set_and_read_via_properties(self, container):
        b = container.create_block_blob("meta")
        b.set_metadata({"author": "dinesh", "stage": "upload"})
        props = b.properties()
        assert props.metadata == {"author": "dinesh", "stage": "upload"}

    def test_set_replaces_entirely(self, container):
        b = container.create_block_blob("meta")
        b.set_metadata({"a": "1"})
        b.set_metadata({"b": "2"})
        assert b.properties().metadata == {"b": "2"}

    def test_changes_etag(self, container):
        b = container.create_block_blob("meta")
        before = b.etag
        b.set_metadata({"a": "1"})
        assert b.etag != before

    def test_validation(self, container):
        b = container.create_block_blob("meta")
        with pytest.raises(InvalidOperationError):
            b.set_metadata({"1bad": "x"})
        with pytest.raises(InvalidOperationError):
            b.set_metadata({"ok": 5})
        with pytest.raises(InvalidOperationError):
            b.set_metadata({"": "x"})

    def test_respects_lease(self, container):
        from repro.storage import LeaseConflictError
        b = container.create_block_blob("meta")
        lease = b.acquire_lease()
        with pytest.raises(LeaseConflictError):
            b.set_metadata({"a": "1"})
        b.set_metadata({"a": "1"}, lease_id=lease)

    def test_properties_metadata_is_a_copy(self, container):
        b = container.create_block_blob("meta")
        b.set_metadata({"a": "1"})
        props = b.properties()
        props.metadata["a"] = "mutated"
        assert b.properties().metadata == {"a": "1"}
