"""Unit tests for the caching-service data plane."""

import pytest

from repro.storage import (
    InvalidOperationError,
    KB,
    ManualClock,
    ResourceExistsError,
    ResourceNotFoundError,
)
from repro.storage.cache import CacheServiceState


@pytest.fixture
def clock():
    return ManualClock()


@pytest.fixture
def service(clock):
    return CacheServiceState(clock)


@pytest.fixture
def cache(service):
    return service.create_cache("hot", capacity_bytes=10 * KB,
                                default_ttl=100.0)


class TestCacheManagement:
    def test_create_idempotent(self, service):
        assert service.create_cache("a1b") is service.create_cache("a1b")

    def test_fail_on_exist(self, service):
        service.create_cache("a1b")
        with pytest.raises(ResourceExistsError):
            service.create_cache("a1b", fail_on_exist=True)

    def test_get_missing(self, service):
        with pytest.raises(ResourceNotFoundError):
            service.get_cache("ghost")

    def test_delete_and_list(self, service):
        service.create_cache("one")
        service.create_cache("two")
        service.delete_cache("one")
        assert service.list_caches() == ["two"]

    def test_validation(self, service):
        with pytest.raises(InvalidOperationError):
            service.create_cache("bad", capacity_bytes=0)
        with pytest.raises(InvalidOperationError):
            service.create_cache("bad", default_ttl=0)


class TestPutGet:
    def test_roundtrip(self, cache):
        cache.put("k", b"value")
        assert cache.get("k").value.to_bytes() == b"value"

    def test_miss_returns_none(self, cache):
        assert cache.get("ghost") is None

    def test_put_replaces(self, cache):
        cache.put("k", b"old")
        cache.put("k", b"new")
        assert cache.get("k").value.to_bytes() == b"new"
        assert cache.item_count == 1

    def test_add_fails_on_present(self, cache):
        cache.add("k", b"v")
        with pytest.raises(ResourceExistsError):
            cache.add("k", b"w")

    def test_add_succeeds_after_expiry(self, cache, clock):
        cache.add("k", b"v", ttl=10)
        clock.advance(10)
        cache.add("k", b"w")  # expired, so add is legal
        assert cache.get("k").value.to_bytes() == b"w"

    def test_versions_increase(self, cache):
        v1 = cache.put("k", b"a").version
        v2 = cache.put("k", b"b").version
        assert v2 > v1

    def test_item_too_big(self, cache):
        with pytest.raises(InvalidOperationError):
            cache.put("k", b"x" * (11 * KB))

    def test_remove(self, cache):
        cache.put("k", b"v")
        assert cache.remove("k") is True
        assert cache.remove("k") is False
        assert cache.get("k") is None

    def test_clear(self, cache):
        cache.put("a", b"1")
        cache.put("b", b"2")
        cache.clear()
        assert cache.item_count == 0 and cache.bytes_used == 0


class TestExpiry:
    def test_absolute_ttl(self, cache, clock):
        cache.put("k", b"v", ttl=50)
        clock.advance(49)
        assert cache.get("k") is not None
        clock.advance(1)
        assert cache.get("k") is None
        assert cache.stats.expirations == 1

    def test_default_ttl(self, cache, clock):
        cache.put("k", b"v")  # default_ttl=100
        clock.advance(100)
        assert cache.get("k") is None

    def test_sliding_ttl_renews_on_get(self, cache, clock):
        cache.put("k", b"v", ttl=50, sliding=True)
        for _ in range(5):
            clock.advance(40)
            assert cache.get("k") is not None  # each get renews
        clock.advance(50)
        assert cache.get("k") is None

    def test_contains_does_not_renew(self, cache, clock):
        cache.put("k", b"v", ttl=50, sliding=True)
        clock.advance(40)
        assert cache.contains("k")
        clock.advance(40)  # 80 total: contains did not renew
        assert not cache.contains("k")


class TestEviction:
    def test_lru_eviction(self, cache):
        # capacity 10 KB; three 4 KB items force one eviction.
        cache.put("a", b"x" * (4 * KB))
        cache.put("b", b"x" * (4 * KB))
        cache.get("a")  # touch a -> b becomes LRU
        cache.put("c", b"x" * (4 * KB))
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        assert cache.stats.evictions == 1

    def test_bytes_accounting(self, cache):
        cache.put("a", b"x" * 1000)
        cache.put("b", b"y" * 500)
        assert cache.bytes_used == 1500
        cache.remove("a")
        assert cache.bytes_used == 500

    def test_keys_lru_order(self, cache):
        cache.put("a", b"1")
        cache.put("b", b"2")
        cache.get("a")
        assert cache.keys() == ["b", "a"]


class TestStats:
    def test_hit_rate(self, cache):
        cache.put("k", b"v")
        cache.get("k")
        cache.get("k")
        cache.get("ghost")
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_empty_hit_rate(self, cache):
        assert cache.stats.hit_rate == 0.0
