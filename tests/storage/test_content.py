"""Unit + property tests for the content model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import (
    BytesContent,
    CompositeContent,
    OutOfRangeError,
    SyntheticContent,
    ZeroContent,
    as_content,
    concat,
    random_content,
)


class TestBytesContent:
    def test_roundtrip(self):
        c = BytesContent(b"hello world")
        assert c.size == 11
        assert c.to_bytes() == b"hello world"

    def test_slice(self):
        c = BytesContent(b"hello world")
        assert c.slice(6, 11).to_bytes() == b"world"

    def test_slice_out_of_range(self):
        c = BytesContent(b"abc")
        with pytest.raises(OutOfRangeError):
            c.slice(0, 4)
        with pytest.raises(OutOfRangeError):
            c.slice(2, 1)

    def test_len_and_eq(self):
        assert len(BytesContent(b"abc")) == 3
        assert BytesContent(b"abc") == BytesContent(b"abc")
        assert BytesContent(b"abc") != BytesContent(b"abd")

    def test_accepts_bytearray_and_memoryview(self):
        assert BytesContent(bytearray(b"xy")).to_bytes() == b"xy"
        assert BytesContent(memoryview(b"xy")).to_bytes() == b"xy"


class TestSyntheticContent:
    def test_deterministic(self):
        a = SyntheticContent(1000, seed=7)
        b = SyntheticContent(1000, seed=7)
        assert a.to_bytes() == b.to_bytes()

    def test_seed_changes_bytes(self):
        a = SyntheticContent(1000, seed=7)
        b = SyntheticContent(1000, seed=8)
        assert a.to_bytes() != b.to_bytes()

    def test_slice_commutes_with_materialize(self):
        c = SyntheticContent(4096, seed=3)
        full = c.to_bytes()
        assert c.slice(100, 200).to_bytes() == full[100:200]
        assert c.slice(0, 4096).to_bytes() == full

    def test_nested_slices(self):
        c = SyntheticContent(4096, seed=3)
        full = c.to_bytes()
        assert c.slice(1000, 3000).slice(500, 600).to_bytes() == full[1500:1600]

    def test_looks_random(self):
        """Byte histogram must be roughly uniform (no stuck generator)."""
        data = SyntheticContent(1 << 16, seed=0).to_bytes()
        counts = [0] * 256
        for b in data:
            counts[b] += 1
        expected = len(data) / 256
        assert min(counts) > expected * 0.5
        assert max(counts) < expected * 1.5

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            SyntheticContent(-1)

    def test_zero_size(self):
        assert SyntheticContent(0).to_bytes() == b""

    def test_random_content_helper(self):
        c = random_content(128, seed=5)
        assert isinstance(c, SyntheticContent) and c.size == 128

    @given(seed=st.integers(0, 2**63), origin=st.integers(0, 2**40),
           size=st.integers(0, 2048),
           a=st.integers(0, 2048), b=st.integers(0, 2048))
    @settings(max_examples=60, deadline=None)
    def test_property_slice_equals_byteslice(self, seed, origin, size, a, b):
        lo, hi = sorted((min(a, size), min(b, size)))
        c = SyntheticContent(size, seed=seed, origin=origin)
        assert c.slice(lo, hi).to_bytes() == c.to_bytes()[lo:hi]


class TestZeroContent:
    def test_zeros(self):
        z = ZeroContent(10)
        assert z.to_bytes() == bytes(10)
        assert z.slice(2, 5).to_bytes() == bytes(3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ZeroContent(-1)


class TestComposite:
    def test_concat_bytes(self):
        c = concat([BytesContent(b"ab"), BytesContent(b"cd"), BytesContent(b"ef")])
        assert c.to_bytes() == b"abcdef"

    def test_concat_empty(self):
        assert concat([]).to_bytes() == b""
        assert concat([BytesContent(b"")]).to_bytes() == b""

    def test_concat_single_passthrough(self):
        single = BytesContent(b"x")
        assert concat([single]) is single

    def test_composite_slice_spanning_parts(self):
        c = concat([BytesContent(b"abcd"), BytesContent(b"efgh"),
                    BytesContent(b"ijkl")])
        assert c.slice(2, 10).to_bytes() == b"cdefghij"

    def test_composite_slice_within_one_part(self):
        c = concat([BytesContent(b"abcd"), BytesContent(b"efgh")])
        s = c.slice(5, 7)
        assert s.to_bytes() == b"fg"

    def test_composite_flattens_nested(self):
        inner = concat([BytesContent(b"ab"), BytesContent(b"cd")])
        outer = CompositeContent([inner, BytesContent(b"ef")])
        assert len(outer.parts) == 3
        assert outer.to_bytes() == b"abcdef"

    def test_mixed_kinds(self):
        c = concat([SyntheticContent(16, seed=1), ZeroContent(4),
                    BytesContent(b"tail")])
        expected = SyntheticContent(16, seed=1).to_bytes() + bytes(4) + b"tail"
        assert c.to_bytes() == expected
        assert c.slice(14, 22).to_bytes() == expected[14:22]

    @given(parts=st.lists(st.binary(min_size=0, max_size=32), max_size=8),
           a=st.integers(0, 300), b=st.integers(0, 300))
    @settings(max_examples=60, deadline=None)
    def test_property_composite_slice(self, parts, a, b):
        joined = b"".join(parts)
        c = concat([BytesContent(p) for p in parts])
        lo, hi = sorted((min(a, len(joined)), min(b, len(joined))))
        assert c.slice(lo, hi).to_bytes() == joined[lo:hi]


class TestAsContent:
    def test_passthrough(self):
        c = BytesContent(b"x")
        assert as_content(c) is c

    def test_bytes(self):
        assert as_content(b"ab").to_bytes() == b"ab"

    def test_str_utf8(self):
        assert as_content("héllo").to_bytes() == "héllo".encode("utf-8")

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            as_content(123)
