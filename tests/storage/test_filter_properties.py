"""Property-based tests: the filter parser vs a reference evaluator.

Random filter ASTs are rendered to OData-style strings, parsed back, and
evaluated against random entities; the parsed predicate must agree with
direct AST evaluation — a full round-trip oracle for the grammar.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.table.entity import Entity
from repro.storage.table.filters import parse_filter

_PROPS = ["Alpha", "Beta", "Gamma"]
_OPS = ["eq", "ne", "gt", "ge", "lt", "le"]
_MISSING = object()


# -- AST ---------------------------------------------------------------------

def cmp_nodes():
    literals = st.one_of(
        st.integers(-20, 20),
        st.text(alphabet="abcxyz'", max_size=4),
        st.booleans(),
    )
    return st.tuples(st.just("cmp"), st.sampled_from(_PROPS),
                     st.sampled_from(_OPS), literals)


def ast_nodes():
    return st.recursive(
        cmp_nodes(),
        lambda children: st.one_of(
            st.tuples(st.just("and"), children, children),
            st.tuples(st.just("or"), children, children),
            st.tuples(st.just("not"), children),
        ),
        max_leaves=8,
    )


def render(node) -> str:
    kind = node[0]
    if kind == "cmp":
        _, name, op, lit = node
        if isinstance(lit, bool):
            lit_s = "true" if lit else "false"
        elif isinstance(lit, str):
            lit_s = "'" + lit.replace("'", "''") + "'"
        else:
            lit_s = str(lit)
        return f"{name} {op} {lit_s}"
    if kind == "not":
        return f"not ({render(node[1])})"
    _, left, right = node
    return f"({render(left)}) {kind} ({render(right)})"


def evaluate(node, entity) -> bool:
    kind = node[0]
    if kind == "cmp":
        _, name, op, lit = node
        value = entity.get(name, _MISSING)
        if value is _MISSING:
            return False
        try:
            if op == "eq":
                return value == lit
            if op == "ne":
                return value != lit
            if op == "gt":
                return value > lit
            if op == "ge":
                return value >= lit
            if op == "lt":
                return value < lit
            return value <= lit
        except TypeError:
            return False
    if kind == "not":
        return not evaluate(node[1], entity)
    if kind == "and":
        return evaluate(node[1], entity) and evaluate(node[2], entity)
    return evaluate(node[1], entity) or evaluate(node[2], entity)


def entities():
    values = st.one_of(st.integers(-20, 20),
                       st.text(alphabet="abcxyz'", max_size=4),
                       st.booleans())
    return st.dictionaries(st.sampled_from(_PROPS), values, max_size=3).map(
        lambda props: Entity("p", "r", props, etag="t", timestamp=0.0))


@given(node=ast_nodes(), entity=entities())
@settings(max_examples=300, deadline=None)
def test_parser_agrees_with_reference_evaluator(node, entity):
    text = render(node)
    predicate = parse_filter(text)
    assert predicate(entity) == evaluate(node, entity), text


@given(node=ast_nodes())
@settings(max_examples=100, deadline=None)
def test_rendered_filters_always_parse(node):
    parse_filter(render(node))  # must not raise
