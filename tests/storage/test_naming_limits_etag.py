"""Unit tests for naming rules, service limits, and ETags."""

import pytest

from repro.storage import (
    ETagMismatchError,
    InvalidNameError,
    KB,
    LIMITS_2010,
    LIMITS_2012,
    MB,
    TB,
    WILDCARD_ETAG,
)
from repro.storage.etag import ETagFactory, check_etag
from repro.storage.naming import (
    validate_account_name,
    validate_blob_name,
    validate_container_name,
    validate_queue_name,
    validate_table_name,
)


class TestNaming:
    @pytest.mark.parametrize("name", ["abc", "my-container", "a1b2c3",
                                      "x" * 63, "123", "$root"])
    def test_valid_container_names(self, name):
        assert validate_container_name(name) == name

    @pytest.mark.parametrize("name", ["ab", "UPPER", "has_underscore",
                                      "-leading", "trailing-", "dou--ble",
                                      "x" * 64, "", "with space"])
    def test_invalid_container_names(self, name):
        with pytest.raises(InvalidNameError):
            validate_container_name(name)

    def test_container_name_type_checked(self):
        with pytest.raises(InvalidNameError):
            validate_container_name(123)

    @pytest.mark.parametrize("name", ["a", "dir/file.txt", "x" * 1024,
                                      "UPPER ok too"])
    def test_valid_blob_names(self, name):
        assert validate_blob_name(name) == name

    @pytest.mark.parametrize("name", ["", "x" * 1025, "ends-with-dot.",
                                      "ends-with-slash/"])
    def test_invalid_blob_names(self, name):
        with pytest.raises(InvalidNameError):
            validate_blob_name(name)

    @pytest.mark.parametrize("name", ["queue", "my-queue-1", "q12"])
    def test_valid_queue_names(self, name):
        assert validate_queue_name(name) == name

    @pytest.mark.parametrize("name", ["Q", "qq", "UPPER", "under_score"])
    def test_invalid_queue_names(self, name):
        with pytest.raises(InvalidNameError):
            validate_queue_name(name)

    @pytest.mark.parametrize("name", ["MyTable", "AzureBenchTable", "abc",
                                      "T23", "x" * 63])
    def test_valid_table_names(self, name):
        assert validate_table_name(name) == name

    @pytest.mark.parametrize("name", ["1table", "has-dash", "ab",
                                      "x" * 64, ""])
    def test_invalid_table_names(self, name):
        with pytest.raises(InvalidNameError):
            validate_table_name(name)

    @pytest.mark.parametrize("name", ["abc", "devstoreaccount1", "a" * 24])
    def test_valid_account_names(self, name):
        assert validate_account_name(name) == name

    @pytest.mark.parametrize("name", ["ab", "UPPER", "a" * 25, "with-dash"])
    def test_invalid_account_names(self, name):
        with pytest.raises(InvalidNameError):
            validate_account_name(name)


class TestLimits:
    def test_2012_values_from_paper(self):
        lim = LIMITS_2012
        assert lim.account_capacity_bytes == 100 * TB
        assert lim.account_transactions_per_second == 5000
        assert lim.account_bandwidth_bytes_per_second == 3 * 1024 * MB
        assert lim.blob_throughput_bytes_per_second == 60 * MB
        assert lim.max_block_bytes == 4 * MB
        assert lim.max_blocks_per_blob == 50_000
        assert lim.max_single_shot_blob_bytes == 64 * MB
        assert lim.max_block_blob_bytes == 200 * 1024 * MB
        assert lim.max_page_blob_bytes == 1 * TB
        assert lim.page_alignment_bytes == 512
        assert lim.queue_messages_per_second == 500
        assert lim.max_message_bytes == 64 * KB
        assert lim.max_message_payload_bytes == 49152  # "49152 Bytes to be precise"
        assert lim.max_message_ttl_seconds == 7 * 24 * 3600
        assert lim.partition_entities_per_second == 500
        assert lim.max_entity_bytes == 1 * MB
        assert lim.max_entity_properties == 255

    def test_2010_era_restrictions(self):
        assert LIMITS_2010.max_message_bytes == 8 * KB
        assert LIMITS_2010.max_message_ttl_seconds == 2 * 3600
        # Everything else matches the 2012 platform.
        assert LIMITS_2010.max_block_bytes == LIMITS_2012.max_block_bytes

    def test_with_overrides(self):
        custom = LIMITS_2012.with_overrides(queue_messages_per_second=100)
        assert custom.queue_messages_per_second == 100
        assert LIMITS_2012.queue_messages_per_second == 500  # original intact

    def test_frozen(self):
        with pytest.raises(Exception):
            LIMITS_2012.max_block_bytes = 1


class TestETag:
    def test_factory_unique_and_monotonic(self):
        f = ETagFactory()
        tags = [f.next() for _ in range(100)]
        assert len(set(tags)) == 100
        assert tags == sorted(tags)

    def test_check_exact_match(self):
        check_etag("abc", "abc")  # no raise

    def test_check_mismatch_raises(self):
        with pytest.raises(ETagMismatchError):
            check_etag("abc", "def")

    def test_wildcard_matches_anything(self):
        check_etag(WILDCARD_ETAG, "anything")
        check_etag(None, "anything")
