"""Property-based tests (hypothesis) on core storage invariants."""

from dataclasses import dataclass
from typing import List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.storage import (
    BytesContent,
    ManualClock,
    StorageAccountState,
)

# ---------------------------------------------------------------------------
# Page blob: arbitrary aligned writes/clears vs. a reference bytearray.
# ---------------------------------------------------------------------------

PAGE = 512
N_PAGES = 16


@st.composite
def aligned_range(draw):
    start = draw(st.integers(0, N_PAGES - 1))
    length = draw(st.integers(1, N_PAGES - start))
    return start * PAGE, length * PAGE


@given(ops=st.lists(
    st.tuples(st.sampled_from(["write", "clear"]), aligned_range(),
              st.integers(0, 255)),
    max_size=25))
@settings(max_examples=80, deadline=None)
def test_page_blob_matches_reference_bytearray(ops):
    account = StorageAccountState("propacc", ManualClock())
    container = account.blobs.create_container("props")
    blob = container.create_page_blob("pb", N_PAGES * PAGE)
    reference = bytearray(N_PAGES * PAGE)

    for kind, (offset, length), fill in ops:
        if kind == "write":
            data = bytes([fill]) * length
            blob.put_pages(offset, BytesContent(data))
            reference[offset:offset + length] = data
        else:
            blob.clear_pages(offset, length)
            reference[offset:offset + length] = bytes(length)

    assert blob.read_all().to_bytes() == bytes(reference)
    # Written-bytes accounting equals the interval cover it claims.
    assert blob.written_bytes == sum(e - s for s, e in blob.get_page_ranges())
    # Intervals are sorted and non-overlapping.
    ranges = blob.get_page_ranges()
    assert all(a_end <= b_start for (_, a_end), (b_start, _)
               in zip(ranges, ranges[1:]))
    # Account usage stays consistent with a full recount.
    assert account.bytes_used == account.recompute_usage()


# ---------------------------------------------------------------------------
# Block blob: commits vs. a reference model of (id -> bytes) plus order.
# ---------------------------------------------------------------------------

@given(
    stages=st.lists(
        st.tuples(st.integers(0, 7), st.binary(min_size=1, max_size=16)),
        min_size=1, max_size=20),
    commit_ids=st.lists(st.integers(0, 7), min_size=1, max_size=8,
                        unique=True),
)
@settings(max_examples=80, deadline=None)
def test_block_blob_commit_reflects_latest_stage(stages, commit_ids):
    account = StorageAccountState("propacc", ManualClock())
    container = account.blobs.create_container("props")
    blob = container.create_block_blob("bb")
    latest = {}
    for bid, data in stages:
        blob.put_block(f"b{bid}", data)
        latest[bid] = data

    commit_ids = [c for c in commit_ids if c in latest]
    if not commit_ids:
        return
    blob.put_block_list([f"b{c}" for c in commit_ids])
    expected = b"".join(latest[c] for c in commit_ids)
    assert blob.download().to_bytes() == expected
    assert blob.size == len(expected)
    assert account.bytes_used == account.recompute_usage()


# ---------------------------------------------------------------------------
# Queue: conservation — every put is eventually gotten exactly once when
# consumers delete within the visibility timeout; nothing is lost, nothing
# is duplicated.
# ---------------------------------------------------------------------------

@given(payloads=st.lists(st.binary(min_size=1, max_size=32),
                         min_size=1, max_size=40),
       jitter_seed=st.one_of(st.none(), st.integers(0, 2**16)))
@settings(max_examples=60, deadline=None)
def test_queue_conservation_with_prompt_delete(payloads, jitter_seed):
    clock = ManualClock()
    account = StorageAccountState("propacc", clock,
                                  fifo_jitter_seed=jitter_seed)
    q = account.queues.create_queue("props")
    for p in payloads:
        q.put_message(p)
    got = []
    while True:
        m = q.get_message(visibility_timeout=1000)
        if m is None:
            break
        got.append(m.content.to_bytes())
        q.delete_message(m.message_id, m.pop_receipt)
    assert sorted(got) == sorted(payloads)
    assert q.approximate_message_count() == 0
    assert account.bytes_used == account.recompute_usage() == 0


@given(payloads=st.lists(st.binary(min_size=1, max_size=16),
                         min_size=1, max_size=20),
       crash_after=st.integers(0, 19))
@settings(max_examples=40, deadline=None)
def test_queue_at_least_once_after_consumer_crash(payloads, crash_after):
    """A consumer that gets-but-never-deletes loses nothing: all messages
    are still consumable after the visibility timeout."""
    clock = ManualClock()
    account = StorageAccountState("propacc", clock)
    q = account.queues.create_queue("props")
    for p in payloads:
        q.put_message(p)

    # Crashing consumer: gets some messages, deletes none.
    for _ in range(min(crash_after, len(payloads))):
        q.get_message(visibility_timeout=60)

    clock.advance(60)  # all invisibility lapses

    survivors = []
    while True:
        m = q.get_message(visibility_timeout=1000)
        if m is None:
            break
        survivors.append(m.content.to_bytes())
        q.delete_message(m.message_id, m.pop_receipt)
    assert sorted(survivors) == sorted(payloads)


# ---------------------------------------------------------------------------
# Table: upsert algebra — insert_or_replace/insert_or_merge vs a dict model.
# ---------------------------------------------------------------------------

_prop_names = st.sampled_from(["A", "B", "C", "D"])
_prop_values = st.one_of(st.integers(-100, 100), st.text(max_size=5),
                         st.booleans())
_prop_bags = st.dictionaries(_prop_names, _prop_values, max_size=4)


@given(ops=st.lists(
    st.tuples(st.sampled_from(["replace", "merge", "delete"]),
              st.sampled_from(["r1", "r2"]), _prop_bags),
    max_size=30))
@settings(max_examples=80, deadline=None)
def test_table_upsert_algebra_matches_dict_model(ops):
    account = StorageAccountState("propacc", ManualClock())
    table = account.tables.create_table("Props")
    model = {}

    for kind, rk, bag in ops:
        if kind == "replace":
            table.insert_or_replace("p", rk, bag)
            model[rk] = dict(bag)
        elif kind == "merge":
            table.insert_or_merge("p", rk, bag)
            model.setdefault(rk, {}).update(bag)
        else:
            if rk in model:
                table.delete("p", rk)
                del model[rk]

    assert table.entity_count() == len(model)
    for rk, bag in model.items():
        assert table.get("p", rk).properties() == bag
    assert account.bytes_used == account.recompute_usage()


# ---------------------------------------------------------------------------
# Stateful test: account usage accounting never drifts across mixed ops.
# ---------------------------------------------------------------------------

class AccountUsageMachine(RuleBasedStateMachine):
    """Random interleavings of ops across all three services must keep the
    incremental usage counter equal to a full recount."""

    def __init__(self):
        super().__init__()
        self.clock = ManualClock()
        self.account = StorageAccountState("statemach", self.clock)
        self.container = self.account.blobs.create_container("cont")
        self.queue = self.account.queues.create_queue("que")
        self.table = self.account.tables.create_table("Tab")
        self.blob_counter = 0
        self.row_counter = 0
        self.receipts: List = []

    @rule(data=st.binary(min_size=1, max_size=64))
    def upload_blob(self, data):
        name = f"b{self.blob_counter}"
        self.blob_counter += 1
        blob = self.container.create_block_blob(name)
        blob.upload(BytesContent(data))

    @rule()
    def delete_some_blob(self):
        blobs = self.container.list_blobs()
        if blobs:
            self.container.delete_blob(blobs[0])

    @rule(data=st.binary(min_size=1, max_size=64))
    def put_msg(self, data):
        self.queue.put_message(data, ttl=1000)

    @rule()
    def get_and_delete_msg(self):
        m = self.queue.get_message(visibility_timeout=10)
        if m is not None:
            self.queue.delete_message(m.message_id, m.pop_receipt)

    @rule(dt=st.floats(0.1, 2000))
    def advance_clock(self, dt):
        self.clock.advance(dt)
        self.queue.approximate_message_count()  # force a purge pass

    @rule(data=st.binary(min_size=1, max_size=64))
    def upsert_row(self, data):
        rk = f"r{self.row_counter % 5}"
        self.row_counter += 1
        self.table.insert_or_replace("p", rk, {"Data": data})

    @rule()
    def delete_some_row(self):
        parts = self.table.partitions()
        if parts:
            rows = self.table.query_partition(parts[0])
            if rows:
                self.table.delete(parts[0], rows[0].row_key)

    @invariant()
    def usage_matches_recount(self):
        assert self.account.bytes_used == self.account.recompute_usage()


TestAccountUsageMachine = AccountUsageMachine.TestCase
TestAccountUsageMachine.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None)
