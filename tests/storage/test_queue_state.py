"""Unit tests for the queue data plane: visibility, TTL, receipts, FIFO."""

import pytest

from repro.storage import (
    InvalidOperationError,
    KB,
    LIMITS_2010,
    ManualClock,
    MessageNotFoundError,
    MessageTooLargeError,
    QueueNotFoundError,
    ResourceExistsError,
    StorageAccountState,
    SyntheticContent,
)


@pytest.fixture
def clock():
    return ManualClock()


@pytest.fixture
def account(clock):
    return StorageAccountState("testaccount", clock)


@pytest.fixture
def queue(account):
    return account.queues.create_queue("tasks")


class TestQueueManagement:
    def test_create_idempotent(self, account):
        q1 = account.queues.create_queue("q-a")
        q2 = account.queues.create_queue("q-a")
        assert q1 is q2

    def test_create_fail_on_exist(self, account):
        account.queues.create_queue("q-a")
        with pytest.raises(ResourceExistsError):
            account.queues.create_queue("q-a", fail_on_exist=True)

    def test_get_missing(self, account):
        with pytest.raises(QueueNotFoundError):
            account.queues.get_queue("ghost")

    def test_delete_queue_clears_usage(self, account, queue):
        queue.put_message(b"x" * 100)
        assert account.bytes_used == 100
        account.queues.delete_queue("tasks")
        assert account.bytes_used == 0

    def test_list_queues(self, account):
        for name in ("qa-one", "qa-two", "qb-one"):
            account.queues.create_queue(name)
        assert account.queues.list_queues("qa") == ["qa-one", "qa-two"]

    def test_partition_key_is_queue_name(self, queue):
        assert queue.partition_key() == "tasks"


class TestPutMessage:
    def test_basic_put(self, queue):
        msg = queue.put_message(b"hello")
        assert msg.content.to_bytes() == b"hello"
        assert queue.approximate_message_count() == 1

    def test_payload_size_limit(self, queue):
        queue.put_message(SyntheticContent(48 * KB, seed=1))  # at the cap
        with pytest.raises(MessageTooLargeError):
            queue.put_message(SyntheticContent(48 * KB + 1, seed=1))

    def test_2010_era_limit(self, clock):
        account = StorageAccountState("oldaccount", clock, LIMITS_2010)
        q = account.queues.create_queue("tasks")
        with pytest.raises(MessageTooLargeError):
            q.put_message(SyntheticContent(8 * KB, seed=1))

    def test_ttl_capped_at_era_max(self, queue, clock):
        msg = queue.put_message(b"x", ttl=999 * 24 * 3600)
        assert msg.expiration_time == clock.now() + 7 * 24 * 3600

    def test_invalid_ttl(self, queue):
        with pytest.raises(InvalidOperationError):
            queue.put_message(b"x", ttl=0)

    def test_visibility_delay(self, queue, clock):
        queue.put_message(b"x", visibility_delay=10)
        assert queue.visible_message_count() == 0
        assert queue.approximate_message_count() == 1
        clock.advance(10)
        assert queue.visible_message_count() == 1

    def test_negative_visibility_delay(self, queue):
        with pytest.raises(InvalidOperationError):
            queue.put_message(b"x", visibility_delay=-1)


class TestGetMessage:
    def test_get_makes_invisible(self, queue, clock):
        queue.put_message(b"a")
        msg = queue.get_message(visibility_timeout=30)
        assert msg is not None
        assert queue.visible_message_count() == 0
        assert queue.approximate_message_count() == 1
        assert queue.get_message() is None  # invisible to everyone

    def test_reappears_after_timeout(self, queue, clock):
        queue.put_message(b"a")
        m1 = queue.get_message(visibility_timeout=30)
        clock.advance(30)
        m2 = queue.get_message(visibility_timeout=30)
        assert m2 is not None and m2.message_id == m1.message_id
        assert m2.dequeue_count == 2

    def test_dequeue_count_increments(self, queue, clock):
        queue.put_message(b"a")
        for expected in (1, 2, 3):
            m = queue.get_message(visibility_timeout=1)
            assert m.dequeue_count == expected
            clock.advance(1)

    def test_pop_receipt_rotates(self, queue, clock):
        queue.put_message(b"a")
        m1 = queue.get_message(visibility_timeout=1)
        clock.advance(1)
        m2 = queue.get_message(visibility_timeout=1)
        assert m1.pop_receipt != m2.pop_receipt

    def test_get_empty_queue(self, queue):
        assert queue.get_message() is None

    def test_get_many(self, queue):
        for i in range(5):
            queue.put_message(f"m{i}".encode())
        got = queue.get_messages(3, visibility_timeout=10)
        assert [m.content.to_bytes() for m in got] == [b"m0", b"m1", b"m2"]

    def test_invalid_args(self, queue):
        with pytest.raises(InvalidOperationError):
            queue.get_messages(0)
        with pytest.raises(InvalidOperationError):
            queue.get_messages(1, visibility_timeout=0)

    def test_default_visibility_timeout(self, queue, clock):
        queue.put_message(b"a")
        queue.get_message()  # default 30 s
        clock.advance(29)
        assert queue.visible_message_count() == 0
        clock.advance(1)
        assert queue.visible_message_count() == 1


class TestPeekMessage:
    def test_peek_no_state_change(self, queue):
        queue.put_message(b"a")
        m = queue.peek_message()
        assert m is not None
        assert m.dequeue_count == 0
        assert queue.visible_message_count() == 1
        # Peek again: same message still there.
        assert queue.peek_message().message_id == m.message_id

    def test_peek_empty(self, queue):
        assert queue.peek_message() is None

    def test_peek_skips_invisible(self, queue):
        queue.put_message(b"a")
        queue.put_message(b"b")
        queue.get_message(visibility_timeout=100)
        m = queue.peek_message()
        assert m.content.to_bytes() == b"b"


class TestDeleteMessage:
    def test_delete_with_receipt(self, queue):
        queue.put_message(b"a")
        m = queue.get_message(visibility_timeout=10)
        queue.delete_message(m.message_id, m.pop_receipt)
        assert queue.approximate_message_count() == 0

    def test_delete_with_wrong_receipt(self, queue):
        queue.put_message(b"a")
        m = queue.get_message(visibility_timeout=10)
        with pytest.raises(MessageNotFoundError):
            queue.delete_message(m.message_id, "bogus")

    def test_delete_without_get_fails(self, queue):
        msg = queue.put_message(b"a")
        with pytest.raises(MessageNotFoundError):
            queue.delete_message(msg.message_id, None)

    def test_delete_missing(self, queue):
        with pytest.raises(MessageNotFoundError):
            queue.delete_message("ghost", "r")

    def test_stale_receipt_after_regain(self, queue, clock):
        """A crashed consumer's receipt is useless once another got it."""
        queue.put_message(b"a")
        m1 = queue.get_message(visibility_timeout=5)
        clock.advance(5)  # consumer 1 "crashed"
        m2 = queue.get_message(visibility_timeout=5)
        with pytest.raises(MessageNotFoundError):
            queue.delete_message(m1.message_id, m1.pop_receipt)
        queue.delete_message(m2.message_id, m2.pop_receipt)  # current receipt works


class TestUpdateMessage:
    def test_update_content_and_visibility(self, queue, clock):
        queue.put_message(b"old")
        m = queue.get_message(visibility_timeout=10)
        m2 = queue.update_message(m.message_id, m.pop_receipt, b"new",
                                  visibility_timeout=3)
        clock.advance(3)
        got = queue.get_message()
        assert got.content.to_bytes() == b"new"

    def test_update_wrong_receipt(self, queue):
        queue.put_message(b"a")
        m = queue.get_message(visibility_timeout=10)
        with pytest.raises(MessageNotFoundError):
            queue.update_message(m.message_id, "bogus", b"x")

    def test_update_size_limit(self, queue):
        queue.put_message(b"a")
        m = queue.get_message(visibility_timeout=10)
        with pytest.raises(MessageTooLargeError):
            queue.update_message(m.message_id, m.pop_receipt,
                                 SyntheticContent(49 * KB, seed=0))


class TestTTL:
    def test_expiry(self, queue, clock):
        queue.put_message(b"a", ttl=100)
        clock.advance(99)
        assert queue.approximate_message_count() == 1
        clock.advance(1)
        assert queue.approximate_message_count() == 0

    def test_expiry_releases_usage(self, account, queue, clock):
        queue.put_message(b"x" * 64, ttl=10)
        assert account.bytes_used == 64
        clock.advance(10)
        queue.approximate_message_count()  # triggers purge
        assert account.bytes_used == 0

    def test_mixed_ttls(self, queue, clock):
        queue.put_message(b"short", ttl=10)
        queue.put_message(b"long", ttl=1000)
        clock.advance(10)
        assert queue.approximate_message_count() == 1
        assert queue.peek_message().content.to_bytes() == b"long"

    def test_2010_era_two_hours(self, clock):
        account = StorageAccountState("oldaccount", clock, LIMITS_2010)
        q = account.queues.create_queue("tasks")
        q.put_message(b"x")  # default ttl capped at 2 h
        clock.advance(2 * 3600)
        assert q.approximate_message_count() == 0


class TestFIFOBehaviour:
    def test_strict_fifo_by_default(self, account, queue):
        for i in range(10):
            queue.put_message(f"m{i}".encode())
        got = [queue.get_message(visibility_timeout=100).content.to_bytes()
               for _ in range(10)]
        assert got == [f"m{i}".encode() for i in range(10)]

    def test_jittered_order_is_permutation(self, clock):
        account = StorageAccountState("jitteracc", clock, fifo_jitter_seed=42)
        q = account.queues.create_queue("tasks")
        sent = [f"m{i}".encode() for i in range(20)]
        for m in sent:
            q.put_message(m)
        got = [q.get_message(visibility_timeout=100).content.to_bytes()
               for _ in range(20)]
        assert sorted(got) == sorted(sent)
        assert len(got) == 20

    def test_jittered_order_eventually_reorders(self, clock):
        """With the non-FIFO model on, some run must observe reordering —
        this is exactly the poison-message hazard the paper warns about."""
        reordered = False
        for seed in range(5):
            account = StorageAccountState("jitteracc", ManualClock(),
                                          fifo_jitter_seed=seed)
            q = account.queues.create_queue("tasks")
            sent = [f"m{i}".encode() for i in range(20)]
            for m in sent:
                q.put_message(m)
            got = [q.get_message(visibility_timeout=100).content.to_bytes()
                   for _ in range(20)]
            if got != sent:
                reordered = True
                break
        assert reordered

    def test_clear(self, queue, account):
        for i in range(5):
            queue.put_message(b"x")
        queue.clear()
        assert queue.approximate_message_count() == 0
        assert account.bytes_used == 0
        assert len(queue) == 0
