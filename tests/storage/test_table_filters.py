"""Unit tests for the OData-style filter parser."""

import pytest

from repro.storage.table.entity import Entity
from repro.storage.table.filters import FilterError, parse_filter


def make(pk="p", rk="r", **props):
    return Entity(pk, rk, props, etag="t", timestamp=1.0)


class TestComparisons:
    def test_eq_string(self):
        pred = parse_filter("Name eq 'alice'")
        assert pred(make(Name="alice"))
        assert not pred(make(Name="bob"))

    def test_ne(self):
        pred = parse_filter("Name ne 'alice'")
        assert pred(make(Name="bob"))
        assert not pred(make(Name="alice"))

    @pytest.mark.parametrize("op,value,expected", [
        ("gt", 10, [False, False, True]),
        ("ge", 10, [False, True, True]),
        ("lt", 10, [True, False, False]),
        ("le", 10, [True, True, False]),
    ])
    def test_numeric_ops(self, op, value, expected):
        pred = parse_filter(f"Size {op} {value}")
        got = [pred(make(Size=s)) for s in (5, 10, 15)]
        assert got == expected

    def test_float_literal(self):
        pred = parse_filter("Score gt 2.5")
        assert pred(make(Score=3.0)) and not pred(make(Score=2.0))

    def test_negative_number(self):
        pred = parse_filter("Delta lt -1")
        assert pred(make(Delta=-5)) and not pred(make(Delta=0))

    def test_boolean_literals(self):
        pred = parse_filter("Flag eq true")
        assert pred(make(Flag=True)) and not pred(make(Flag=False))
        pred2 = parse_filter("Flag eq false")
        assert pred2(make(Flag=False))

    def test_system_properties(self):
        pred = parse_filter("PartitionKey eq 'p7' and RowKey ge '0100'")
        assert pred(make(pk="p7", rk="0100"))
        assert not pred(make(pk="p7", rk="0099"))
        assert not pred(make(pk="p8", rk="0100"))

    def test_escaped_quote(self):
        pred = parse_filter("Name eq 'O''Brien'")
        assert pred(make(Name="O'Brien"))

    def test_missing_property_is_false(self):
        pred = parse_filter("Ghost eq 1")
        assert not pred(make(Other=1))

    def test_type_mismatch_is_false(self):
        pred = parse_filter("Size gt 'text'")
        assert not pred(make(Size=5))


class TestBooleanLogic:
    def test_and(self):
        pred = parse_filter("A eq 1 and B eq 2")
        assert pred(make(A=1, B=2))
        assert not pred(make(A=1, B=3))

    def test_or(self):
        pred = parse_filter("A eq 1 or B eq 2")
        assert pred(make(A=1, B=9))
        assert pred(make(A=9, B=2))
        assert not pred(make(A=9, B=9))

    def test_not(self):
        pred = parse_filter("not A eq 1")
        assert pred(make(A=2)) and not pred(make(A=1))

    def test_precedence_and_binds_tighter(self):
        pred = parse_filter("A eq 1 or B eq 2 and C eq 3")
        assert pred(make(A=1, B=0, C=0))       # A matches
        assert pred(make(A=0, B=2, C=3))       # B and C match
        assert not pred(make(A=0, B=2, C=0))   # B alone insufficient

    def test_parentheses_override(self):
        pred = parse_filter("(A eq 1 or B eq 2) and C eq 3")
        assert not pred(make(A=1, B=0, C=0))
        assert pred(make(A=1, B=0, C=3))

    def test_nested_not(self):
        pred = parse_filter("not not A eq 1")
        assert pred(make(A=1))

    def test_case_insensitive_keywords(self):
        pred = parse_filter("A EQ 1 AND B Ne 2")
        assert pred(make(A=1, B=3))


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "",
        "A eq",
        "eq 1",
        "A eq 1 extra",
        "A woof 1",
        "(A eq 1",
        "A eq B",          # bare identifier is not a literal
        "A eq 'unterminated",
        "A ?? 1",
    ])
    def test_bad_filters(self, bad):
        with pytest.raises(FilterError):
            parse_filter(bad)

    def test_error_mentions_position(self):
        with pytest.raises(FilterError, match="position"):
            parse_filter("A eq 1 or or")
