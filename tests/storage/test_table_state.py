"""Unit tests for the table data plane: CRUD, ETags, queries, batches."""

import pytest

from repro.storage import (
    BatchError,
    BatchOperation,
    EntityNotFoundError,
    EntityTooLargeError,
    ETagMismatchError,
    InvalidOperationError,
    MB,
    ManualClock,
    ResourceExistsError,
    StorageAccountState,
    SyntheticContent,
    TableNotFoundError,
    TooManyPropertiesError,
)


@pytest.fixture
def account():
    return StorageAccountState("testaccount", ManualClock())


@pytest.fixture
def table(account):
    return account.tables.create_table("Bench")


class TestTableManagement:
    def test_create_idempotent(self, account):
        assert account.tables.create_table("Tbl") is account.tables.create_table("Tbl")

    def test_fail_on_exist(self, account):
        account.tables.create_table("Tbl")
        with pytest.raises(ResourceExistsError):
            account.tables.create_table("Tbl", fail_on_exist=True)

    def test_get_missing(self, account):
        with pytest.raises(TableNotFoundError):
            account.tables.get_table("Ghost")

    def test_delete_releases_usage(self, account, table):
        table.insert("p", "r", {"Data": b"x" * 100})
        assert account.bytes_used > 0
        account.tables.delete_table("Bench")
        assert account.bytes_used == 0

    def test_list_tables(self, account):
        for n in ("Alpha", "Beta"):
            account.tables.create_table(n)
        assert account.tables.list_tables() == ["Alpha", "Beta"]


class TestInsert:
    def test_basic(self, table):
        e = table.insert("p1", "r1", {"A": 1, "B": "text"})
        assert e.partition_key == "p1" and e.row_key == "r1"
        assert e["A"] == 1 and e["B"] == "text"
        assert e.etag

    def test_conflict(self, table):
        table.insert("p1", "r1", {})
        with pytest.raises(ResourceExistsError):
            table.insert("p1", "r1", {})

    def test_same_rowkey_different_partition_ok(self, table):
        table.insert("p1", "r1", {})
        table.insert("p2", "r1", {})
        assert table.entity_count() == 2

    def test_schema_less(self, table):
        table.insert("p", "r1", {"A": 1})
        table.insert("p", "r2", {"Completely": "different", "Props": True})
        assert table.get("p", "r1").properties() == {"A": 1}
        assert table.get("p", "r2")["Props"] is True

    def test_reserved_property_rejected(self, table):
        for name in ("PartitionKey", "RowKey", "Timestamp"):
            with pytest.raises(InvalidOperationError):
                table.insert("p", "r", {name: "x"})

    def test_unsupported_type_rejected(self, table):
        with pytest.raises(InvalidOperationError):
            table.insert("p", "r", {"Bad": object()})

    def test_entity_size_limit(self, table):
        with pytest.raises(EntityTooLargeError):
            table.insert("p", "r", {"Data": SyntheticContent(1 * MB + 1, seed=0)})

    def test_property_count_limit(self, table):
        props = {f"P{i:03d}": i for i in range(256)}
        with pytest.raises(TooManyPropertiesError):
            table.insert("p", "r", props)
        table.insert("p", "r", {f"P{i:03d}": i for i in range(255)})

    def test_non_string_keys_rejected(self, table):
        with pytest.raises(InvalidOperationError):
            table.insert(1, "r", {})


class TestGetQuery:
    def test_point_get(self, table):
        table.insert("p", "r", {"X": 9})
        assert table.get("p", "r")["X"] == 9

    def test_get_missing(self, table):
        with pytest.raises(EntityNotFoundError):
            table.get("p", "ghost")
        assert table.try_get("p", "ghost") is None

    def test_system_properties_via_get(self, table):
        e = table.insert("p", "r", {})
        assert e.get("PartitionKey") == "p"
        assert e.get("RowKey") == "r"
        assert e.get("Timestamp") == e.timestamp

    def test_query_all_sorted(self, table):
        table.insert("b", "2", {})
        table.insert("a", "1", {})
        table.insert("b", "1", {})
        keys = [e.key for e in table.query()]
        assert keys == [("a", "1"), ("b", "1"), ("b", "2")]

    def test_query_filter_string(self, table):
        table.insert("p", "r1", {"Size": 10})
        table.insert("p", "r2", {"Size": 20})
        res = table.query("Size gt 15")
        assert [e.row_key for e in res] == ["r2"]

    def test_query_filter_callable(self, table):
        table.insert("p", "r1", {"Size": 10})
        table.insert("p", "r2", {"Size": 20})
        res = table.query(lambda e: e["Size"] < 15)
        assert [e.row_key for e in res] == ["r1"]

    def test_query_top_and_continuation(self, table):
        for i in range(10):
            table.insert("p", f"{i:02d}", {})
        page1 = table.query(top=4)
        assert len(page1) == 4 and page1.continuation == ("p", "03")
        page2 = table.query(top=4, continuation=page1.continuation)
        assert [e.row_key for e in page2] == ["04", "05", "06", "07"]
        page3 = table.query(top=4, continuation=page2.continuation)
        assert [e.row_key for e in page3] == ["08", "09"]
        assert page3.continuation is None

    def test_query_top_exact_boundary(self, table):
        for i in range(4):
            table.insert("p", f"{i}", {})
        page = table.query(top=4)
        assert len(page) == 4 and page.continuation is None

    def test_query_partition(self, table):
        table.insert("a", "1", {"V": 1})
        table.insert("a", "2", {"V": 2})
        table.insert("b", "1", {"V": 3})
        res = table.query_partition("a")
        assert [e["V"] for e in res] == [1, 2]
        assert table.query_partition("ghost") == []

    def test_invalid_top(self, table):
        with pytest.raises(InvalidOperationError):
            table.query(top=0)

    def test_invalid_filter_type(self, table):
        with pytest.raises(InvalidOperationError):
            table.query(filter=123)


class TestUpdateMergeDelete:
    def test_update_replaces_bag(self, table):
        table.insert("p", "r", {"A": 1, "B": 2})
        table.update("p", "r", {"C": 3})
        assert table.get("p", "r").properties() == {"C": 3}

    def test_merge_keeps_existing(self, table):
        table.insert("p", "r", {"A": 1, "B": 2})
        table.merge("p", "r", {"B": 20, "C": 3})
        assert table.get("p", "r").properties() == {"A": 1, "B": 20, "C": 3}

    def test_update_etag_check(self, table):
        e = table.insert("p", "r", {"A": 1})
        table.update("p", "r", {"A": 2}, etag=e.etag)
        with pytest.raises(ETagMismatchError):
            table.update("p", "r", {"A": 3}, etag=e.etag)  # stale now

    def test_wildcard_update(self, table):
        table.insert("p", "r", {"A": 1})
        table.update("p", "r", {"A": 2}, etag="*")
        table.update("p", "r", {"A": 3})  # default is wildcard
        assert table.get("p", "r")["A"] == 3

    def test_update_missing_entity(self, table):
        with pytest.raises(EntityNotFoundError):
            table.update("p", "ghost", {})

    def test_etag_changes_on_every_write(self, table):
        e1 = table.insert("p", "r", {"A": 1})
        e2 = table.update("p", "r", {"A": 2})
        e3 = table.merge("p", "r", {"B": 1})
        assert len({e1.etag, e2.etag, e3.etag}) == 3

    def test_insert_or_replace(self, table):
        table.insert_or_replace("p", "r", {"A": 1})
        table.insert_or_replace("p", "r", {"B": 2})
        assert table.get("p", "r").properties() == {"B": 2}

    def test_insert_or_merge(self, table):
        table.insert_or_merge("p", "r", {"A": 1})
        table.insert_or_merge("p", "r", {"B": 2})
        assert table.get("p", "r").properties() == {"A": 1, "B": 2}

    def test_delete(self, table):
        table.insert("p", "r", {})
        table.delete("p", "r")
        assert table.try_get("p", "r") is None
        assert table.partitions() == []

    def test_delete_etag_check(self, table):
        e = table.insert("p", "r", {})
        table.update("p", "r", {"A": 1})
        with pytest.raises(ETagMismatchError):
            table.delete("p", "r", etag=e.etag)

    def test_delete_missing(self, table):
        with pytest.raises(EntityNotFoundError):
            table.delete("p", "ghost")

    def test_usage_accounting_roundtrip(self, account, table):
        table.insert("p", "r", {"Data": b"x" * 1000})
        used = account.bytes_used
        assert used > 1000
        table.update("p", "r", {"Data": b"x" * 100})
        assert account.bytes_used < used
        table.delete("p", "r")
        assert account.bytes_used == 0
        assert account.recompute_usage() == 0


class TestBatch:
    def test_atomic_success(self, table):
        results = table.execute_batch([
            BatchOperation("insert", "p", "r1", {"A": 1}),
            BatchOperation("insert", "p", "r2", {"A": 2}),
            BatchOperation("insert", "p", "r3", {"A": 3}),
        ])
        assert len(results) == 3
        assert table.entity_count("p") == 3

    def test_atomic_rollback(self, table):
        table.insert("p", "r2", {"Old": True})
        with pytest.raises(BatchError) as exc_info:
            table.execute_batch([
                BatchOperation("insert", "p", "r1", {}),
                BatchOperation("insert", "p", "r2", {}),  # conflict
            ])
        assert exc_info.value.index == 1
        # r1's insert rolled back; r2 unchanged.
        assert table.try_get("p", "r1") is None
        assert table.get("p", "r2")["Old"] is True

    def test_rollback_restores_usage(self, account, table):
        table.insert("p", "keep", {"Data": b"x" * 100})
        used = account.bytes_used
        with pytest.raises(BatchError):
            table.execute_batch([
                BatchOperation("insert", "p", "new", {"Data": b"y" * 500}),
                BatchOperation("insert", "p", "keep", {}),  # conflict
            ])
        assert account.bytes_used == used
        assert account.recompute_usage() == used

    def test_cross_partition_rejected(self, table):
        with pytest.raises(InvalidOperationError):
            table.execute_batch([
                BatchOperation("insert", "p1", "r", {}),
                BatchOperation("insert", "p2", "r", {}),
            ])

    def test_duplicate_entity_rejected(self, table):
        with pytest.raises(InvalidOperationError):
            table.execute_batch([
                BatchOperation("insert", "p", "r", {}),
                BatchOperation("merge", "p", "r", {}),
            ])

    def test_size_limit(self, table):
        ops = [BatchOperation("insert", "p", f"r{i}", {}) for i in range(101)]
        with pytest.raises(InvalidOperationError):
            table.execute_batch(ops)

    def test_mixed_operations(self, table):
        table.insert("p", "upd", {"V": 1})
        table.insert("p", "del", {})
        table.execute_batch([
            BatchOperation("insert", "p", "new", {"V": 9}),
            BatchOperation("update", "p", "upd", {"V": 2}),
            BatchOperation("delete", "p", "del"),
            BatchOperation("upsert_merge", "p", "ups", {"V": 3}),
        ])
        assert table.get("p", "new")["V"] == 9
        assert table.get("p", "upd")["V"] == 2
        assert table.try_get("p", "del") is None
        assert table.get("p", "ups")["V"] == 3

    def test_empty_batch(self, table):
        assert table.execute_batch([]) == []

    def test_unknown_kind(self, table):
        with pytest.raises(BatchError):
            table.execute_batch([BatchOperation("explode", "p", "r")])


class TestEntityIntrospection:
    def test_entity_container_protocol(self, table):
        e = table.insert("p", "r", {"A": 1, "B": 2})
        assert "A" in e and "PartitionKey" in e and "Z" not in e
        assert sorted(e) == ["A", "B"]
        assert len(e) == 2
        with pytest.raises(KeyError):
            _ = e["Missing"]

    def test_partitions_listing(self, table):
        table.insert("b", "1", {})
        table.insert("a", "1", {})
        assert table.partitions() == ["a", "b"]
        assert table.entity_count("a") == 1
        assert table.entity_count() == 2
        assert len(table) == 2


class TestSelectProjection:
    def test_query_select(self, table):
        table.insert("p", "r1", {"A": 1, "B": 2, "C": 3})
        res = table.query(select=["A", "C"])
        assert res.entities[0].properties() == {"A": 1, "C": 3}
        # System properties survive projection.
        assert res.entities[0].partition_key == "p"

    def test_select_missing_property_omitted(self, table):
        table.insert("p", "r1", {"A": 1})
        res = table.query(select=["A", "Ghost"])
        assert res.entities[0].properties() == {"A": 1}

    def test_filter_sees_unprojected_entity(self, table):
        table.insert("p", "r1", {"A": 1, "B": 2})
        res = table.query("B eq 2", select=["A"])
        assert len(res) == 1
        assert res.entities[0].properties() == {"A": 1}

    def test_select_with_pagination(self, table):
        for i in range(5):
            table.insert("p", f"r{i}", {"A": i, "B": -i})
        page = table.query(top=2, select=["A"])
        assert all(e.properties().keys() == {"A"} for e in page)
        assert page.continuation is not None

    def test_query_partition_select(self, table):
        table.insert("p", "r1", {"A": 1, "B": 2})
        out = table.query_partition("p", select=["B"])
        assert out[0].properties() == {"B": 2}

    def test_projection_does_not_mutate_stored(self, table):
        table.insert("p", "r1", {"A": 1, "B": 2})
        table.query(select=["A"])
        assert table.get("p", "r1").properties() == {"A": 1, "B": 2}
