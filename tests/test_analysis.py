"""Tests for scalability analysis and ASCII charts."""

import numpy as np
import pytest

from repro.analysis import (
    ascii_chart,
    crossover,
    efficiency,
    fit_usl,
    knee_point,
    saturation_point,
    sparkline,
    speedup,
)
from repro.bench import FigureData


class TestSpeedupEfficiency:
    def test_perfect_scaling(self):
        workers = [1, 2, 4, 8]
        times = [80.0, 40.0, 20.0, 10.0]
        assert speedup(workers, times) == pytest.approx([1, 2, 4, 8])
        assert efficiency(workers, times) == pytest.approx([1, 1, 1, 1])

    def test_sublinear(self):
        workers = [1, 2, 4]
        times = [80.0, 50.0, 40.0]
        s = speedup(workers, times)
        assert s[1] < 2 and s[2] < 4
        e = efficiency(workers, times)
        assert e[2] < e[1] < e[0] == 1.0

    def test_base_not_one_worker(self):
        # Starting the sweep at 2 workers still normalizes correctly.
        s = speedup([2, 4], [40.0, 20.0])
        assert s == pytest.approx([2, 4])

    def test_validation(self):
        with pytest.raises(ValueError):
            speedup([1], [1.0])
        with pytest.raises(ValueError):
            speedup([1, 2], [1.0])
        with pytest.raises(ValueError):
            speedup([2, 1], [1.0, 2.0])
        with pytest.raises(ValueError):
            speedup([1, 2], [1.0, -2.0])
        with pytest.raises(ValueError):
            speedup([0, 2], [1.0, 2.0])


class TestSaturationKnee:
    def test_saturation_detected(self):
        workers = [1, 2, 4, 8, 16]
        thr = [10, 20, 38, 39, 40.5]
        assert saturation_point(workers, thr) == 4

    def test_no_saturation(self):
        assert saturation_point([1, 2, 4], [10, 20, 40]) is None

    def test_knee_detected(self):
        workers = [1, 4, 16, 48, 96]
        times = [10, 10.1, 10.3, 15, 30]
        assert knee_point(workers, times) == 48

    def test_flat_series_has_no_knee(self):
        assert knee_point([1, 2, 4], [10, 10.1, 10.2]) is None


class TestCrossover:
    def test_interpolated_crossing(self):
        workers = [1, 2, 3]
        a = [1.0, 3.0, 5.0]
        b = [4.0, 4.0, 4.0]
        x = crossover(workers, a, b)
        assert 2.0 < x < 3.0

    def test_no_crossing(self):
        assert crossover([1, 2], [1, 2], [3, 4]) is None

    def test_exact_sample_crossing(self):
        assert crossover([1, 2, 3], [1, 4, 9], [1, 5, 10]) == 1.0


class TestUSL:
    def test_fits_synthetic_usl(self):
        alpha, beta, gamma = 0.08, 0.0005, 12.0
        n = np.array([1, 2, 4, 8, 16, 32, 64, 96], dtype=float)
        thr = gamma * n / (1 + alpha * (n - 1) + beta * n * (n - 1))
        fit = fit_usl(n, thr)
        assert fit.alpha == pytest.approx(alpha, abs=0.02)
        assert fit.beta == pytest.approx(beta, abs=0.0005)
        assert fit.residual < 0.2
        # Predictions reproduce the data.
        assert fit.predict(32) == pytest.approx(float(thr[5]), rel=0.02)

    def test_peak_workers(self):
        fit = fit_usl([1, 2, 4, 8, 16, 32],
                      [10, 18, 29, 38, 39, 33])
        assert 8 < fit.peak_workers < 40

    def test_linear_scaling_has_no_peak(self):
        n = [1, 2, 4, 8]
        fit = fit_usl(n, [10, 20, 40, 80])
        assert fit.alpha < 0.01
        assert fit.peak_workers > 100 or fit.peak_workers == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_usl([1, 2], [1.0, 0.0])


class TestCharts:
    def make_fig(self):
        fig = FigureData("Fig X", "demo", "workers", [1, 2, 4, 8])
        fig.add("rising", [1.0, 2.0, 4.0, 8.0], unit="MB/s")
        fig.add("flat", [3.0, 3.0, 3.0, 3.0], unit="MB/s")
        return fig

    def test_chart_contains_labels_and_markers(self):
        text = ascii_chart(self.make_fig())
        assert "Fig X" in text
        assert "o rising" in text and "x flat" in text
        assert "(workers)" in text
        assert "8" in text  # top y label

    def test_chart_dimensions(self):
        text = ascii_chart(self.make_fig(), width=40, height=10)
        lines = text.splitlines()
        # title + 10 rows + axis + xlabels + legend
        assert len(lines) == 14

    def test_log_scale(self):
        fig = FigureData("Fig L", "log demo", "n", [1, 2, 3])
        fig.add("wide", [1.0, 100.0, 10000.0])
        text = ascii_chart(fig, logy=True)
        assert "1e+04" in text or "10000" in text

    def test_empty_and_tiny(self):
        fig = FigureData("Fig E", "t", "x", [1])
        assert "no series" in ascii_chart(fig)
        fig.add("s", [1.0])
        assert ">= 2 points" in ascii_chart(fig)

    def test_sparkline(self):
        s = sparkline([1, 2, 3, 4, 5])
        assert len(s) == 5
        assert s[0] != s[-1]
        assert sparkline([2, 2, 2]) == "▄▄▄"
        assert sparkline([]) == ""


class TestOnRealSweep:
    """The analysis tools applied to an actual benchmark sweep."""

    def test_fig4_analysis(self):
        from repro.core import (BlobBenchConfig, RunConfig,
                                PHASE_PAGE_UPLOAD, blob_bench_body,
                                sweep_workers)
        cfg = BlobBenchConfig(total_chunks=32, repeats=1)
        sweep = sweep_workers(lambda: blob_bench_body(cfg),
                              [1, 2, 4, 8, 16, 32], RunConfig(seed=5))
        workers = list(sweep)
        thr = [sweep[w].phase(PHASE_PAGE_UPLOAD).throughput_mb_per_s
               for w in workers]
        times = [sweep[w].phase(PHASE_PAGE_UPLOAD).mean_worker_time
                 for w in workers]
        # Upload times shrink -> speedup grows.
        s = speedup(workers, times)
        assert s[-1] > 3
        # Throughput saturates within the sweep.
        fit = fit_usl(workers, thr)
        assert fit.alpha > 0  # visible contention
