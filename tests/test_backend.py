"""The Backend protocol: one benchmark body, two execution substrates."""

import pytest

from repro.backend import (
    BACKENDS,
    EmulatorBackend,
    GeoBackend,
    SimBackend,
    get_backend,
)
from repro.core import (
    RunConfig,
    TableBenchConfig,
    run_bench,
    sweep_workers,
    table_bench_body,
)
from repro.storage import KB


class TestGetBackend:
    def test_names(self):
        assert set(BACKENDS) == {"sim", "emulator", "geo", "service"}
        assert isinstance(get_backend("sim"), SimBackend)
        assert isinstance(get_backend("emulator"), EmulatorBackend)
        assert isinstance(get_backend("geo"), GeoBackend)
        from repro.backend import ServiceBackend
        assert isinstance(get_backend("service"), ServiceBackend)

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError) as excinfo:
            get_backend("cloud")
        # The message enumerates every registered backend, so typos are
        # self-diagnosing and new registrations show up automatically.
        for name in BACKENDS:
            assert name in str(excinfo.value)

    def test_instance_passthrough(self):
        backend = EmulatorBackend(time_scale=0.5)
        assert get_backend(backend) is backend

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("cloud")

    def test_bad_time_scale(self):
        with pytest.raises(ValueError):
            EmulatorBackend(time_scale=0)


class TestEmulatorBackendRuns:
    CFG = TableBenchConfig(entity_count=4, entity_sizes=(4 * KB,), seed=3)

    def test_bench_runs_threaded(self):
        result = run_bench(
            lambda: table_bench_body(self.CFG),
            RunConfig(workers=3,
                      backend=EmulatorBackend(time_scale=0.002)),
        )
        assert result.workers == 3
        phases = {r.name for r in result.records}
        assert any(p.startswith("insert_") for p in phases)
        assert any(p.startswith("query_") for p in phases)
        # all three workers reported every phase
        for phase in phases:
            assert len([r for r in result.records if r.name == phase]) == 3

    def test_sweep_passes_backend_through(self):
        results = sweep_workers(
            lambda: table_bench_body(self.CFG), (1, 2),
            RunConfig(backend=EmulatorBackend(time_scale=0.002),
                      label="emu"),
        )
        assert sorted(results) == [1, 2]
        assert results[2].workers == 2

    def test_sim_is_the_default_backend(self):
        assert RunConfig().backend == "sim"


class TestGeoBackendRuns:
    CFG = TableBenchConfig(entity_count=4, entity_sizes=(4 * KB,), seed=3)

    def test_geo_timing_matches_sim(self):
        """With no faults the geo backend's figures are bit-identical to
        the sim backend's: bodies hit the same primary, and the
        replicator costs nothing on the primary's clock."""
        sim = run_bench(lambda: table_bench_body(self.CFG),
                        RunConfig(workers=2, backend="sim"))
        geo = run_bench(lambda: table_bench_body(self.CFG),
                        RunConfig(workers=2, backend="geo"))
        assert ([(r.name, r.start, r.end) for r in sim.records]
                == [(r.name, r.start, r.end) for r in geo.records])


class TestCliBackendFlag:
    def test_fig_backend_choices(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["fig", "9", "--backend",
                                          "emulator"])
        assert args.backend == "emulator"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig", "9", "--backend", "cloud"])

    def test_fig_on_emulator_backend_smoke(self, capsys, monkeypatch):
        from repro.bench import BenchScale
        import repro.backend as backend_mod
        import repro.cli as cli
        tiny = BenchScale(
            name="tiny", worker_counts=(1, 2), blob_total_chunks=4,
            blob_repeats=1, queue_total_messages=8,
            queue_message_sizes=(4 * KB,),
            shared_total_transactions=8, shared_think_times=(0.5,),
            table_entity_count=3, table_entity_sizes=(4 * KB,),
        )
        monkeypatch.setattr(cli, "QUICK_SCALE", tiny)
        # compress the emulator's virtual time hard so barrier polls and
        # think times cost microseconds of wall clock in CI
        monkeypatch.setattr(
            backend_mod.EmulatorBackend, "__init__",
            lambda self, time_scale=0.0005: setattr(
                self, "time_scale", time_scale),
        )
        from repro.cli import main
        assert main(["fig", "8", "--backend", "emulator"]) == 0
        out = capsys.readouterr().out
        assert "Fig 8" in out
