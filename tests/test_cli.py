"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig_requires_valid_number(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig", "12"])

    def test_fig_flags(self):
        args = build_parser().parse_args(["fig", "4", "--full", "--csv", "x"])
        assert args.number == "4" and args.full and args.csv == "x"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Fig 4" in out and "Fig 9" in out

    def test_claims(self, capsys):
        assert main(["claims"]) == 0
        out = capsys.readouterr().out
        assert "fig6_get_16k_anomaly" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Extra Small" in out and "2040" in out

    def test_fig9_runs(self, capsys, monkeypatch, tmp_path):
        # Shrink the work: monkeypatch the quick scale used by the CLI.
        from repro.bench import BenchScale
        from repro.storage import KB
        import repro.cli as cli
        tiny = BenchScale(
            name="tiny", worker_counts=(1, 2), blob_total_chunks=4,
            blob_repeats=1, queue_total_messages=20,
            queue_message_sizes=(4 * KB, 16 * KB, 32 * KB),
            shared_total_transactions=20, shared_think_times=(0.5,),
            table_entity_count=5,
            table_entity_sizes=(4 * KB, 32 * KB),
        )
        monkeypatch.setattr(cli, "QUICK_SCALE", tiny)

        csv_dir = str(tmp_path / "csv")
        assert main(["fig", "9", "--csv", csv_dir]) == 0
        out = capsys.readouterr().out
        assert "queue put" in out and "table update" in out
        assert os.path.exists(os.path.join(csv_dir, "fig_9.csv"))

    def test_fig4_runs(self, capsys, monkeypatch):
        from repro.bench import BenchScale
        from repro.storage import KB
        import repro.cli as cli
        tiny = BenchScale(
            name="tiny", worker_counts=(1, 2), blob_total_chunks=4,
            blob_repeats=1, queue_total_messages=20,
            queue_message_sizes=(4 * KB,),
            shared_total_transactions=20, shared_think_times=(0.5,),
            table_entity_count=5, table_entity_sizes=(4 * KB,),
        )
        monkeypatch.setattr(cli, "QUICK_SCALE", tiny)
        assert main(["fig", "4"]) == 0
        out = capsys.readouterr().out
        assert "Fig 4a" in out and "Fig 4b" in out


class TestReport:
    def test_report_command(self, capsys, monkeypatch, tmp_path):
        from repro.bench import BenchScale
        from repro.storage import KB
        import repro.cli as cli
        tiny = BenchScale(
            name="tiny", worker_counts=(1, 2), blob_total_chunks=4,
            blob_repeats=1, queue_total_messages=20,
            queue_message_sizes=(4 * KB, 8 * KB, 16 * KB, 32 * KB, 64 * KB),
            shared_total_transactions=20, shared_think_times=(0.5, 1.0),
            table_entity_count=5,
            table_entity_sizes=(4 * KB, 64 * KB),
        )
        monkeypatch.setattr(cli, "QUICK_SCALE", tiny)
        out_file = str(tmp_path / "report.txt")
        assert main(["report", "--out", out_file]) == 0
        out = capsys.readouterr().out
        assert "reproduction report" in out
        assert "Paper-vs-measured audit" in out
        assert "Scalability analysis" in out
        with open(out_file) as f:
            assert "Fig 9" in f.read()


class TestAudit:
    def test_audit_command(self, capsys, monkeypatch):
        from repro.bench import BenchScale
        from repro.storage import KB
        import repro.cli as cli
        tiny = BenchScale(
            name="tiny", worker_counts=(1, 2), blob_total_chunks=4,
            blob_repeats=1, queue_total_messages=20,
            queue_message_sizes=(4 * KB, 8 * KB, 16 * KB, 32 * KB, 64 * KB),
            shared_total_transactions=20, shared_think_times=(0.5, 1.0),
            table_entity_count=5, table_entity_sizes=(4 * KB, 64 * KB),
        )
        monkeypatch.setattr(cli, "QUICK_SCALE", tiny)
        assert main(["audit"]) == 0  # all checks hold -> exit 0
        out = capsys.readouterr().out
        assert "checks hold" in out
        assert "blob_max_upload_mbps" in out


class TestFaults:
    def test_faults_list(self, capsys):
        assert main(["faults", "list"]) == 0
        out = capsys.readouterr().out
        assert "throttle-storm" in out and "failover" in out
        assert "expo-jitter" in out  # policies advertised too

    def test_faults_run(self, capsys):
        assert main(["faults", "run", "failover", "--tasks", "8",
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "profile           failover" in out
        assert "retry policy      fixed" in out
        assert "completed         True (8/8 results)" in out
        assert "partition_crash=" in out
        assert "availability      queue:" in out

    def test_faults_run_with_trace(self, capsys):
        assert main(["faults", "run", "failover", "--tasks", "8",
                     "--workers", "2", "--policy", "expo-jitter",
                     "--trace"]) == 0
        out = capsys.readouterr().out
        assert "retry policy      expo-jitter" in out
        assert "fault trace" in out and "partition_crash" in out

    def test_faults_run_unknown_profile(self, capsys):
        assert main(["faults", "run", "nope"]) == 2
        assert "unknown fault profile" in capsys.readouterr().err

    def test_faults_run_unknown_policy(self, capsys):
        assert main(["faults", "run", "failover", "--policy", "nope"]) == 2
        assert "unknown retry policy" in capsys.readouterr().err

    def test_faults_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults"])


class TestAllFigureCommands:
    @pytest.fixture
    def tiny_cli(self, monkeypatch):
        from repro.bench import BenchScale
        from repro.storage import KB
        import repro.cli as cli
        tiny = BenchScale(
            name="tiny", worker_counts=(1, 2), blob_total_chunks=4,
            blob_repeats=1, queue_total_messages=20,
            queue_message_sizes=(4 * KB, 16 * KB),
            shared_total_transactions=20, shared_think_times=(0.5, 1.0),
            table_entity_count=5, table_entity_sizes=(4 * KB,),
        )
        monkeypatch.setattr(cli, "QUICK_SCALE", tiny)
        return cli

    @pytest.mark.parametrize("number,expect", [
        ("5", "Fig 5a"),
        ("6", "Fig 6c"),
        ("7", "Fig 7b"),
        ("8", "Fig 8d"),
    ])
    def test_fig_commands(self, tiny_cli, capsys, number, expect):
        assert main(["fig", number]) == 0
        assert expect in capsys.readouterr().out


class TestSeedsParsing:
    """Regression suite for --seeds matrix parsing (ISSUE 8 satellite 4):
    whitespace is accepted; empty lists, empty entries, non-integers, and
    duplicates are rejected up front with a message naming the defect."""

    def test_whitespace_accepted(self):
        from repro.cli import _parse_seeds
        assert _parse_seeds("7, 11") == [7, 11]
        assert _parse_seeds(" 7 ,11 , 13") == [7, 11, 13]
        assert _parse_seeds("-3, 0") == [-3, 0]

    @pytest.mark.parametrize("bad,needle", [
        ("", "empty"),
        ("7,,11", "empty entry"),
        ("7,", "empty entry"),
        (",7", "empty entry"),
        ("7,x", "not an integer"),
        ("7.5", "not an integer"),
        ("7,7", "more than once"),
        ("7,11,7,11", "more than once"),
    ])
    def test_malformed_rejected(self, bad, needle):
        from repro.cli import _parse_seeds
        with pytest.raises(ValueError, match=needle):
            _parse_seeds(bad)

    @pytest.mark.parametrize("argv", [
        ["chaos", "fig6", "--profile", "none", "--seeds", ""],
        ["chaos", "fig6", "--profile", "none", "--seeds", "7,,11"],
        ["chaos", "fig6", "--profile", "none", "--seeds", "7,7"],
        ["chaos", "fig6", "--profile", "none", "--seeds", "7,x"],
        ["chaos", "--profile", "region-outage", "--seeds", "7, 7"],
    ])
    def test_cli_rejects_before_any_run(self, capsys, argv):
        assert main(argv) == 2
        assert "--seeds" in capsys.readouterr().err

    def test_chaos_seeds_whitespace_runs(self, capsys):
        """'7, 11' (with a space) reaches the runner and reports both."""
        assert main(["chaos", "--profile", "region-outage",
                     "--seeds", "7, 11"]) == 0
        assert "2/2 passed" in capsys.readouterr().err


class TestLoadCommand:
    def test_load_poisson_with_slo(self, capsys, tmp_path):
        out_dir = tmp_path / "load"
        assert main(["load", "--process", "poisson", "--rate", "20",
                     "--duration", "12", "--window", "4",
                     "--slo", "p95=2s, err=5%",
                     "--out", str(out_dir)]) == 0
        captured = capsys.readouterr()
        verdict = json.loads(captured.out)
        assert verdict["kind"] == "open-loop-load"
        assert verdict["passed"] is True
        assert verdict["slo_report"]["clean"] is True
        # 3 arrival windows, plus possibly one more if the last
        # completion spills past the arrival horizon.
        assert len(verdict["windows"]) in (3, 4)
        assert (out_dir / "windows.csv").exists()
        assert (out_dir / "verdict.json").exists()

    def test_load_slo_violation_exits_one(self, capsys):
        assert main(["load", "--rate", "20", "--duration", "8",
                     "--slo", "p95=0.001ms", "--warmup", "0",
                     "--cooldown", "0"]) == 1
        verdict = json.loads(capsys.readouterr().out)
        assert verdict["passed"] is False
        assert verdict["slo_report"]["violations"]

    def test_load_find_knee_stable(self, capsys, tmp_path):
        argv = ["load", "--find-knee", "--slo", "p95=120ms",
                "--duration", "6", "--window", "2",
                "--low", "20", "--high", "400",
                "--rel-tol", "0.25", "--max-probes", "8",
                "--out", str(tmp_path)]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert first["knee_rate"] == second["knee_rate"] is not None
        assert first["converged"] is True
        assert (tmp_path / "knee.json").exists()

    def test_load_find_knee_needs_slo(self, capsys):
        assert main(["load", "--find-knee"]) == 2
        assert "--slo" in capsys.readouterr().err

    def test_load_trace_replay(self, capsys, tmp_path):
        trace = tmp_path / "arrivals.txt"
        trace.write_text("0.5\n1.0\n1.5\n2.0\n")
        assert main(["load", "--process", "trace",
                     "--trace-file", str(trace),
                     "--duration", "4"]) == 0
        verdict = json.loads(capsys.readouterr().out)
        assert verdict["totals"]["completions"] == 4
        assert verdict["config"]["arrivals"] == {
            "process": "trace", "seed": 2012, "instants": 4}

    def test_load_trace_file_implies_trace_process(self, capsys, tmp_path):
        trace = tmp_path / "arrivals.txt"
        trace.write_text("0.5\n1.0\n1.5\n2.0\n")
        assert main(["load", "--trace-file", str(trace),
                     "--duration", "4"]) == 0
        verdict = json.loads(capsys.readouterr().out)
        assert verdict["config"]["arrivals"]["process"] == "trace"
        assert verdict["totals"]["completions"] == 4

    def test_load_trace_file_conflicts_with_other_process(self, capsys,
                                                          tmp_path):
        trace = tmp_path / "arrivals.txt"
        trace.write_text("0.5\n")
        assert main(["load", "--process", "poisson",
                     "--trace-file", str(trace)]) == 2
        assert "conflicts" in capsys.readouterr().err

    def test_load_bad_inputs(self, capsys):
        assert main(["load", "--process", "bogus"]) == 2
        assert "unknown arrival process" in capsys.readouterr().err
        assert main(["load", "--slo", "p95=banana"]) == 2
        assert "bad latency bound" in capsys.readouterr().err
        assert main(["load", "--process", "trace"]) == 2
        assert "--trace-file" in capsys.readouterr().err
        assert main(["load", "--mix", "bogus"]) == 2
        assert "unknown mix" in capsys.readouterr().err


class TestArrivalsFlags:
    def test_fig_arrivals_rejects_bad_spec(self, capsys):
        assert main(["fig", "6", "--arrivals", "bogus:3"]) == 2
        assert "unknown arrival process" in capsys.readouterr().err

    def test_geo_arrival_requires_elasticity(self, capsys):
        assert main(["geo", "--profile", "region-outage",
                     "--arrival", "poisson:2"]) == 2
        assert "--elasticity" in capsys.readouterr().err

    def test_geo_elasticity_with_arrival(self, capsys):
        assert main(["geo", "--profile", "region-outage", "--elasticity",
                     "--tasks", "8", "--arrival", "poisson:2"]) == 0
        err = capsys.readouterr().err
        assert "PASS" in err
