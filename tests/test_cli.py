"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig_requires_valid_number(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig", "12"])

    def test_fig_flags(self):
        args = build_parser().parse_args(["fig", "4", "--full", "--csv", "x"])
        assert args.number == "4" and args.full and args.csv == "x"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Fig 4" in out and "Fig 9" in out

    def test_claims(self, capsys):
        assert main(["claims"]) == 0
        out = capsys.readouterr().out
        assert "fig6_get_16k_anomaly" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Extra Small" in out and "2040" in out

    def test_fig9_runs(self, capsys, monkeypatch, tmp_path):
        # Shrink the work: monkeypatch the quick scale used by the CLI.
        from repro.bench import BenchScale
        from repro.storage import KB
        import repro.cli as cli
        tiny = BenchScale(
            name="tiny", worker_counts=(1, 2), blob_total_chunks=4,
            blob_repeats=1, queue_total_messages=20,
            queue_message_sizes=(4 * KB, 16 * KB, 32 * KB),
            shared_total_transactions=20, shared_think_times=(0.5,),
            table_entity_count=5,
            table_entity_sizes=(4 * KB, 32 * KB),
        )
        monkeypatch.setattr(cli, "QUICK_SCALE", tiny)

        csv_dir = str(tmp_path / "csv")
        assert main(["fig", "9", "--csv", csv_dir]) == 0
        out = capsys.readouterr().out
        assert "queue put" in out and "table update" in out
        assert os.path.exists(os.path.join(csv_dir, "fig_9.csv"))

    def test_fig4_runs(self, capsys, monkeypatch):
        from repro.bench import BenchScale
        from repro.storage import KB
        import repro.cli as cli
        tiny = BenchScale(
            name="tiny", worker_counts=(1, 2), blob_total_chunks=4,
            blob_repeats=1, queue_total_messages=20,
            queue_message_sizes=(4 * KB,),
            shared_total_transactions=20, shared_think_times=(0.5,),
            table_entity_count=5, table_entity_sizes=(4 * KB,),
        )
        monkeypatch.setattr(cli, "QUICK_SCALE", tiny)
        assert main(["fig", "4"]) == 0
        out = capsys.readouterr().out
        assert "Fig 4a" in out and "Fig 4b" in out


class TestReport:
    def test_report_command(self, capsys, monkeypatch, tmp_path):
        from repro.bench import BenchScale
        from repro.storage import KB
        import repro.cli as cli
        tiny = BenchScale(
            name="tiny", worker_counts=(1, 2), blob_total_chunks=4,
            blob_repeats=1, queue_total_messages=20,
            queue_message_sizes=(4 * KB, 8 * KB, 16 * KB, 32 * KB, 64 * KB),
            shared_total_transactions=20, shared_think_times=(0.5, 1.0),
            table_entity_count=5,
            table_entity_sizes=(4 * KB, 64 * KB),
        )
        monkeypatch.setattr(cli, "QUICK_SCALE", tiny)
        out_file = str(tmp_path / "report.txt")
        assert main(["report", "--out", out_file]) == 0
        out = capsys.readouterr().out
        assert "reproduction report" in out
        assert "Paper-vs-measured audit" in out
        assert "Scalability analysis" in out
        with open(out_file) as f:
            assert "Fig 9" in f.read()


class TestAudit:
    def test_audit_command(self, capsys, monkeypatch):
        from repro.bench import BenchScale
        from repro.storage import KB
        import repro.cli as cli
        tiny = BenchScale(
            name="tiny", worker_counts=(1, 2), blob_total_chunks=4,
            blob_repeats=1, queue_total_messages=20,
            queue_message_sizes=(4 * KB, 8 * KB, 16 * KB, 32 * KB, 64 * KB),
            shared_total_transactions=20, shared_think_times=(0.5, 1.0),
            table_entity_count=5, table_entity_sizes=(4 * KB, 64 * KB),
        )
        monkeypatch.setattr(cli, "QUICK_SCALE", tiny)
        assert main(["audit"]) == 0  # all checks hold -> exit 0
        out = capsys.readouterr().out
        assert "checks hold" in out
        assert "blob_max_upload_mbps" in out


class TestFaults:
    def test_faults_list(self, capsys):
        assert main(["faults", "list"]) == 0
        out = capsys.readouterr().out
        assert "throttle-storm" in out and "failover" in out
        assert "expo-jitter" in out  # policies advertised too

    def test_faults_run(self, capsys):
        assert main(["faults", "run", "failover", "--tasks", "8",
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "profile           failover" in out
        assert "retry policy      fixed" in out
        assert "completed         True (8/8 results)" in out
        assert "partition_crash=" in out
        assert "availability      queue:" in out

    def test_faults_run_with_trace(self, capsys):
        assert main(["faults", "run", "failover", "--tasks", "8",
                     "--workers", "2", "--policy", "expo-jitter",
                     "--trace"]) == 0
        out = capsys.readouterr().out
        assert "retry policy      expo-jitter" in out
        assert "fault trace" in out and "partition_crash" in out

    def test_faults_run_unknown_profile(self, capsys):
        assert main(["faults", "run", "nope"]) == 2
        assert "unknown fault profile" in capsys.readouterr().err

    def test_faults_run_unknown_policy(self, capsys):
        assert main(["faults", "run", "failover", "--policy", "nope"]) == 2
        assert "unknown retry policy" in capsys.readouterr().err

    def test_faults_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults"])


class TestAllFigureCommands:
    @pytest.fixture
    def tiny_cli(self, monkeypatch):
        from repro.bench import BenchScale
        from repro.storage import KB
        import repro.cli as cli
        tiny = BenchScale(
            name="tiny", worker_counts=(1, 2), blob_total_chunks=4,
            blob_repeats=1, queue_total_messages=20,
            queue_message_sizes=(4 * KB, 16 * KB),
            shared_total_transactions=20, shared_think_times=(0.5, 1.0),
            table_entity_count=5, table_entity_sizes=(4 * KB,),
        )
        monkeypatch.setattr(cli, "QUICK_SCALE", tiny)
        return cli

    @pytest.mark.parametrize("number,expect", [
        ("5", "Fig 5a"),
        ("6", "Fig 6c"),
        ("7", "Fig 7b"),
        ("8", "Fig 8d"),
    ])
    def test_fig_commands(self, tiny_cli, capsys, number, expect):
        assert main(["fig", number]) == 0
        assert expect in capsys.readouterr().out
