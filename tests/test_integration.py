"""Cross-cutting integration tests.

* **Backend equivalence**: the simulator and the emulator share the data
  plane, so the same randomized operation sequence must leave identical
  state behind on both.
* **End-to-end determinism**: full benchmark runs are reproducible
  bit-for-bit given the same seed.
"""

import numpy as np
import pytest

from repro.emulator import EmulatorAccount
from repro.sim import SimStorageAccount
from repro.simkit import Environment
from repro.storage import KB, ManualClock


def random_op_sequence(seed, n_ops=120):
    """A deterministic mixed workload over all three services."""
    rng = np.random.default_rng(seed)
    ops = []
    rows = []
    for i in range(n_ops):
        kind = rng.choice(["blob_put", "page_put", "q_put", "q_getdel",
                           "t_insert", "t_update", "t_delete"])
        ops.append((str(kind), i, int(rng.integers(1, 8))))
    return ops


def apply_ops_sim(ops):
    env = Environment()
    account = SimStorageAccount(env, seed=0)

    def driver():
        blob = account.blob_client()
        queue = account.queue_client()
        table = account.table_client()
        yield from blob.create_container("cont")
        yield from blob.create_page_blob("cont", "pb", 64 * KB)
        yield from queue.create_queue("que")
        yield from table.create_table("Tab")
        inserted = set()
        for kind, i, size in ops:
            payload = bytes([i % 256]) * (size * 64)
            if kind == "blob_put":
                yield from blob.put_block("cont", "bb", f"b{i:04d}", payload)
                yield from blob.put_block_list("cont", "bb", [f"b{i:04d}"],
                                               merge=True)
            elif kind == "page_put":
                offset = (i * 512) % (64 * KB - 512)
                offset -= offset % 512
                yield from blob.put_page("cont", "pb", offset, payload[:512].ljust(512, b"\0"))
            elif kind == "q_put":
                yield from queue.put_message("que", payload)
            elif kind == "q_getdel":
                m = yield from queue.get_message("que", visibility_timeout=3600)
                if m is not None:
                    yield from queue.delete_message("que", m.message_id,
                                                    m.pop_receipt)
            elif kind == "t_insert":
                rk = f"r{i:04d}"
                yield from table.insert("Tab", "p", rk, {"Data": payload})
                inserted.add(rk)
            elif kind == "t_update" and inserted:
                rk = sorted(inserted)[0]
                yield from table.update("Tab", "p", rk, {"Data": payload})
            elif kind == "t_delete" and inserted:
                rk = sorted(inserted)[-1]
                yield from table.delete("Tab", "p", rk)
                inserted.discard(rk)

    env.process(driver())
    env.run()
    return account.state


def apply_ops_emulator(ops):
    account = EmulatorAccount(clock=ManualClock())
    blob = account.blob_client()
    queue = account.queue_client()
    table = account.table_client()
    blob.create_container("cont")
    blob.create_page_blob("cont", "pb", 64 * KB)
    queue.create_queue("que")
    table.create_table("Tab")
    inserted = set()
    for kind, i, size in ops:
        payload = bytes([i % 256]) * (size * 64)
        if kind == "blob_put":
            blob.put_block("cont", "bb", f"b{i:04d}", payload)
            blob.put_block_list("cont", "bb", [f"b{i:04d}"], merge=True)
        elif kind == "page_put":
            offset = (i * 512) % (64 * KB - 512)
            offset -= offset % 512
            blob.put_page("cont", "pb", offset, payload[:512].ljust(512, b"\0"))
        elif kind == "q_put":
            queue.put_message("que", payload)
        elif kind == "q_getdel":
            m = queue.get_message("que", visibility_timeout=3600)
            if m is not None:
                queue.delete_message("que", m.message_id, m.pop_receipt)
        elif kind == "t_insert":
            rk = f"r{i:04d}"
            table.insert("Tab", "p", rk, {"Data": payload})
            inserted.add(rk)
        elif kind == "t_update" and inserted:
            rk = sorted(inserted)[0]
            table.update("Tab", "p", rk, {"Data": payload})
        elif kind == "t_delete" and inserted:
            rk = sorted(inserted)[-1]
            table.delete("Tab", "p", rk)
            inserted.discard(rk)
    return account.state


def state_fingerprint(state):
    """A comparable digest of data-plane state (content, not timing)."""
    cont = state.blobs.get_container("cont")
    blob_part = {}
    for name in cont.list_blobs():
        b = cont.get_blob(name)
        if hasattr(b, "download"):
            blob_part[name] = b.download().to_bytes()
        else:
            blob_part[name] = b.read_all().to_bytes()
    queue = state.queues.get_queue("que")
    queue_part = sorted(m.content.to_bytes() for m in queue._messages)
    table = state.tables.get_table("Tab")
    table_part = {
        (e.partition_key, e.row_key): e.properties()["Data"]
        for pk in table.partitions()
        for e in table.query_partition(pk)
    }
    return blob_part, queue_part, table_part


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_sim_and_emulator_reach_identical_state(seed):
    ops = random_op_sequence(seed)
    sim_state = apply_ops_sim(ops)
    emu_state = apply_ops_emulator(ops)
    assert state_fingerprint(sim_state) == state_fingerprint(emu_state)


def test_full_benchmark_run_deterministic():
    from repro.core import (RunConfig, SeparateQueueBenchConfig, run_bench,
                            separate_queue_bench_body)

    cfg = SeparateQueueBenchConfig(total_messages=40,
                                   message_sizes=(4 * KB,))

    def fingerprint():
        result = run_bench(lambda: separate_queue_bench_body(cfg),
                           RunConfig(workers=3, seed=123))
        return [(r.name, r.worker_id, r.start, r.end, r.ops, r.nbytes)
                for r in sorted(result.records,
                                key=lambda x: (x.name, x.worker_id))]

    assert fingerprint() == fingerprint()


def test_different_seeds_differ():
    from repro.core import (RunConfig, SeparateQueueBenchConfig, run_bench,
                            separate_queue_bench_body, phase_name, OP_PUT)

    cfg = SeparateQueueBenchConfig(total_messages=40,
                                   message_sizes=(4 * KB,))

    def total_time(seed):
        result = run_bench(lambda: separate_queue_bench_body(cfg),
                           RunConfig(workers=3, seed=seed))
        return result.phase(phase_name(OP_PUT, 4 * KB)).mean_worker_time

    assert total_time(1) != total_time(2)
