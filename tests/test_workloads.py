"""Tests for workload generators."""

import json

import pytest

from repro.storage import KB
from repro.workloads import (
    GISTile,
    bag_of_tasks,
    gis_tiles,
    payload_stream,
    size_ladder,
)


class TestSizeLadder:
    def test_paper_ladder(self):
        assert size_ladder() == [4 * KB, 8 * KB, 16 * KB, 32 * KB, 64 * KB]

    def test_custom_bounds(self):
        assert size_ladder(1024, 4096) == [1024, 2048, 4096]

    def test_single_rung(self):
        assert size_ladder(1024, 1024) == [1024]

    def test_validation(self):
        with pytest.raises(ValueError):
            size_ladder(0, 10)
        with pytest.raises(ValueError):
            size_ladder(100, 10)


class TestPayloadStream:
    def test_distinct_same_size(self):
        stream = payload_stream(256, seed=1)
        a, b, c = next(stream), next(stream), next(stream)
        assert a.size == b.size == c.size == 256
        assert len({a.to_bytes(), b.to_bytes(), c.to_bytes()}) == 3

    def test_seeded_reproducible(self):
        s1 = payload_stream(64, seed=9)
        s2 = payload_stream(64, seed=9)
        assert next(s1).to_bytes() == next(s2).to_bytes()


class TestBagOfTasks:
    def test_count_and_schema(self):
        tasks = bag_of_tasks(10, seed=1)
        assert len(tasks) == 10
        for i, t in enumerate(tasks):
            d = json.loads(t.decode())
            assert d["task_id"] == i
            assert 0.01 <= d["work_s"] <= 1.0

    def test_seeded(self):
        assert bag_of_tasks(5, seed=3) == bag_of_tasks(5, seed=3)
        assert bag_of_tasks(5, seed=3) != bag_of_tasks(5, seed=4)

    def test_empty(self):
        assert bag_of_tasks(0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bag_of_tasks(-1)


class TestGISTiles:
    def test_grid_layout(self):
        tiles = gis_tiles(grid=4, seed=0)
        assert len(tiles) == 16
        assert {(t.x, t.y) for t in tiles} == {(x, y) for x in range(4)
                                               for y in range(4)}

    def test_seeded(self):
        a = gis_tiles(grid=3, seed=5)
        b = gis_tiles(grid=3, seed=5)
        assert [(t.base_polygons, t.overlay_polygons) for t in a] == \
            [(t.base_polygons, t.overlay_polygons) for t in b]

    def test_hotspot_skew(self):
        """Density must be heavily skewed and spatially clustered."""
        tiles = gis_tiles(grid=8, seed=7)
        loads = sorted(t.base_polygons * t.overlay_polygons for t in tiles)
        assert loads[-1] > 20 * loads[len(loads) // 2]  # skew
        # Clustering: the top-4 densest tiles are near one another.
        top = sorted(tiles, key=lambda t: -t.base_polygons * t.overlay_polygons)[:4]
        xs = [t.x for t in top]
        ys = [t.y for t in top]
        assert max(xs) - min(xs) <= 4 and max(ys) - min(ys) <= 4

    def test_message_roundtrip(self):
        tile = gis_tiles(grid=2, seed=1)[3]
        assert GISTile.from_message(tile.to_message()) == tile

    def test_validation(self):
        with pytest.raises(ValueError):
            gis_tiles(grid=0)
