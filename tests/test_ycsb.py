"""Tests for the YCSB-style workloads."""

import dataclasses

import numpy as np
import pytest

from repro.core import RunConfig, run_bench
from repro.workloads import (
    WORKLOAD_A,
    WORKLOAD_B,
    WORKLOAD_C,
    WORKLOAD_D,
    WORKLOAD_E,
    WORKLOAD_F,
    YCSBWorkload,
    ZipfianGenerator,
    ycsb_worker_body,
)


class TestZipfian:
    def test_range(self):
        z = ZipfianGenerator(100, seed=1)
        samples = z.sample(1000)
        assert samples.min() >= 0
        assert samples.max() < 100

    def test_skew(self):
        """Low keys must dominate: head heavier than a uniform draw."""
        z = ZipfianGenerator(1000, seed=2)
        samples = z.sample(4000)
        head_mass = np.mean(samples < 10)
        assert head_mass > 0.2  # uniform would give ~0.01

    def test_seeded(self):
        a = ZipfianGenerator(100, seed=3).sample(50)
        b = ZipfianGenerator(100, seed=3).sample(50)
        assert (a == b).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=1.5)

    def test_n_one(self):
        z = ZipfianGenerator(1, seed=1)
        assert all(z.next() == 0 for _ in range(20))


class TestWorkloadSpecs:
    def test_core_workload_mixes(self):
        assert WORKLOAD_A.read == WORKLOAD_A.update == 0.5
        assert WORKLOAD_B.read == 0.95
        assert WORKLOAD_C.read == 1.0
        assert WORKLOAD_D.distribution == "latest"
        assert WORKLOAD_E.scan == 0.95
        assert WORKLOAD_F.update == 0.5

    def test_proportions_validated(self):
        with pytest.raises(ValueError):
            YCSBWorkload("bad", read=0.5, update=0.2, insert=0.0, scan=0.0)
        with pytest.raises(ValueError):
            YCSBWorkload("bad", read=1.0, update=0.0, insert=0.0, scan=0.0,
                         distribution="bogus")

    def test_operation_stream_proportions(self):
        ops = list(WORKLOAD_B.operations(2000, seed=5))
        kinds = [op for op, _ in ops]
        read_frac = kinds.count("read") / len(kinds)
        assert 0.90 < read_frac < 0.99

    def test_insert_keys_are_fresh(self):
        wl = YCSBWorkload("ins", read=0.0, update=0.0, insert=1.0, scan=0.0,
                          record_count=10)
        ops = list(wl.operations(5, seed=1))
        keys = [k for _, k in ops]
        assert keys == [10, 11, 12, 13, 14]

    def test_latest_distribution_prefers_recent(self):
        wl = dataclasses.replace(WORKLOAD_D, record_count=1000)
        keys = [k for op, k in wl.operations(2000, seed=7) if op == "read"]
        assert np.mean(np.array(keys) > 900) > 0.4

    def test_stream_deterministic(self):
        a = list(WORKLOAD_A.operations(100, seed=9))
        b = list(WORKLOAD_A.operations(100, seed=9))
        assert a == b


class TestYCSBDriver:
    @pytest.fixture(scope="class")
    def result(self):
        wl = dataclasses.replace(WORKLOAD_A, record_count=40)
        return run_bench(lambda: ycsb_worker_body(wl, ops_per_worker=30),
                         RunConfig(workers=2, seed=4))

    def test_phases_recorded(self, result):
        names = set(result.phase_names())
        assert "ycsb_read" in names and "ycsb_update" in names
        total = sum(result.phase(n).total_ops for n in names)
        assert total == 60  # 30 ops x 2 workers

    def test_update_costlier_than_read(self, result):
        read = result.phase("ycsb_read").mean_op_time
        update = result.phase("ycsb_update").mean_op_time
        assert update > read

    def test_scan_workload_runs(self):
        wl = dataclasses.replace(WORKLOAD_E, record_count=30,
                                 max_scan_length=5)
        result = run_bench(lambda: ycsb_worker_body(wl, ops_per_worker=15),
                           RunConfig(workers=2, seed=4))
        assert result.phase("ycsb_scan").total_ops > 0
