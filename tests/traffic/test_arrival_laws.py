"""Property battery for the arrival processes (ISSUE 8 satellite 1).

Laws pinned here:

* Poisson inter-arrival gaps are exponential — at a fixed seed the
  sample mean and variance of the gaps stay inside KS-style bounds of
  the theoretical ``1/λ`` and ``1/λ²``;
* the inhomogeneous processes' realised counts match their analytic
  rate integrals (``expected_count``) within Poisson noise;
* same spec ⇒ byte-identical streams, different seeds ⇒ different
  streams (determinism is what makes backend equivalence possible);
* trace replay reproduces its input exactly.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic import (
    ArrivalSpec,
    DiurnalProcess,
    MMPPProcess,
    PoissonProcess,
    RampProcess,
    TraceReplayProcess,
    build_process,
    parse_arrival_spec,
)

rates = st.floats(min_value=0.5, max_value=200.0,
                  allow_nan=False, allow_infinity=False)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


# -- exponential gap law -----------------------------------------------------

@given(rates, seeds)
@settings(max_examples=40, deadline=None)
def test_poisson_gaps_are_exponential(rate, seed):
    """Mean and variance of the gaps track 1/λ and 1/λ² (CLT bounds)."""
    process = PoissonProcess(rate, seed)
    # Enough arrivals for the CLT bound regardless of the drawn rate.
    n = 2000
    times = process.take(n)
    gaps = [b - a for a, b in zip([0.0] + times, times)]
    mean = sum(gaps) / n
    var = sum((g - mean) ** 2 for g in gaps) / (n - 1)
    # X ~ Exp(λ): E[X]=1/λ, sd of the sample mean is 1/(λ√n); allow 5σ.
    assert abs(mean - 1 / rate) <= 5 / (rate * math.sqrt(n))
    # Var[X]=1/λ²; the sample variance of an exponential has sd
    # √(8)/λ²/√n (fourth-moment formula); allow 6σ for tail safety.
    assert abs(var - 1 / rate**2) <= 6 * math.sqrt(8) / (rate**2 * math.sqrt(n))


@given(rates, seeds)
@settings(max_examples=30, deadline=None)
def test_poisson_count_matches_rate_integral(rate, seed):
    duration = 50.0
    expected = PoissonProcess(rate, seed).expected_count(duration)
    observed = len(PoissonProcess(rate, seed).times(duration))
    # Poisson(μ) has sd √μ; allow 5σ plus slack for tiny μ.
    assert abs(observed - expected) <= 5 * math.sqrt(expected) + 3


# -- inhomogeneous rate integrals --------------------------------------------

@given(rates, seeds,
       st.floats(min_value=0.0, max_value=0.9),
       st.floats(min_value=20.0, max_value=300.0))
@settings(max_examples=30, deadline=None)
def test_diurnal_count_matches_rate_integral(rate, seed, amp, period):
    process = DiurnalProcess(rate, seed, amp=amp, period=period)
    duration = 2.0 * period  # two full cycles
    expected = process.expected_count(duration)
    observed = len(process.times(duration))
    assert abs(observed - expected) <= 5 * math.sqrt(expected) + 3


@given(rates, seeds,
       st.floats(min_value=0.0, max_value=50.0),
       st.floats(min_value=5.0, max_value=120.0))
@settings(max_examples=30, deadline=None)
def test_ramp_count_matches_rate_integral(rate, seed, start, ramp):
    process = RampProcess(rate, seed, start=start, ramp=ramp)
    duration = ramp + 40.0  # ramp plus a steady tail
    expected = process.expected_count(duration)
    observed = len(process.times(duration))
    assert abs(observed - expected) <= 5 * math.sqrt(expected) + 3


@given(rates, seeds)
@settings(max_examples=30, deadline=None)
def test_mmpp_long_run_rate(rate, seed):
    """The on/off modulation preserves the requested average rate."""
    process = MMPPProcess(rate, seed, mean_on=1.0, mean_off=3.0)
    duration = 200.0
    expected = process.expected_count(duration)
    observed = len(process.times(duration))
    # Count variance of a two-state MMPP: Poisson part λ̄T plus the
    # integrated rate-modulation term 2·σ_λ²·τ_c·T, where σ_λ² is the
    # variance of the modulated rate and τ_c the chain's correlation
    # time (mean_on·mean_off / cycle).
    cycle = process.mean_on + process.mean_off
    p_on = process.mean_on / cycle
    sigma2 = (process.rate_on - process.rate_off) ** 2 * p_on * (1 - p_on)
    tau_c = process.mean_on * process.mean_off / cycle
    sd = math.sqrt(expected + 2.0 * sigma2 * tau_c * duration)
    assert abs(observed - expected) <= 5 * sd + 5


# -- determinism -------------------------------------------------------------

@pytest.mark.parametrize("name,params", [
    ("poisson", {}),
    ("mmpp", {"mean_on": 2.0, "mean_off": 4.0}),
    ("diurnal", {"amp": 0.5, "period": 60.0}),
    ("ramp", {"start": 2.0, "ramp": 20.0}),
])
def test_same_seed_byte_identical_streams(name, params):
    a = build_process(name, 20.0, 7, params=params).times(30.0)
    b = build_process(name, 20.0, 7, params=params).times(30.0)
    assert a == b  # exact float equality: byte-identical draws
    # and times() does not consume hidden state:
    process = build_process(name, 20.0, 7, params=params)
    assert process.times(30.0) == process.times(30.0)


@given(seeds, seeds)
@settings(max_examples=20, deadline=None)
def test_different_seeds_differ(seed_a, seed_b):
    a = PoissonProcess(30.0, seed_a).times(20.0)
    b = PoissonProcess(30.0, seed_b).times(20.0)
    if seed_a == seed_b:
        assert a == b
    else:
        assert a != b


@given(st.lists(st.floats(min_value=0.0, max_value=1e4,
                          allow_nan=False, allow_infinity=False),
                max_size=50).map(sorted))
def test_trace_replay_is_exact(instants):
    process = TraceReplayProcess(instants)
    horizon = (instants[-1] + 1.0) if instants else 1.0
    assert process.times(horizon) == [float(t) for t in instants]
    assert process.expected_count(horizon) == len(instants)


def test_trace_rejects_bad_input():
    with pytest.raises(ValueError):
        TraceReplayProcess([3.0, 1.0])
    with pytest.raises(ValueError):
        TraceReplayProcess([-1.0])


def test_take_exhaustion_is_loud():
    with pytest.raises(ValueError, match="exhausted"):
        TraceReplayProcess([1.0, 2.0]).take(5)


# -- spec surface ------------------------------------------------------------

def test_spec_roundtrip_and_parse():
    spec = parse_arrival_spec("mmpp:40:on=2,off=6", seed=9)
    assert spec.process == "mmpp" and spec.rate == 40.0
    assert dict(spec.params) == {"mean_on": 2.0, "mean_off": 6.0}
    assert spec.build().times(10.0) == spec.build().times(10.0)
    assert spec.with_rate(80.0).rate == 80.0


@pytest.mark.parametrize("bad", [
    "bogus:10", "poisson", "poisson:abc", "mmpp:10:on",
    "diurnal:10:amp=2", "trace:5",
])
def test_parse_rejects_malformed_specs(bad):
    with pytest.raises(ValueError):
        parse_arrival_spec(bad)


def test_spec_describe_is_stable():
    spec = ArrivalSpec(process="diurnal", rate=30.0, seed=3,
                       params=(("amp", 0.5),))
    assert spec.describe() == {"process": "diurnal", "seed": 3,
                               "rate": 30.0, "amp": 0.5}
