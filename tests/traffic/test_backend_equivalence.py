"""Backend equivalence for the open-loop engine (ISSUE 8 satellite 3).

The engine precomputes its whole operation schedule from the arrival
seed, so the *issued operation sequence* (instants, services, ops, keys,
outcomes) must be byte-identical across backends at a fixed seed — the
schedule digest pins it on ``sim`` vs ``emulator``, plus one ``service``
wire smoke.  The second half pins the *off* path: with the traffic
engine disabled (``arrivals=None``), the seeded sim figures and the
golden trace digest are bit-identical to the pre-engine codebase, and
the knee search is deterministic (same seed ⇒ same knee).
"""

import dataclasses

import pytest

from repro.traffic import (
    ArrivalSpec,
    LoadConfig,
    SLOSpec,
    build_schedule,
    find_knee,
    run_load,
    schedule_digest,
)

SPEC = ArrivalSpec(process="poisson", rate=15.0, seed=7)


def config(**overrides) -> LoadConfig:
    base = dict(arrivals=SPEC, duration=8.0, window_s=2.0, mix="mixed",
                payload_bytes=1024, seed=2012, preload=4)
    base.update(overrides)
    return LoadConfig(**base)


# -- schedule determinism ----------------------------------------------------

def test_schedule_is_pure_function_of_the_spec():
    cfg = config()
    a, b = build_schedule(cfg), build_schedule(cfg)
    assert a == b
    assert schedule_digest(a) == schedule_digest(b)


def test_schedule_changes_with_seed_and_mix():
    base = schedule_digest(build_schedule(config()))
    other_seed = config(
        arrivals=dataclasses.replace(SPEC, seed=8))
    assert schedule_digest(build_schedule(other_seed)) != base
    assert schedule_digest(build_schedule(config(mix="queue"))) != base


# -- sim vs emulator ---------------------------------------------------------

def test_sim_and_emulator_issue_identical_sequences():
    """Same seed ⇒ same ops in the same order with the same outcomes,
    on the DES and on the threaded wall-clock emulator."""
    sim = run_load(config(backend="sim"))
    emu = run_load(config(backend="emulator"))
    assert sim.digest == emu.digest
    assert (sim.aggregator.total_completions
            == emu.aggregator.total_completions
            == len(build_schedule(config())))
    assert sim.aggregator.total_errors == emu.aggregator.total_errors == 0


def test_sim_rerun_is_bit_identical():
    a = run_load(config())
    b = run_load(config())
    assert a.digest == b.digest
    assert a.aggregator == b.aggregator
    assert [r.to_dict() for r in a.rows] == [r.to_dict() for r in b.rows]


@pytest.mark.slow
def test_service_wire_smoke_matches_sim_sequence():
    """The HTTP SN/DN cluster issues the same seeded op sequence."""
    cfg = config(duration=3.0, mix="queue", max_clients=4)
    svc = run_load(dataclasses.replace(cfg, backend="service"))
    sim = run_load(cfg)
    assert svc.digest == sim.digest
    assert svc.aggregator.total_completions > 0


# -- the engine-off path stays bit-identical ---------------------------------

def test_figures_unchanged_with_engine_off():
    """arrivals=None reproduces the pre-engine seeded figures exactly."""
    from repro.core import (RunConfig, SeparateQueueBenchConfig,
                            run_bench, separate_queue_bench_body)
    from repro.storage import KB

    mini = SeparateQueueBenchConfig(total_messages=8,
                                    message_sizes=(4 * KB,))

    def run(**overrides):
        rc = RunConfig(workers=2, seed=2012, label="golden", **overrides)
        return run_bench(lambda: separate_queue_bench_body(mini), rc)

    plain = run()
    explicit_off = run(arrivals=None)
    assert plain.phase_names() == explicit_off.phase_names()
    for name in plain.phase_names():
        assert plain.phase(name) == explicit_off.phase(name)


def test_golden_trace_digest_unchanged_with_engine_off():
    """The observability golden digest is the cross-PR bit-stability
    anchor; the traffic engine lands without moving it."""
    from tests.observability.test_golden_trace import (
        GOLDEN_DIGEST, run_mini)

    assert run_mini(trace=True).trace.digest() == GOLDEN_DIGEST


def test_arrivals_change_figures_but_stay_deterministic():
    """arrivals staggers starts (different numbers) deterministically
    (same spec twice ⇒ identical numbers)."""
    from repro.core import (RunConfig, SeparateQueueBenchConfig,
                            run_bench, separate_queue_bench_body)
    from repro.storage import KB

    mini = SeparateQueueBenchConfig(total_messages=8,
                                    message_sizes=(4 * KB,))
    spec = ArrivalSpec(process="poisson", rate=0.5, seed=3)

    def run(arrivals):
        rc = RunConfig(workers=2, seed=2012, label="open",
                       arrivals=arrivals)
        return run_bench(lambda: separate_queue_bench_body(mini), rc)

    a, b, off = run(spec), run(spec), run(None)
    assert a.phase_names() == b.phase_names()
    for name in a.phase_names():
        assert a.phase(name) == b.phase(name)
    staggered = {name: a.phase(name).wall_time for name in a.phase_names()}
    plain = {name: off.phase(name).wall_time for name in off.phase_names()}
    assert staggered != plain


# -- knee determinism --------------------------------------------------------

def test_find_knee_is_deterministic():
    cfg = config(duration=6.0, mix="queue",
                 slo=SLOSpec.parse("p95=120ms"))
    a = find_knee(cfg, low=20.0, high=400.0, rel_tol=0.25, max_probes=8)
    b = find_knee(cfg, low=20.0, high=400.0, rel_tol=0.25, max_probes=8)
    assert a.knee_rate is not None
    assert a.converged
    assert a.knee_rate == b.knee_rate
    assert [p.to_dict() for p in a.probes] == [p.to_dict() for p in b.probes]


def test_find_knee_reports_violations_in_verdict():
    cfg = config(duration=6.0, mix="queue",
                 slo=SLOSpec.parse("p95=120ms"))
    result = find_knee(cfg, low=20.0, high=400.0, rel_tol=0.25,
                       max_probes=8)
    verdict = result.verdict()
    assert verdict["kind"] == "saturation-search"
    # The bracket top probed unclean, so some probe carries violations.
    assert any(not p["clean"] and p["violation_windows"] > 0
               for p in verdict["probes"])


def test_find_knee_degenerate_brackets():
    tight = config(duration=6.0, mix="queue",
                   slo=SLOSpec.parse("p95=0.001ms"))
    res = find_knee(tight, low=1.0, high=10.0, max_probes=4)
    assert res.knee_rate is None and res.converged
    loose = config(duration=6.0, mix="queue",
                   slo=SLOSpec.parse("p95=60s"))
    res = find_knee(loose, low=1.0, high=10.0, max_probes=4)
    assert res.knee_rate == 10.0


def test_find_knee_requires_slo():
    with pytest.raises(ValueError):
        find_knee(config())


# -- SLO verdict surface -----------------------------------------------------

def test_slo_violation_windows_in_json_verdict(tmp_path):
    result = run_load(config(
        duration=6.0, slo=SLOSpec.parse("p95=0.001ms",
                                        warmup_windows=0,
                                        cooldown_windows=0)))
    assert not result.passed
    verdict = result.verdict()
    violations = verdict["slo_report"]["violations"]
    assert violations and all(v["metric"] == "p95_ms" for v in violations)
    paths = result.write_artifacts(str(tmp_path))
    assert sorted(p.rsplit("/", 1)[-1] for p in paths) == [
        "verdict.json", "windows.csv"]
    csv_text = (tmp_path / "windows.csv").read_text()
    header, *rows = csv_text.strip().splitlines()
    assert header.startswith("window,start,end,arrivals")
    assert len(rows) == len(result.rows)
