"""Flock-mode equivalence and the 100k-client memory smoke.

Flock mode is a *representation* change only: the columnar schedule must
match :func:`build_schedule` element for element, and a flock run must
produce the byte-identical digest (and equal aggregator state) of a
classic per-process run with the same seed.  The subprocess smoke pins
the point of the whole exercise: a 100k-client open-loop load fits in a
small, bounded RSS.
"""

import dataclasses
import json
import os
import subprocess
import sys

import pytest

from repro.traffic import (
    ArrivalSpec,
    LoadConfig,
    build_flock_schedule,
    build_schedule,
    run_load,
    schedule_digest,
)

SPEC = ArrivalSpec(process="poisson", rate=25.0, seed=11)


def config(**overrides) -> LoadConfig:
    base = dict(arrivals=SPEC, duration=6.0, window_s=2.0, mix="mixed",
                payload_bytes=512, seed=31, preload=4)
    base.update(overrides)
    return LoadConfig(**base)


# -- columnar schedule parity ------------------------------------------------

class TestScheduleParity:
    def test_flock_schedule_matches_classic_element_for_element(self):
        cfg = config()
        classic = build_schedule(cfg)
        flock = build_flock_schedule(cfg)
        assert len(flock) == len(classic)
        assert list(flock.iter_ops()) == classic
        assert schedule_digest(flock.iter_ops()) == schedule_digest(classic)

    def test_parity_holds_for_every_mix(self):
        from repro.traffic import MIXES
        for mix in MIXES:
            cfg = config(mix=mix, duration=3.0)
            assert list(build_flock_schedule(cfg).iter_ops()) \
                == build_schedule(cfg)

    def test_clients_multiply_the_offered_rate(self):
        doubled = config(clients=2)
        pre_scaled = config(
            arrivals=dataclasses.replace(SPEC, rate=SPEC.rate * 2))
        assert build_schedule(doubled) == build_schedule(pre_scaled)


# -- run equivalence ---------------------------------------------------------

class TestRunEquivalence:
    def test_flock_run_matches_classic_run(self):
        classic = run_load(config())
        flock = run_load(config(flock_size=64))
        assert flock.digest == classic.digest
        assert flock.aggregator == classic.aggregator
        assert ([r.to_dict() for r in flock.rows]
                == [r.to_dict() for r in classic.rows])

    def test_calendar_flock_matches_heap_flock(self):
        heap = run_load(config(flock_size=64))
        calendar = run_load(config(flock_size=64, scheduler="calendar"))
        assert calendar.digest == heap.digest
        assert calendar.aggregator == heap.aggregator

    def test_tiny_flock_size_still_matches(self):
        """Chunk boundaries are invisible: chunk=1 flushes per op."""
        classic = run_load(config(duration=2.0))
        flock = run_load(config(duration=2.0, flock_size=1))
        assert flock.digest == classic.digest
        assert flock.aggregator == classic.aggregator

    def test_verdict_carries_resources_block(self):
        verdict = run_load(config(flock_size=64)).verdict()
        resources = verdict["resources"]
        assert resources["wall_clock_s"] > 0
        assert resources["kernel_events"] > 0
        assert resources["kernel_events_per_sec"] > 0
        assert verdict["config"]["flock_size"] == 64


# -- config validation -------------------------------------------------------

class TestConfigValidation:
    def test_clients_must_be_positive(self):
        with pytest.raises(ValueError, match="clients"):
            config(clients=0)

    def test_clients_reject_trace_replay(self):
        trace_spec = ArrivalSpec(process="trace",
                                 trace=(0.5, 1.0, 1.5), seed=1)
        with pytest.raises(ValueError, match="trace"):
            config(arrivals=trace_spec, clients=2)

    def test_flock_size_must_be_non_negative(self):
        with pytest.raises(ValueError, match="flock_size"):
            config(flock_size=-1)

    def test_flock_mode_is_des_only(self):
        with pytest.raises(ValueError, match="flock"):
            config(backend="emulator", flock_size=64)

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError, match="scheduler"):
            config(scheduler="wheel")

    def test_describe_emits_scale_knobs_only_when_engaged(self):
        plain = config().describe()
        assert "clients" not in plain
        assert "flock_size" not in plain
        assert "scheduler" not in plain
        tuned = config(clients=3, flock_size=64,
                       scheduler="calendar").describe()
        assert tuned["clients"] == 3
        assert tuned["flock_size"] == 64
        assert tuned["scheduler"] == "calendar"


# -- the scale smoke ---------------------------------------------------------

_SMOKE = """
import json
import resource
import sys

from repro.traffic import ArrivalSpec, LoadConfig, run_load

config = LoadConfig(
    arrivals=ArrivalSpec(process="poisson", rate=0.001, seed=5),
    duration=5.0, mix="queue", clients=100_000, flock_size=2048,
    scheduler="calendar")
result = run_load(config)
peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
if sys.platform == "darwin":
    peak_kb /= 1024
json.dump({"ops": result.aggregator.total_completions,
           "clients": config.clients,
           "peak_rss_mb": peak_kb / 1024,
           "resources": result.resources}, sys.stdout)
"""


@pytest.mark.slow
def test_100k_client_flock_load_fits_in_bounded_rss():
    """100k clients in a fresh interpreter stay under a 1 GB ceiling.

    A subprocess keeps the child's ``ru_maxrss`` high-water mark clean
    of whatever the pytest session has already allocated.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH")) if p)
    proc = subprocess.run([sys.executable, "-c", _SMOKE],
                          capture_output=True, text=True, env=env,
                          cwd=os.path.dirname(os.path.dirname(
                              os.path.dirname(os.path.abspath(__file__)))),
                          timeout=300)
    assert proc.returncode == 0, proc.stderr
    out = json.loads(proc.stdout)
    assert out["clients"] == 100_000
    assert out["ops"] > 0
    assert out["peak_rss_mb"] < 1024, (
        f"100k-client flock run peaked at {out['peak_rss_mb']:.0f} MB")
    assert out["resources"]["kernel_events"] > 0
