"""``StatsAggregator.record_chunk`` == a sequential ``record`` loop.

The chunked path vectorizes validation and window indexing but must
leave the aggregator in *exactly* the state the scalar path would —
same windows, same histogram buckets, same inflight areas — so flock
and classic runs stay comparable with plain ``==``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic import StatsAggregator

WINDOW_S = 2.0


def _scalar(ops):
    agg = StatsAggregator(WINDOW_S)
    for start, lat, ok, nbytes, op in ops:
        agg.record(start, start + lat, ok=ok, nbytes=nbytes, operation=op)
    return agg


def _chunked(ops, chunk):
    agg = StatsAggregator(WINDOW_S)
    for base in range(0, len(ops), chunk):
        part = ops[base:base + chunk]
        agg.record_chunk([o[0] for o in part],
                         [o[0] + o[1] for o in part],
                         oks=[o[2] for o in part],
                         nbytes=[o[3] for o in part],
                         operations=[o[4] for o in part])
    return agg


_OP = st.tuples(
    st.floats(min_value=0.0, max_value=30.0),          # start
    st.floats(min_value=0.0, max_value=9.0),           # latency
    st.booleans(),                                     # ok
    st.integers(min_value=0, max_value=4096),          # nbytes
    st.sampled_from((None, "", "queue.put", "blob.get")))


class TestChunkEquivalence:
    @given(ops=st.lists(_OP, min_size=0, max_size=60),
           chunk=st.sampled_from((1, 3, 7, 64)))
    @settings(max_examples=60, deadline=None)
    def test_chunked_state_equals_scalar_state(self, ops, chunk):
        scalar = _scalar(ops)
        chunked = _chunked(ops, chunk)
        assert chunked == scalar
        assert ([r.to_dict() for r in chunked.rows()]
                == [r.to_dict() for r in scalar.rows()])

    def test_boundary_crossing_op_splits_inflight_identically(self):
        """One op spanning three windows: the inflight split is exact."""
        ops = [(1.5, 4.0, True, 10, "blob.get")]
        assert _chunked(ops, 8) == _scalar(ops)
        rows = {r.index: r for r in _chunked(ops, 8).rows()}
        assert rows[0].mean_in_flight == pytest.approx(0.5 / WINDOW_S)
        assert rows[1].mean_in_flight == pytest.approx(2.0 / WINDOW_S)
        assert rows[2].mean_in_flight == pytest.approx(1.5 / WINDOW_S)

    def test_defaults_mean_ok_zero_bytes_unattributed(self):
        agg = StatsAggregator(WINDOW_S)
        agg.record_chunk([0.0, 1.0], [0.5, 1.5])
        ref = StatsAggregator(WINDOW_S)
        ref.record(0.0, 0.5)
        ref.record(1.0, 1.5)
        assert agg == ref
        assert agg.total_errors == 0 and agg.total_bytes == 0


class TestChunkValidation:
    def test_empty_chunk_is_a_no_op(self):
        agg = StatsAggregator(WINDOW_S)
        agg.record_chunk([], [])
        assert agg == StatsAggregator(WINDOW_S)
        assert agg.total_completions == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            StatsAggregator(WINDOW_S).record_chunk([0.0, 1.0], [0.5])

    def test_end_before_start_rejected_with_offender(self):
        with pytest.raises(ValueError, match=r"ends \(1\.0\) before"):
            StatsAggregator(WINDOW_S).record_chunk([0.0, 2.0], [0.5, 1.0])

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError, match="start must be >= 0"):
            StatsAggregator(WINDOW_S).record_chunk([-0.5], [0.5])

    def test_failed_chunk_leaves_totals_untouched(self):
        agg = StatsAggregator(WINDOW_S)
        with pytest.raises(ValueError):
            agg.record_chunk([0.0, -1.0], [1.0, 2.0])
        assert agg.total_arrivals == 0
        assert agg.total_completions == 0
