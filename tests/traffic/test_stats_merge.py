"""Merge-law battery for the windowed StatsAggregator (ISSUE 8 satellite 2).

The aggregator's state must be a commutative monoid so per-worker /
per-partition aggregators combine into exactly what one offline pass
over all operations produces: associativity, commutativity, identity,
partition-merge equivalence under arbitrary hypothesis-drawn partitions,
percentile error bounded by the log-bucket width, and exact in-flight
attribution across window boundaries (no double count, no drop).
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability.histogram import DEFAULT_GROWTH
from repro.traffic import StatsAggregator

#: One operation: (start, latency, ok, nbytes).
operations = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0,
                  allow_nan=False, allow_infinity=False),
        st.floats(min_value=0.0, max_value=30.0,
                  allow_nan=False, allow_infinity=False),
        st.booleans(),
        st.integers(min_value=0, max_value=1 << 20),
    ),
    max_size=60,
)

window_widths = st.floats(min_value=0.5, max_value=10.0,
                          allow_nan=False, allow_infinity=False)


def fill(agg, ops):
    for start, latency, ok, nbytes in ops:
        # Label from the op's content (not its position) so any
        # partition of the list assigns identical labels.
        agg.record(start, start + latency, ok=ok, nbytes=nbytes,
                   operation=f"op{nbytes % 3}")
    return agg


def offline(ops, window_s):
    """The single-pass reference aggregate."""
    return fill(StatsAggregator(window_s), ops)


@given(operations, operations, window_widths)
@settings(max_examples=60, deadline=None)
def test_merge_is_commutative(a, b, w):
    x = fill(StatsAggregator(w), a)
    y = fill(StatsAggregator(w), b)
    assert x.merge(y) == y.merge(x)


@given(operations, operations, operations, window_widths)
@settings(max_examples=40, deadline=None)
def test_merge_is_associative(a, b, c, w):
    x, y, z = (fill(StatsAggregator(w), ops) for ops in (a, b, c))
    assert x.merge(y).merge(z) == x.merge(y.merge(z))


@given(operations, window_widths)
@settings(max_examples=60, deadline=None)
def test_empty_is_identity(a, w):
    x = fill(StatsAggregator(w), a)
    assert x.merge(StatsAggregator(w)) == x
    assert StatsAggregator(w).merge(x) == x


@given(operations, window_widths, st.integers(min_value=1, max_value=5),
       st.randoms(use_true_random=False))
@settings(max_examples=60, deadline=None)
def test_partition_merge_equals_offline_single_pass(ops, w, parts, rng):
    """Any partition of the ops over any number of workers merges back
    into the offline aggregate — the property that makes per-worker
    streaming stats trustworthy."""
    partitions = [[] for _ in range(parts)]
    for op in ops:
        partitions[rng.randrange(parts)].append(op)
    merged = StatsAggregator(w)
    for part in partitions:
        merged = merged.merge(fill(StatsAggregator(w), part))
    assert merged == offline(ops, w)


@given(operations, window_widths)
@settings(max_examples=60, deadline=None)
def test_no_window_boundary_double_count_or_drop(ops, w):
    """Totals across windows equal the per-operation ground truth: every
    arrival/completion lands in exactly one window, and the in-flight
    integral sums to exactly the total busy time."""
    agg = offline(ops, w)
    rows = agg.rows()
    assert sum(r.arrivals for r in rows) == len(ops)
    assert sum(r.completions for r in rows) == len(ops)
    assert sum(r.errors for r in rows) == sum(1 for o in ops if not o[2])
    total_area = sum(r.mean_in_flight * w for r in rows)
    total_latency = sum(o[1] for o in ops)
    assert math.isclose(total_area, total_latency,
                        rel_tol=1e-7, abs_tol=1e-7)
    total_bytes = sum(r.mb_per_s * w * 1024 * 1024 for r in rows)
    assert math.isclose(total_bytes, sum(o[3] for o in ops),
                        rel_tol=1e-7, abs_tol=1e-4)


@given(operations.filter(lambda v: len(v) > 0))
@settings(max_examples=60, deadline=None)
def test_percentiles_within_bucket_error(ops):
    """Windowed percentiles stay within one log-bucket of the exact
    order statistics (the Histogram's documented error bound)."""
    agg = offline(ops, 1e9)  # one window: compare against all latencies
    row = agg.rows()[0]
    latencies = sorted(o[1] for o in ops)

    def exact(q):
        return latencies[min(len(latencies) - 1,
                             int(math.ceil(q / 100 * len(latencies))) - 1)]

    for q, got_ms in ((50, row.p50_ms), (95, row.p95_ms),
                      (99, row.p99_ms)):
        got = got_ms / 1e3
        lo = exact(q)
        # Upper-bound semantics: within one bucket's relative width above
        # the exact statistic, never below the sample minimum.
        assert got >= min(latencies) - 1e-12
        assert got <= max(lo * DEFAULT_GROWTH, lo + 1e-9) or got <= max(latencies)


@given(operations, window_widths)
@settings(max_examples=40, deadline=None)
def test_rows_are_read_only_derivations(ops, w):
    """Reading rows twice (and with different server hints) neither
    mutates state nor changes the mergeable content."""
    agg = offline(ops, w)
    before = offline(ops, w)
    r1 = agg.rows(servers=1)
    r2 = agg.rows(servers=4)
    assert agg == before
    for a, b in zip(r1, r2):
        assert math.isclose(a.utilization, b.utilization * 4,
                            rel_tol=1e-9, abs_tol=1e-12)


def test_boundary_completion_goes_to_later_window():
    agg = StatsAggregator(5.0)
    agg.record(4.0, 5.0)  # completes exactly on the boundary
    rows = agg.rows()
    assert rows[0].arrivals == 1 and rows[0].completions == 0
    assert rows[1].completions == 1
    # in-flight: the [4,5) second belongs entirely to window 0
    assert math.isclose(rows[0].mean_in_flight, 1.0 / 5.0)
    assert rows[1].mean_in_flight == 0.0


def test_spanning_op_splits_inflight_exactly():
    agg = StatsAggregator(2.0)
    agg.record(1.0, 6.5)  # spans windows 0..3
    areas = [r.mean_in_flight * 2.0 for r in agg.rows()]
    assert [round(a, 9) for a in areas] == [1.0, 2.0, 2.0, 0.5]


def test_merge_rejects_mismatched_windows():
    import pytest
    with pytest.raises(ValueError):
        StatsAggregator(1.0).merge(StatsAggregator(2.0))
